//! The HTTP server: listener, worker pool, routing, overload
//! protection, fault injection, graceful shutdown.
//!
//! Architecture: one acceptor thread pushes connections into a *bounded*
//! mpsc channel; a fixed pool of worker threads (sized by the `qpwm-par`
//! thread-count conventions unless pinned) drains it, each handling one
//! keep-alive connection at a time. Per-connection read/write timeouts
//! and the bounded request parser in [`crate::http`] keep a slow client
//! from pinning a worker forever.
//!
//! Overload protection: when the worker queue is full, new connections
//! overflow onto a *degraded lane* — a single dedicated responder that
//! answers control endpoints (`/healthz`, `/metrics`, `POST /shutdown`)
//! normally, serves `/answer`/`/aggregate` from the answer cache when
//! the rendered body is already resident (stale-while-degraded), and
//! sheds everything else with `503` + `Retry-After`. If the degraded
//! lane is itself full, the acceptor writes a minimal `503` and closes —
//! the server never queues unboundedly and never goes silent.
//!
//! Fault injection: an optional [`FaultPolicy`] (env `QPWM_CHAOS` /
//! `qpwm serve --chaos`) injects dropped connections, `503`s, delays,
//! and truncated bodies at seeded deterministic rates, exempting the
//! control endpoints. See [`crate::chaos`].
//!
//! Shutdown is cooperative: a flag flips, a wake connection unblocks
//! `accept`, the channels close, and every worker drains its current
//! connection before exiting — no request is dropped mid-response.

use crate::cache::ShardedLru;
use crate::chaos::{Fault, FaultPolicy};
use crate::http::{read_request, write_response, write_truncated_response, Request, RequestError};
use crate::metrics::{Endpoint, Metrics, Observation};
use crate::state::ServeData;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads; 0 resolves via [`qpwm_par::thread_count`] (the
    /// `--threads` / `QPWM_THREADS` conventions).
    pub threads: usize,
    /// Total answer-cache entries (0 disables caching).
    pub cache_entries: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Allow `POST /shutdown` from loopback peers (used by the CLI and
    /// the smoke test for clean teardown).
    pub shutdown_endpoint: bool,
    /// Bounded accept backlog: connections queued for the worker pool.
    /// Overflow goes to the degraded lane, then to load-shedding 503s.
    pub backlog: usize,
    /// Optional fault-injection policy (see [`crate::chaos`]).
    pub chaos: Option<FaultPolicy>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            cache_entries: 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            shutdown_endpoint: true,
            backlog: 128,
            chaos: None,
        }
    }
}

/// Queue depth of the degraded lane (beyond this, connections are shed
/// with a raw 503 straight from the acceptor).
const DEGRADED_BACKLOG: usize = 32;

/// Cache-key endpoint tags (high byte of the key).
const TAG_ANSWER: u64 = 1 << 56;
const TAG_AGGREGATE: u64 = 2 << 56;

struct Shared {
    data: ServeData,
    cache: ShardedLru,
    metrics: Metrics,
    shutdown: AtomicBool,
    shutdown_endpoint: bool,
    chaos: FaultPolicy,
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or hit `POST /shutdown`) for a clean stop.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    done_rx: Receiver<()>,
}

impl Server {
    /// Binds, spawns the pool, and returns immediately.
    pub fn start(data: ServeData, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let threads = if config.threads == 0 {
            qpwm_par::thread_count()
        } else {
            config.threads
        };
        let shared = Arc::new(Shared {
            data,
            cache: ShardedLru::new(config.cache_entries, 8),
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            shutdown_endpoint: config.shutdown_endpoint,
            chaos: config.chaos.unwrap_or_else(FaultPolicy::disabled),
        });
        // `done_tx` is dropped by the acceptor on exit; `recv` on the
        // other end turns that into a "server stopped" signal for join().
        let (done_tx, done_rx) = mpsc::sync_channel::<()>(1);
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(config.backlog.max(1));
        let (degraded_tx, degraded_rx) = mpsc::sync_channel::<TcpStream>(DEGRADED_BACKLOG);
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut workers = Vec::with_capacity(threads + 1);
        for _ in 0..threads {
            let shared = Arc::clone(&shared);
            let conn_rx = Arc::clone(&conn_rx);
            let read_timeout = config.read_timeout;
            let write_timeout = config.write_timeout;
            workers.push(std::thread::spawn(move || {
                worker_loop(&shared, &conn_rx, read_timeout, write_timeout);
            }));
        }
        {
            // the degraded lane: one responder that stays available when
            // every pool worker is pinned
            let shared = Arc::clone(&shared);
            let read_timeout = config.read_timeout.min(Duration::from_secs(2));
            let write_timeout = config.write_timeout.min(Duration::from_secs(2));
            workers.push(std::thread::spawn(move || {
                degraded_loop(&shared, &degraded_rx, read_timeout, write_timeout);
            }));
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            let write_timeout = config.write_timeout.min(Duration::from_secs(1));
            std::thread::spawn(move || {
                accept_loop(&listener, &shared, &conn_tx, &degraded_tx, write_timeout, &done_tx)
            })
        };
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            done_rx,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics registry (shared with the handlers).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// `(hits, misses)` of the answer cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.shared.cache.stats()
    }

    /// Blocks until the server stops (via [`Server::shutdown`] from
    /// another thread or the `POST /shutdown` endpoint), then reaps the
    /// pool.
    pub fn join(mut self) {
        let _ = self.done_rx.recv();
        self.reap();
    }

    /// Requests a graceful stop and waits for in-flight requests to
    /// finish.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        wake_acceptor(self.addr);
        let _ = self.done_rx.recv();
        self.reap();
    }

    fn reap(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Unblocks a pending `accept` by making (and dropping) a connection.
fn wake_acceptor(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Shared,
    conn_tx: &SyncSender<TcpStream>,
    degraded_tx: &SyncSender<TcpStream>,
    shed_write_timeout: Duration,
    _done_tx: &SyncSender<()>,
) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                shared.metrics.connection_opened();
                // never block the acceptor: pool queue, then degraded
                // lane, then an explicit load-shedding 503
                match conn_tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Disconnected(_)) => break,
                    Err(TrySendError::Full(stream)) => match degraded_tx.try_send(stream) {
                        Ok(()) | Err(TrySendError::Disconnected(_)) => {}
                        Err(TrySendError::Full(stream)) => {
                            shared.metrics.shed_one();
                            shed_raw(stream, shed_write_timeout);
                        }
                    },
                }
            }
            Err(_) => {
                // transient accept errors (EMFILE, aborted handshake):
                // keep serving
                continue;
            }
        }
    }
    // dropping conn_tx/degraded_tx closes the channels; workers drain
    // and exit. dropping _done_tx signals join()/shutdown().
}

/// Best-effort minimal 503 written straight from the acceptor when even
/// the degraded lane is full. Does not read the request — the one thing
/// that must never happen under overload is the acceptor blocking.
fn shed_raw(mut stream: TcpStream, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout));
    let body = "{\"error\":\"overloaded\"}\n";
    let head = format!(
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: {}\r\nRetry-After: 1\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn worker_loop(
    shared: &Shared,
    conn_rx: &Arc<Mutex<Receiver<TcpStream>>>,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    loop {
        let stream = {
            let guard = conn_rx.lock().expect("connection queue poisoned");
            guard.recv()
        };
        let Ok(stream) = stream else {
            return; // channel closed: shutdown
        };
        handle_connection(shared, stream, read_timeout, write_timeout);
    }
}

/// The degraded lane's responder: one request per connection, control
/// endpoints answered normally, answers served only from cache.
fn degraded_loop(
    shared: &Shared,
    degraded_rx: &Receiver<TcpStream>,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    while let Ok(stream) = degraded_rx.recv() {
        handle_degraded(shared, stream, read_timeout, write_timeout);
    }
}

fn handle_degraded(
    shared: &Shared,
    stream: TcpStream,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(write_timeout));
    let _ = stream.set_nodelay(true);
    let peer_loopback = stream
        .peer_addr()
        .map(|a| a.ip().is_loopback())
        .unwrap_or(false);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    let Ok(request) = read_request(&mut reader) else {
        return;
    };
    shared.metrics.degraded_one();
    let start = Instant::now();
    let (endpoint, status, content_type, body, cache_hit, stop) =
        route_degraded(shared, &request, peer_loopback);
    shared.metrics.observe(Observation {
        endpoint,
        status,
        cache_hit,
        latency: start.elapsed(),
    });
    if write_response(&mut stream, status, content_type, body.as_str(), false).is_err() {
        return;
    }
    if stop {
        trip_shutdown(shared, &stream);
    }
}

/// Degraded-lane routing: control endpoints behave exactly as on the
/// main lane (and are exempt from shedding), `/answer`/`/aggregate` are
/// served *only* when the rendered body is already cached, everything
/// else is shed with 503.
fn route_degraded(shared: &Shared, request: &Request, peer_loopback: bool) -> Routed {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz" | "/metrics" | "/params") | ("POST", "/shutdown") => {
            route(shared, request, peer_loopback)
        }
        ("GET", "/answer" | "/aggregate") => {
            let endpoint = if request.path == "/answer" {
                Endpoint::Answer
            } else {
                Endpoint::Aggregate
            };
            let tag = if request.path == "/answer" { TAG_ANSWER } else { TAG_AGGREGATE };
            let i = match shared
                .data
                .resolve_param(request.query_value("i"), request.query_value("param"))
            {
                Ok(i) => i,
                Err(e) => return bad(endpoint, 400, &e),
            };
            if let Some(body) = shared.cache.get(tag | i as u64) {
                shared.metrics.stale_served();
                return (endpoint, 200, "application/json", body, true, false);
            }
            shared.metrics.shed_one();
            bad(endpoint, 503, "overloaded: answer not cached")
        }
        _ => {
            shared.metrics.shed_one();
            bad(Endpoint::Other, 503, "overloaded")
        }
    }
}

/// Control endpoints are exempt from fault injection and load shedding:
/// operators must be able to observe and stop the server no matter what
/// the chaos policy or the load does.
fn is_control(path: &str) -> bool {
    matches!(path, "/healthz" | "/metrics" | "/shutdown")
}

/// Response is on the wire; flip the flag and unblock `accept`.
fn trip_shutdown(shared: &Shared, stream: &TcpStream) {
    shared.shutdown.store(true, Ordering::SeqCst);
    if let Ok(addr) = stream.local_addr() {
        wake_acceptor(addr);
    }
}

fn handle_connection(
    shared: &Shared,
    stream: TcpStream,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(write_timeout));
    let _ = stream.set_nodelay(true);
    let peer_loopback = stream
        .peer_addr()
        .map(|a| a.ip().is_loopback())
        .unwrap_or(false);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    loop {
        let request = match read_request(&mut reader) {
            Ok(r) => r,
            Err(RequestError::Closed) => return,
            Err(RequestError::TooLarge) => {
                let _ = write_response(
                    &mut stream,
                    413,
                    "application/json",
                    "{\"error\":\"request too large\"}\n",
                    false,
                );
                return;
            }
            Err(RequestError::Malformed(what)) => {
                let body = format!("{{\"error\":\"malformed request: {what}\"}}\n");
                let _ = write_response(&mut stream, 400, "application/json", &body, false);
                return;
            }
        };
        let keep_alive = !request.close && !shared.shutdown.load(Ordering::SeqCst);
        let start = Instant::now();

        // chaos: decide the injected fault for this request (control
        // endpoints are exempt; the counter only advances on eligible
        // requests so configured rates hold over the eligible stream)
        let fault = if is_control(&request.path) {
            None
        } else {
            shared.chaos.next_fault()
        };
        if let Some(fault) = fault {
            shared.metrics.fault_injected(fault.label());
        }
        match fault {
            Some(Fault::Drop) => return, // close without responding
            Some(Fault::Error) => {
                shared.metrics.observe(Observation {
                    endpoint: endpoint_of(&request),
                    status: 503,
                    cache_hit: false,
                    latency: start.elapsed(),
                });
                if write_response(
                    &mut stream,
                    503,
                    "application/json",
                    "{\"error\":\"injected fault\"}\n",
                    keep_alive,
                )
                .is_err()
                    || !keep_alive
                {
                    return;
                }
                continue;
            }
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::Truncate) | None => {}
        }

        let (endpoint, status, content_type, body, cache_hit, stop) =
            route(shared, &request, peer_loopback);
        shared.metrics.observe(Observation {
            endpoint,
            status,
            cache_hit,
            latency: start.elapsed(),
        });
        if matches!(fault, Some(Fault::Truncate)) {
            let _ = write_truncated_response(&mut stream, status, content_type, body.as_str());
            return; // the truncated connection is dead by construction
        }
        let keep_alive = keep_alive && !stop;
        if write_response(&mut stream, status, content_type, body.as_str(), keep_alive).is_err() {
            return;
        }
        if stop {
            trip_shutdown(shared, &stream);
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// Maps a request path to its metrics endpoint without routing (used
/// when a fault preempts the handler).
fn endpoint_of(request: &Request) -> Endpoint {
    match request.path.as_str() {
        "/answer" => Endpoint::Answer,
        "/aggregate" => Endpoint::Aggregate,
        "/detect" => Endpoint::Detect,
        "/params" => Endpoint::Params,
        "/healthz" => Endpoint::Healthz,
        "/metrics" => Endpoint::Metrics,
        _ => Endpoint::Other,
    }
}

type Routed = (Endpoint, u16, &'static str, Arc<String>, bool, bool);

fn ok(endpoint: Endpoint, content_type: &'static str, body: String) -> Routed {
    (endpoint, 200, content_type, Arc::new(body), false, false)
}

fn bad(endpoint: Endpoint, status: u16, message: &str) -> Routed {
    let body = format!("{{\"error\":\"{}\"}}\n", crate::http::json_escape(message));
    (endpoint, status, "application/json", Arc::new(body), false, false)
}

fn route(shared: &Shared, request: &Request, peer_loopback: bool) -> Routed {
    let data = &shared.data;
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => ok(Endpoint::Healthz, "application/json", data.healthz_json()),
        ("GET", "/params") => ok(Endpoint::Params, "application/json", data.params_json()),
        ("GET", "/metrics") => {
            let (hits, misses) = shared.cache.stats();
            ok(
                Endpoint::Metrics,
                "text/plain; version=0.0.4",
                shared.metrics.render(shared.cache.len(), hits, misses),
            )
        }
        ("GET", "/answer") => cached_param_endpoint(shared, request, Endpoint::Answer, TAG_ANSWER),
        ("GET", "/aggregate") => {
            cached_param_endpoint(shared, request, Endpoint::Aggregate, TAG_AGGREGATE)
        }
        ("POST", "/detect") => {
            let body = match std::str::from_utf8(&request.body) {
                Ok(s) => s,
                Err(_) => return bad(Endpoint::Detect, 400, "body must be UTF-8"),
            };
            match data.detect_json(body, request.query_value("claim")) {
                Ok(json) => ok(Endpoint::Detect, "application/json", json),
                Err(e) => bad(Endpoint::Detect, 400, &e),
            }
        }
        ("POST", "/shutdown") if shared.shutdown_endpoint => {
            if !peer_loopback {
                return bad(Endpoint::Other, 403, "shutdown is loopback-only");
            }
            (
                Endpoint::Other,
                200,
                "application/json",
                Arc::new("{\"status\":\"shutting down\"}\n".to_string()),
                false,
                true,
            )
        }
        (method, "/answer" | "/aggregate" | "/detect" | "/healthz" | "/params" | "/metrics") => bad(
            Endpoint::Other,
            405,
            &format!("method {method} not allowed here"),
        ),
        ("GET" | "POST", _) => bad(Endpoint::Other, 404, "unknown path"),
        (method, _) => bad(Endpoint::Other, 405, &format!("method {method} not supported")),
    }
}

fn cached_param_endpoint(
    shared: &Shared,
    request: &Request,
    endpoint: Endpoint,
    tag: u64,
) -> Routed {
    let i = match shared
        .data
        .resolve_param(request.query_value("i"), request.query_value("param"))
    {
        Ok(i) => i,
        Err(e) => return bad(endpoint, 400, &e),
    };
    let key = tag | i as u64;
    if let Some(body) = shared.cache.get(key) {
        return (endpoint, 200, "application/json", body, true, false);
    }
    let body = Arc::new(match endpoint {
        Endpoint::Aggregate => shared.data.aggregate_json(i),
        _ => shared.data.answer_json(i),
    });
    shared.cache.insert(key, Arc::clone(&body));
    (endpoint, 200, "application/json", body, false, false)
}
