//! Per-endpoint request metrics in Prometheus text exposition format.
//!
//! Counters are plain relaxed atomics — observation never blocks the
//! event loop — and `/metrics` renders them on demand. Latency is a
//! fixed-bucket histogram (microsecond bounds) so operators get p50/p99
//! estimates from any Prometheus-compatible scraper, plus exact
//! `_sum`/`_count` for mean latency.
//!
//! Sharding: each serve shard owns a private [`Metrics`] block (no
//! cross-core cacheline traffic on the hot path). [`render_cluster`]
//! merges the blocks on scrape: the classic unlabeled totals keep their
//! PR-3 series names (so dashboards and the differential tests see one
//! logical server), and an additional `shard="i"`-labeled family
//! exposes the per-shard split for balance monitoring.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds, in microseconds.
pub const LATENCY_BUCKETS_US: [u64; 12] =
    [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 1_000_000];

/// The endpoints the server distinguishes in its metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /answer`
    Answer,
    /// `GET /aggregate`
    Aggregate,
    /// `POST /answers` (batched answer reads)
    Batch,
    /// `POST /detect`
    Detect,
    /// `POST /accuse` (forensic traitor tracing)
    Accuse,
    /// `GET /params`
    Params,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// Anything else (404s, bad methods).
    Other,
}

impl Endpoint {
    /// All endpoints, in render order.
    pub const ALL: [Endpoint; 9] = [
        Endpoint::Answer,
        Endpoint::Aggregate,
        Endpoint::Batch,
        Endpoint::Detect,
        Endpoint::Accuse,
        Endpoint::Params,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Other,
    ];

    /// The Prometheus label value.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Answer => "answer",
            Endpoint::Aggregate => "aggregate",
            Endpoint::Batch => "answers",
            Endpoint::Detect => "detect",
            Endpoint::Accuse => "accuse",
            Endpoint::Params => "params",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        Endpoint::ALL
            .iter()
            .position(|e| *e == self)
            .expect("endpoint in ALL")
    }
}

#[derive(Default)]
struct EndpointCounters {
    requests: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    latency_sum_us: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1], // last = +Inf
}

/// One observed request, for [`Metrics::observe`].
#[derive(Debug, Clone, Copy)]
pub struct Observation {
    /// Which endpoint handled it.
    pub endpoint: Endpoint,
    /// HTTP status returned.
    pub status: u16,
    /// Whether the response came from the answer cache.
    pub cache_hit: bool,
    /// Wall time spent handling it.
    pub latency: Duration,
}

/// A point-in-time view of one endpoint's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndpointSnapshot {
    /// Requests handled.
    pub requests: u64,
    /// Non-2xx responses.
    pub errors: u64,
    /// Responses served from cache.
    pub cache_hits: u64,
    /// Total handling time, microseconds.
    pub latency_sum_us: u64,
}

impl EndpointSnapshot {
    fn add(&mut self, other: EndpointSnapshot) {
        self.requests += other.requests;
        self.errors += other.errors;
        self.cache_hits += other.cache_hits;
        self.latency_sum_us += other.latency_sum_us;
    }
}

/// Fault-class labels, in render order (must match
/// [`crate::chaos::Fault::label`] values).
pub const FAULT_KINDS: [&str; 4] = ["drop", "error", "delay", "truncate"];

/// The server's metrics registry — one per shard.
#[derive(Default)]
pub struct Metrics {
    endpoints: [EndpointCounters; Endpoint::ALL.len()],
    connections: AtomicU64,
    faults: [AtomicU64; FAULT_KINDS.len()],
    shed: AtomicU64,
    stale_serves: AtomicU64,
    degraded: AtomicU64,
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one accepted connection.
    pub fn connection_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one injected chaos fault of the given class (a
    /// [`crate::chaos::Fault::label`] value).
    pub fn fault_injected(&self, kind: &str) {
        if let Some(i) = FAULT_KINDS.iter().position(|&k| k == kind) {
            self.faults[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one connection rejected by overload protection (503 with
    /// no usable answer).
    pub fn shed_one(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one answer served from cache while the shard was
    /// saturated (the stale-while-degraded path).
    pub fn stale_served(&self) {
        self.stale_serves.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request handled on the degraded lane (shard beyond
    /// its backlog; request restricted to control/cache-only service).
    pub fn degraded_one(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// `(faults-per-class, shed, stale-serves, degraded)` counters, for
    /// tests and the chaos bench.
    pub fn resilience_snapshot(&self) -> ([u64; FAULT_KINDS.len()], u64, u64, u64) {
        let faults = std::array::from_fn(|i| self.faults[i].load(Ordering::Relaxed));
        (
            faults,
            self.shed.load(Ordering::Relaxed),
            self.stale_serves.load(Ordering::Relaxed),
            self.degraded.load(Ordering::Relaxed),
        )
    }

    /// Records one handled request.
    pub fn observe(&self, obs: Observation) {
        let c = &self.endpoints[obs.endpoint.index()];
        c.requests.fetch_add(1, Ordering::Relaxed);
        if obs.status >= 400 {
            c.errors.fetch_add(1, Ordering::Relaxed);
        }
        if obs.cache_hit {
            c.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        let us = obs.latency.as_micros().min(u128::from(u64::MAX)) as u64;
        c.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        let bucket = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        c.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot for one endpoint (used by tests and the load
    /// generator's cache-hit accounting).
    pub fn snapshot(&self, endpoint: Endpoint) -> EndpointSnapshot {
        let c = &self.endpoints[endpoint.index()];
        EndpointSnapshot {
            requests: c.requests.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            latency_sum_us: c.latency_sum_us.load(Ordering::Relaxed),
        }
    }

    /// Requests handled across all endpoints (per-shard balance
    /// accounting for the high-connection bench sweep).
    pub fn total_requests(&self) -> u64 {
        Endpoint::ALL.iter().map(|&e| self.snapshot(e).requests).sum()
    }

    /// Renders the Prometheus text exposition for a single registry
    /// (the one-shard view of [`render_cluster`]).
    pub fn render(&self, cache_entries: usize, cache_hits: u64, cache_misses: u64) -> String {
        render_cluster(&[ShardView {
            metrics: self,
            cache_entries,
            cache_hits,
            cache_misses,
            plan_hits: 0,
            plan_misses: 0,
        }])
    }
}

/// One shard's contribution to the `/metrics` scrape.
pub struct ShardView<'a> {
    /// The shard's counter block.
    pub metrics: &'a Metrics,
    /// Entries resident in the shard's answer cache.
    pub cache_entries: usize,
    /// Cache lookup hits.
    pub cache_hits: u64,
    /// Cache lookup misses.
    pub cache_misses: u64,
    /// Fingerprint plan-cache hits (0 when fingerprinting is off).
    pub plan_hits: u64,
    /// Fingerprint plan-cache misses (0 when fingerprinting is off).
    pub plan_misses: u64,
}

/// Renders the merged Prometheus exposition for all shards: the
/// unlabeled cluster totals (series-compatible with the single-threaded
/// server), followed by `shard="i"`-labeled per-shard counters.
pub fn render_cluster(shards: &[ShardView<'_>]) -> String {
    let mut out = String::with_capacity(4096 + shards.len() * 1024);
    let sum_snapshot = |e: Endpoint| {
        let mut total = EndpointSnapshot { requests: 0, errors: 0, cache_hits: 0, latency_sum_us: 0 };
        for s in shards {
            total.add(s.metrics.snapshot(e));
        }
        total
    };
    out.push_str("# HELP qpwm_requests_total Requests handled, by endpoint.\n");
    out.push_str("# TYPE qpwm_requests_total counter\n");
    for e in Endpoint::ALL {
        out.push_str(&format!(
            "qpwm_requests_total{{endpoint=\"{}\"}} {}\n",
            e.label(),
            sum_snapshot(e).requests
        ));
    }
    out.push_str("# HELP qpwm_errors_total Non-2xx responses, by endpoint.\n");
    out.push_str("# TYPE qpwm_errors_total counter\n");
    for e in Endpoint::ALL {
        out.push_str(&format!(
            "qpwm_errors_total{{endpoint=\"{}\"}} {}\n",
            e.label(),
            sum_snapshot(e).errors
        ));
    }
    out.push_str("# HELP qpwm_cache_hits_total Responses served from the answer cache.\n");
    out.push_str("# TYPE qpwm_cache_hits_total counter\n");
    for e in [Endpoint::Answer, Endpoint::Aggregate] {
        out.push_str(&format!(
            "qpwm_cache_hits_total{{endpoint=\"{}\"}} {}\n",
            e.label(),
            sum_snapshot(e).cache_hits
        ));
    }
    out.push_str("# HELP qpwm_request_latency_us Request handling latency, microseconds.\n");
    out.push_str("# TYPE qpwm_request_latency_us histogram\n");
    for e in Endpoint::ALL {
        let mut cumulative = 0u64;
        for (i, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
            for s in shards {
                cumulative += s.metrics.endpoints[e.index()].buckets[i].load(Ordering::Relaxed);
            }
            out.push_str(&format!(
                "qpwm_request_latency_us_bucket{{endpoint=\"{}\",le=\"{}\"}} {}\n",
                e.label(),
                bound,
                cumulative
            ));
        }
        for s in shards {
            cumulative += s.metrics.endpoints[e.index()].buckets[LATENCY_BUCKETS_US.len()]
                .load(Ordering::Relaxed);
        }
        out.push_str(&format!(
            "qpwm_request_latency_us_bucket{{endpoint=\"{}\",le=\"+Inf\"}} {}\n",
            e.label(),
            cumulative
        ));
        let total = sum_snapshot(e);
        out.push_str(&format!(
            "qpwm_request_latency_us_sum{{endpoint=\"{}\"}} {}\n",
            e.label(),
            total.latency_sum_us
        ));
        out.push_str(&format!(
            "qpwm_request_latency_us_count{{endpoint=\"{}\"}} {}\n",
            e.label(),
            total.requests
        ));
    }
    out.push_str("# HELP qpwm_faults_injected_total Chaos faults injected, by class.\n");
    out.push_str("# TYPE qpwm_faults_injected_total counter\n");
    for (i, kind) in FAULT_KINDS.iter().enumerate() {
        let total: u64 = shards.iter().map(|s| s.metrics.faults[i].load(Ordering::Relaxed)).sum();
        out.push_str(&format!("qpwm_faults_injected_total{{kind=\"{kind}\"}} {total}\n"));
    }
    let sum_of = |f: &dyn Fn(&Metrics) -> u64| -> u64 { shards.iter().map(|s| f(s.metrics)).sum() };
    out.push_str("# HELP qpwm_shed_total Requests rejected by overload protection.\n");
    out.push_str("# TYPE qpwm_shed_total counter\n");
    out.push_str(&format!(
        "qpwm_shed_total {}\n",
        sum_of(&|m| m.shed.load(Ordering::Relaxed))
    ));
    out.push_str(
        "# HELP qpwm_stale_serve_total Cached answers served while the shard was saturated.\n",
    );
    out.push_str("# TYPE qpwm_stale_serve_total counter\n");
    out.push_str(&format!(
        "qpwm_stale_serve_total {}\n",
        sum_of(&|m| m.stale_serves.load(Ordering::Relaxed))
    ));
    out.push_str("# HELP qpwm_degraded_total Requests handled on the degraded lane.\n");
    out.push_str("# TYPE qpwm_degraded_total counter\n");
    out.push_str(&format!(
        "qpwm_degraded_total {}\n",
        sum_of(&|m| m.degraded.load(Ordering::Relaxed))
    ));
    out.push_str("# HELP qpwm_connections_total Connections accepted.\n");
    out.push_str("# TYPE qpwm_connections_total counter\n");
    out.push_str(&format!(
        "qpwm_connections_total {}\n",
        sum_of(&|m| m.connections.load(Ordering::Relaxed))
    ));
    out.push_str("# HELP qpwm_cache_entries Entries resident in the answer cache.\n");
    out.push_str("# TYPE qpwm_cache_entries gauge\n");
    out.push_str(&format!(
        "qpwm_cache_entries {}\n",
        shards.iter().map(|s| s.cache_entries).sum::<usize>()
    ));
    out.push_str("# HELP qpwm_cache_lookup_total Answer-cache lookups by outcome.\n");
    out.push_str("# TYPE qpwm_cache_lookup_total counter\n");
    out.push_str(&format!(
        "qpwm_cache_lookup_total{{outcome=\"hit\"}} {}\n",
        shards.iter().map(|s| s.cache_hits).sum::<u64>()
    ));
    out.push_str(&format!(
        "qpwm_cache_lookup_total{{outcome=\"miss\"}} {}\n",
        shards.iter().map(|s| s.cache_misses).sum::<u64>()
    ));
    out.push_str(
        "# HELP qpwm_fingerprint_plan_cache_total Fingerprint stamping-plan cache lookups by outcome.\n",
    );
    out.push_str("# TYPE qpwm_fingerprint_plan_cache_total counter\n");
    out.push_str(&format!(
        "qpwm_fingerprint_plan_cache_total{{outcome=\"hit\"}} {}\n",
        shards.iter().map(|s| s.plan_hits).sum::<u64>()
    ));
    out.push_str(&format!(
        "qpwm_fingerprint_plan_cache_total{{outcome=\"miss\"}} {}\n",
        shards.iter().map(|s| s.plan_misses).sum::<u64>()
    ));

    // the per-shard split: requests by endpoint, plus the shard-local
    // connection and cache counters that make imbalance visible
    out.push_str("# HELP qpwm_shard_requests_total Requests handled, by shard and endpoint.\n");
    out.push_str("# TYPE qpwm_shard_requests_total counter\n");
    for (i, s) in shards.iter().enumerate() {
        for e in Endpoint::ALL {
            out.push_str(&format!(
                "qpwm_shard_requests_total{{shard=\"{i}\",endpoint=\"{}\"}} {}\n",
                e.label(),
                s.metrics.snapshot(e).requests
            ));
        }
    }
    out.push_str("# HELP qpwm_shard_connections_total Connections accepted, by shard.\n");
    out.push_str("# TYPE qpwm_shard_connections_total counter\n");
    for (i, s) in shards.iter().enumerate() {
        out.push_str(&format!(
            "qpwm_shard_connections_total{{shard=\"{i}\"}} {}\n",
            s.metrics.connections.load(Ordering::Relaxed)
        ));
    }
    out.push_str("# HELP qpwm_shard_cache_lookup_total Answer-cache lookups, by shard and outcome.\n");
    out.push_str("# TYPE qpwm_shard_cache_lookup_total counter\n");
    for (i, s) in shards.iter().enumerate() {
        out.push_str(&format!(
            "qpwm_shard_cache_lookup_total{{shard=\"{i}\",outcome=\"hit\"}} {}\n",
            s.cache_hits
        ));
        out.push_str(&format!(
            "qpwm_shard_cache_lookup_total{{shard=\"{i}\",outcome=\"miss\"}} {}\n",
            s.cache_misses
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_accumulate() {
        let m = Metrics::new();
        m.observe(Observation {
            endpoint: Endpoint::Answer,
            status: 200,
            cache_hit: true,
            latency: Duration::from_micros(120),
        });
        m.observe(Observation {
            endpoint: Endpoint::Answer,
            status: 404,
            cache_hit: false,
            latency: Duration::from_micros(80),
        });
        let s = m.snapshot(Endpoint::Answer);
        assert_eq!(s.requests, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.latency_sum_us, 200);
        assert_eq!(m.snapshot(Endpoint::Detect).requests, 0);
        assert_eq!(m.total_requests(), 2);
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let m = Metrics::new();
        m.connection_opened();
        m.observe(Observation {
            endpoint: Endpoint::Aggregate,
            status: 200,
            cache_hit: false,
            latency: Duration::from_micros(300),
        });
        let text = m.render(5, 2, 3);
        assert!(text.contains("qpwm_requests_total{endpoint=\"aggregate\"} 1"));
        assert!(text.contains("qpwm_connections_total 1"));
        assert!(text.contains("qpwm_cache_entries 5"));
        assert!(text.contains("qpwm_cache_lookup_total{outcome=\"hit\"} 2"));
        // the 300 us observation lands in the le=500 bucket and above
        assert!(text.contains("qpwm_request_latency_us_bucket{endpoint=\"aggregate\",le=\"250\"} 0"));
        assert!(text.contains("qpwm_request_latency_us_bucket{endpoint=\"aggregate\",le=\"500\"} 1"));
        assert!(text.contains("qpwm_request_latency_us_bucket{endpoint=\"aggregate\",le=\"+Inf\"} 1"));
        // the single-shard view still carries shard labels
        assert!(text.contains("qpwm_shard_requests_total{shard=\"0\",endpoint=\"aggregate\"} 1"));
        assert!(text.contains("qpwm_shard_connections_total{shard=\"0\"} 1"));
    }

    #[test]
    fn resilience_counters_render_as_prometheus_series() {
        let m = Metrics::new();
        m.fault_injected("drop");
        m.fault_injected("error");
        m.fault_injected("error");
        m.fault_injected("no-such-kind"); // ignored, never panics
        m.shed_one();
        m.stale_served();
        m.stale_served();
        m.degraded_one();
        let text = m.render(0, 0, 0);
        assert!(text.contains("# TYPE qpwm_faults_injected_total counter"), "{text}");
        assert!(text.contains("qpwm_faults_injected_total{kind=\"drop\"} 1"), "{text}");
        assert!(text.contains("qpwm_faults_injected_total{kind=\"error\"} 2"), "{text}");
        assert!(text.contains("qpwm_faults_injected_total{kind=\"delay\"} 0"), "{text}");
        assert!(text.contains("qpwm_faults_injected_total{kind=\"truncate\"} 0"), "{text}");
        assert!(text.contains("qpwm_shed_total 1"), "{text}");
        assert!(text.contains("qpwm_stale_serve_total 2"), "{text}");
        assert!(text.contains("qpwm_degraded_total 1"), "{text}");
        assert_eq!(m.resilience_snapshot(), ([1, 2, 0, 0], 1, 2, 1));
    }

    #[test]
    fn oversized_latency_lands_in_inf_bucket() {
        let m = Metrics::new();
        m.observe(Observation {
            endpoint: Endpoint::Detect,
            status: 200,
            cache_hit: false,
            latency: Duration::from_secs(5),
        });
        let text = m.render(0, 0, 0);
        assert!(text.contains("qpwm_request_latency_us_bucket{endpoint=\"detect\",le=\"1000000\"} 0"));
        assert!(text.contains("qpwm_request_latency_us_bucket{endpoint=\"detect\",le=\"+Inf\"} 1"));
    }

    #[test]
    fn cluster_render_sums_shards_and_labels_each() {
        let a = Metrics::new();
        let b = Metrics::new();
        for (m, n) in [(&a, 3u64), (&b, 5u64)] {
            for _ in 0..n {
                m.observe(Observation {
                    endpoint: Endpoint::Answer,
                    status: 200,
                    cache_hit: false,
                    latency: Duration::from_micros(10),
                });
            }
            m.connection_opened();
        }
        let text = render_cluster(&[
            ShardView { metrics: &a, cache_entries: 2, cache_hits: 1, cache_misses: 2, plan_hits: 5, plan_misses: 1 },
            ShardView { metrics: &b, cache_entries: 4, cache_hits: 3, cache_misses: 4, plan_hits: 2, plan_misses: 1 },
        ]);
        assert!(text.contains("qpwm_requests_total{endpoint=\"answer\"} 8"), "{text}");
        assert!(text.contains("qpwm_connections_total 2"), "{text}");
        assert!(text.contains("qpwm_cache_entries 6"), "{text}");
        assert!(text.contains("qpwm_cache_lookup_total{outcome=\"hit\"} 4"), "{text}");
        assert!(text.contains("qpwm_fingerprint_plan_cache_total{outcome=\"hit\"} 7"), "{text}");
        assert!(text.contains("qpwm_fingerprint_plan_cache_total{outcome=\"miss\"} 2"), "{text}");
        assert!(text.contains("qpwm_shard_requests_total{shard=\"0\",endpoint=\"answer\"} 3"), "{text}");
        assert!(text.contains("qpwm_shard_requests_total{shard=\"1\",endpoint=\"answer\"} 5"), "{text}");
        assert!(text.contains("qpwm_shard_cache_lookup_total{shard=\"1\",outcome=\"miss\"} 4"), "{text}");
        assert!(text.contains("qpwm_request_latency_us_bucket{endpoint=\"answer\",le=\"50\"} 8"), "{text}");
    }
}
