//! The out-of-core data plane: answers served straight off store pages
//! through each shard's private buffer pool.
//!
//! The resident plane ([`crate::state`]) decodes the whole family at
//! startup and precomputes every response — O(family) RAM. This plane
//! keeps only a [`qpwm_store::ReadView`] per shard: a file handle, a
//! small clock pool, and the blob's string index. A request pins the
//! few pages its answer set lives on, renders the same JSON the
//! resident plane would, and lets the clock hand reclaim the frames.
//! Peak RSS is O(pool frames), independent of the store size.
//!
//! Trade-offs versus the resident plane, surfaced as errors rather than
//! silent slow paths:
//!
//! * parameters resolve by canonical index (`?i=`) only — a label scan
//!   would touch every blob page per request;
//! * `POST /detect` is refused — inline detection materializes the full
//!   observed-weight table, exactly the allocation this plane exists to
//!   avoid (`qpwm store verify --paged` is the out-of-core detector);
//! * fingerprint stamping requires the resident plane (the stamping
//!   templates are precomputed bodies).
//!
//! Pool traffic is published per shard into lock-free [`PoolGauges`]
//! after each request, so `/metrics` can report
//! `qpwm_store_pool_{hits,misses,evictions,pinned}` without reaching
//! into another shard's (single-threaded) view.

use crate::http::json_escape;
use qpwm_store::{DiskVfs, ReadView, WalStats};
use std::cell::RefCell;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration for serving a store through the buffer pool: which
/// page file, how many frames each shard's view may hold, and the WAL
/// counters observed at recovery time (the server is read-only, so they
/// are constants for its lifetime).
#[derive(Debug, Clone)]
pub struct PagedPlane {
    /// Path of the store page file (the `.wal` sibling must be empty —
    /// recovery runs before serving).
    pub path: String,
    /// Buffer-pool frames per shard view; `None` resolves via
    /// `QPWM_POOL_FRAMES` and the size-scaled default.
    pub pool_frames: Option<usize>,
    /// WAL counters captured when the CLI opened (and recovered) the
    /// store, exported verbatim as `qpwm_store_wal_*`.
    pub wal: WalStats,
}

/// Pool counters a shard publishes after each paged request. The view
/// itself is single-threaded; these atomics are the only thing
/// `/metrics` (served by any shard) reads across shard boundaries.
#[derive(Default)]
pub struct PoolGauges {
    /// Page requests satisfied by a resident frame.
    pub hits: AtomicU64,
    /// Page requests that went to disk.
    pub misses: AtomicU64,
    /// Frames reclaimed by the clock hand.
    pub evictions: AtomicU64,
    /// Frames currently pinned (gauge; ~0 between requests).
    pub pinned: AtomicU64,
}

/// One shard's slice of the paged plane: its private read view plus the
/// gauges it exports.
pub struct PagedShard {
    view: RefCell<ReadView>,
    gauges: Arc<PoolGauges>,
}

impl PagedShard {
    /// Opens a fresh view of the store (own file handle, own pool).
    pub fn open(plane: &PagedPlane) -> io::Result<PagedShard> {
        let vfs = DiskVfs::new("");
        let view = ReadView::open(&vfs, &plane.path, plane.pool_frames)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(PagedShard { view: RefCell::new(view), gauges: Arc::new(PoolGauges::default()) })
    }

    /// The gauges this shard publishes (shared with `/metrics`).
    pub fn gauges(&self) -> Arc<PoolGauges> {
        Arc::clone(&self.gauges)
    }

    /// Number of canonical parameters.
    pub fn n_params(&self) -> usize {
        self.view.borrow().n_params()
    }

    /// Resolves `?i=<index>` (the only parameter form the paged plane
    /// accepts — see the module docs).
    pub fn resolve_param(
        &self,
        index: Option<&str>,
        label: Option<&str>,
    ) -> Result<usize, String> {
        let n = self.n_params();
        if let Some(raw) = index {
            let i: usize = raw
                .parse()
                .map_err(|_| format!("i must be a parameter index, got '{raw}'"))?;
            if i >= n {
                return Err(format!("parameter index {i} out of range (domain has {n})"));
            }
            return Ok(i);
        }
        if label.is_some() {
            return Err(
                "paged serving resolves parameters by index only: pass ?i=<index>".into()
            );
        }
        Err("missing parameter: pass ?i=<index>".into())
    }

    /// `GET /answer` body — same wire format as the resident plane's
    /// [`crate::state::ServeData::answer_json`].
    pub fn answer_json(&self, i: usize) -> Result<String, String> {
        let mut view = self.view.borrow_mut();
        let result = render_answer(&mut view, i);
        self.publish(&view);
        result
    }

    /// `GET /aggregate` body: `f(ā) = Σ W(b̄)` over the pinned pages.
    pub fn aggregate_json(&self, i: usize) -> Result<String, String> {
        let mut view = self.view.borrow_mut();
        let result = (|| {
            let label = view.label(i).map_err(stringify)?;
            let pairs = view.answer_pairs(i).map_err(stringify)?;
            let f: i64 = pairs.iter().map(|(_, w)| w).sum();
            Ok(format!(
                "{{\"param\":{i},\"label\":\"{}\",\"count\":{},\"f\":{f}}}\n",
                json_escape(&label),
                pairs.len(),
            ))
        })();
        self.publish(&view);
        result
    }

    /// `GET /params` body: the canonical domain, labels read through
    /// the pool.
    pub fn params_json(&self) -> Result<String, String> {
        let mut view = self.view.borrow_mut();
        let result = (|| {
            let mut out = String::from("{\"params\":[");
            let n = view.n_params();
            for i in 0..n {
                if i > 0 {
                    out.push(',');
                }
                let label = view.label(i).map_err(stringify)?;
                out.push_str(&format!("{{\"i\":{i},\"label\":\"{}\"}}", json_escape(&label)));
            }
            out.push_str(&format!("],\"count\":{n}}}\n"));
            Ok(out)
        })();
        self.publish(&view);
        result
    }

    /// `GET /healthz` body (pure meta — no page reads).
    pub fn healthz_json(&self) -> String {
        let view = self.view.borrow();
        format!(
            "{{\"status\":\"ok\",\"query\":\"{}\",\"parameters\":{},\"active_tuples\":{},\"output_arity\":{}}}\n",
            json_escape(view.query_name()),
            view.n_params(),
            view.universe_len(),
            view.output_arity()
        )
    }

    /// Copies the view's pool counters into the shared gauges.
    fn publish(&self, view: &ReadView) {
        let stats = view.pool_stats();
        let pinned = view.pool_pinned();
        self.gauges.hits.store(stats.hits, Ordering::Relaxed);
        self.gauges.misses.store(stats.misses, Ordering::Relaxed);
        self.gauges.evictions.store(stats.evictions, Ordering::Relaxed);
        self.gauges.pinned.store(pinned as u64, Ordering::Relaxed);
    }
}

fn stringify(e: qpwm_store::StoreError) -> String {
    e.to_string()
}

/// Renders one `/answer` body from pinned pages. Element names come
/// through the pool too, so a store written with names renders them
/// exactly as the resident plane would.
fn render_answer(view: &mut ReadView, i: usize) -> Result<String, String> {
    let label = view.label(i).map_err(stringify)?;
    let pairs = view.answer_pairs(i).map_err(stringify)?;
    let named = view.has_element_names();
    let mut out = String::with_capacity(64 + pairs.len() * 32);
    out.push_str(&format!(
        "{{\"param\":{i},\"label\":\"{}\",\"count\":{},\"answers\":[",
        json_escape(&label),
        pairs.len()
    ));
    for (n, (tuple, w)) in pairs.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        let ids = tuple.iter().map(|e| e.to_string()).collect::<Vec<_>>().join(",");
        let display = if named {
            let mut parts = Vec::with_capacity(tuple.len());
            for &e in tuple {
                parts.push(match view.element_name(e).map_err(stringify)? {
                    Some(name) => name,
                    None => e.to_string(),
                });
            }
            json_escape(&parts.join(","))
        } else {
            json_escape(&ids)
        };
        out.push_str(&format!("{{\"t\":[{ids}],\"label\":\"{display}\",\"w\":{w}}}"));
    }
    out.push_str("]}\n");
    Ok(out)
}

/// Sums every shard's gauges for `/metrics`.
pub fn sum_gauges(gauges: &[Arc<PoolGauges>]) -> (u64, u64, u64, u64) {
    let mut totals = (0, 0, 0, 0);
    for g in gauges {
        totals.0 += g.hits.load(Ordering::Relaxed);
        totals.1 += g.misses.load(Ordering::Relaxed);
        totals.2 += g.evictions.load(Ordering::Relaxed);
        totals.3 += g.pinned.load(Ordering::Relaxed);
    }
    totals
}

/// Renders the `qpwm_store_*` section of `/metrics`: pool traffic
/// summed across shard views plus the WAL counters captured at open.
pub fn render_store_metrics(out: &mut String, pool: (u64, u64, u64, u64), wal: &WalStats) {
    let (hits, misses, evictions, pinned) = pool;
    out.push_str("# HELP qpwm_store_pool_hits Store pages served from a resident frame.\n");
    out.push_str("# TYPE qpwm_store_pool_hits counter\n");
    out.push_str(&format!("qpwm_store_pool_hits {hits}\n"));
    out.push_str("# HELP qpwm_store_pool_misses Store page reads that went to disk.\n");
    out.push_str("# TYPE qpwm_store_pool_misses counter\n");
    out.push_str(&format!("qpwm_store_pool_misses {misses}\n"));
    out.push_str("# HELP qpwm_store_pool_evictions Frames reclaimed by the clock hand.\n");
    out.push_str("# TYPE qpwm_store_pool_evictions counter\n");
    out.push_str(&format!("qpwm_store_pool_evictions {evictions}\n"));
    out.push_str("# HELP qpwm_store_pool_pinned Frames currently pinned across shard views.\n");
    out.push_str("# TYPE qpwm_store_pool_pinned gauge\n");
    out.push_str(&format!("qpwm_store_pool_pinned {pinned}\n"));
    out.push_str("# HELP qpwm_store_wal_records WAL records appended, captured at recovery.\n");
    out.push_str("# TYPE qpwm_store_wal_records counter\n");
    out.push_str(&format!("qpwm_store_wal_records {}\n", wal.records));
    out.push_str("# HELP qpwm_store_wal_fsyncs WAL fsyncs issued, captured at recovery.\n");
    out.push_str("# TYPE qpwm_store_wal_fsyncs counter\n");
    out.push_str(&format!("qpwm_store_wal_fsyncs {}\n", wal.fsyncs));
    out.push_str(
        "# HELP qpwm_store_wal_group_commits Batched commit flushes, captured at recovery.\n",
    );
    out.push_str("# TYPE qpwm_store_wal_group_commits counter\n");
    out.push_str(&format!("qpwm_store_wal_group_commits {}\n", wal.group_commits));
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpwm_store::{Store, StoreContent};

    fn sample_store(dir: &std::path::Path) -> String {
        let path = dir.join("plane.qps").to_string_lossy().into_owned();
        let ids: Vec<u32> = (0..6).collect();
        let content = StoreContent {
            tuple_arity: 1,
            param_arity: 1,
            flat: ids.clone(),
            parameters: vec![0, 1, 2],
            offsets: vec![0, 2, 4, 6],
            ids: ids.clone(),
            universe: ids,
            base: (0..6).map(|e| 5 + e).collect(),
            delta: vec![1, -1, 1, -1, 1, -1],
            param_labels: vec!["alpha".into(), "beta".into(), "gamma".into()],
            element_names: (0..6).map(|e| format!("n{e}")).collect(),
            query_name: "q".into(),
        };
        let vfs = DiskVfs::new("");
        drop(Store::create(&vfs, &path, &content).expect("create"));
        path
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qpwm-paged-plane-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn paged_shard_renders_the_resident_formats() {
        let dir = temp_dir("render");
        let path = sample_store(&dir);
        let plane =
            PagedPlane { path, pool_frames: Some(4), wal: WalStats::default() };
        let shard = PagedShard::open(&plane).expect("open");
        assert_eq!(shard.n_params(), 3);
        let answer = shard.answer_json(0).expect("answer");
        assert!(answer.contains("\"label\":\"alpha\""), "{answer}");
        assert!(answer.contains("{\"t\":[0],\"label\":\"n0\",\"w\":6}"), "{answer}");
        assert!(answer.contains("{\"t\":[1],\"label\":\"n1\",\"w\":5}"), "{answer}");
        assert!(answer.ends_with("]}\n"), "{answer}");
        let agg = shard.aggregate_json(0).expect("aggregate");
        assert!(agg.contains("\"f\":11"), "{agg}");
        let params = shard.params_json().expect("params");
        assert!(params.contains("{\"i\":2,\"label\":\"gamma\"}"), "{params}");
        assert!(params.contains("\"count\":3"), "{params}");
        let health = shard.healthz_json();
        assert!(health.contains("\"parameters\":3"), "{health}");
        assert!(health.contains("\"active_tuples\":6"), "{health}");

        assert_eq!(shard.resolve_param(Some("1"), None), Ok(1));
        assert!(shard.resolve_param(Some("9"), None).unwrap_err().contains("out of range"));
        assert!(shard.resolve_param(None, Some("alpha")).unwrap_err().contains("index only"));
        assert!(shard.resolve_param(None, None).is_err());

        let gauges = shard.gauges();
        assert!(gauges.misses.load(Ordering::Relaxed) > 0, "reads must hit the pool");
        let mut out = String::new();
        render_store_metrics(&mut out, sum_gauges(&[gauges]), &plane.wal);
        assert!(out.contains("qpwm_store_pool_misses "), "{out}");
        assert!(out.contains("qpwm_store_wal_group_commits 0"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
