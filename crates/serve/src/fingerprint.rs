//! Per-recipient fingerprint stamping on the serving hot path, plus the
//! `POST /accuse` forensic endpoint's request/response logic.
//!
//! When the server is started with a [`FingerprintContext`], a request
//! carrying `?recipient=<id>` (or the configured default recipient)
//! receives *that recipient's copy* of the answer set: the precomputed
//! body template ([`crate::state::AnswerTemplate`]) is re-rendered with
//! the recipient's ±1 deltas spliced into the weight slots. The answer
//! family is never re-materialized per recipient — a recipient's whole
//! stamping plan is one flat `i32` array (one entry per weight slot
//! across all parameters), built once from the
//! [`Fingerprinter`]'s delta map and cached per shard in a
//! [`ShardedLru`] keyed by derivation index.
//!
//! The forensic half mirrors `POST /detect`'s grammar: the body is one
//! `leak <elements...> <weight>` line per observed answer tuple, and the
//! response names the accused recipient (or abstains) with the
//! significance and runner-up gap computed by
//! [`qpwm_fingerprint::accuse`].

use crate::cache::ShardedLru;
use crate::http::json_escape;
use crate::state::{AnswerTemplate, ServeData};
use qpwm_fingerprint::{accuse, observed_from_pairs, Fingerprinter, IssuanceRecord, KeyRegistry};
use qpwm_structures::Element;
use std::sync::Arc;

/// Everything the stamping and accusation handlers read. Immutable
/// after startup, shared by every shard.
#[derive(Debug)]
pub struct FingerprintContext {
    registry: KeyRegistry,
    fingerprinter: Fingerprinter,
    templates: Vec<AnswerTemplate>,
    /// Base aggregate `f` per parameter (sum of the template's slots).
    agg_base: Vec<i64>,
    /// Flat-plan offset of each parameter's first slot.
    slot_offsets: Vec<usize>,
    total_slots: usize,
    default_recipient: Option<String>,
}

impl FingerprintContext {
    /// Builds the stamping context over the data the server serves.
    ///
    /// The server must be serving the *original* (unstamped) weights —
    /// the same table `fingerprinter` holds — so that slot base + plan
    /// delta reproduces each recipient's stamped copy exactly. A
    /// `default_recipient` (the `--fingerprint` flag) stamps every
    /// answer that does not name a recipient itself; it must be issued
    /// and non-revoked.
    pub fn new(
        data: &ServeData,
        registry: KeyRegistry,
        fingerprinter: Fingerprinter,
        default_recipient: Option<String>,
    ) -> Result<FingerprintContext, String> {
        if let Some(name) = &default_recipient {
            match registry.record(name) {
                None => return Err(format!("default recipient '{name}' was never issued")),
                Some(r) if !r.active() => {
                    return Err(format!("default recipient '{name}' is revoked"))
                }
                Some(_) => {}
            }
        }
        let n = data.num_parameters();
        let mut templates = Vec::with_capacity(n);
        let mut agg_base = Vec::with_capacity(n);
        let mut slot_offsets = Vec::with_capacity(n);
        let mut total_slots = 0usize;
        for i in 0..n {
            let template = data.answer_template(i);
            slot_offsets.push(total_slots);
            total_slots += template.slots.len();
            agg_base.push(template.slots.iter().map(|(_, w)| w).sum());
            templates.push(template);
        }
        Ok(FingerprintContext {
            registry,
            fingerprinter,
            templates,
            agg_base,
            slot_offsets,
            total_slots,
            default_recipient,
        })
    }

    /// The issuance registry.
    pub fn registry(&self) -> &KeyRegistry {
        &self.registry
    }

    /// Resolves which recipient (if any) a request is stamped for:
    /// the explicit `?recipient=` query value wins, then the configured
    /// default. `Ok(None)` means serve the unstamped base data; unknown
    /// or revoked recipients are refused.
    pub fn resolve(&self, query_recipient: Option<&str>) -> Result<Option<&IssuanceRecord>, String> {
        let Some(name) = query_recipient.or(self.default_recipient.as_deref()) else {
            return Ok(None);
        };
        let record = self
            .registry
            .record(name)
            .ok_or_else(|| format!("unknown recipient '{name}'"))?;
        if !record.active() {
            return Err(format!("recipient '{name}' is revoked"));
        }
        Ok(Some(record))
    }

    /// Builds one recipient's flat stamping plan: one little-endian
    /// `i32` delta per weight slot, across every parameter in order.
    /// `O(pairs)` for the delta map plus `O(slots)` for the splice —
    /// independent of how many recipients exist.
    pub fn build_plan(&self, index: u64) -> Arc<[u8]> {
        let deltas = self.fingerprinter.delta_map(self.registry.key_at(index));
        let mut out = Vec::with_capacity(self.total_slots * 4);
        for template in &self.templates {
            for (tuple, _) in &template.slots {
                let d = deltas.get(tuple).copied().unwrap_or(0) as i32;
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
        out.into()
    }

    /// Fetches (or builds and caches) a recipient's plan from the
    /// shard's plan LRU. Returns the plan and whether it was a cache
    /// hit.
    pub fn plan(&self, cache: &ShardedLru, index: u64) -> (Arc<[u8]>, bool) {
        if let Some(plan) = cache.get(index) {
            return (plan, true);
        }
        let plan = self.build_plan(index);
        cache.insert(index, Arc::clone(&plan));
        (plan, false)
    }

    /// Decodes parameter `i`'s slice of a flat plan.
    fn param_deltas(&self, plan: &[u8], i: usize) -> Vec<i64> {
        let start = self.slot_offsets[i];
        let count = self.templates[i].slots.len();
        (0..count)
            .map(|k| {
                let at = (start + k) * 4;
                plan.get(at..at + 4)
                    .map(|b| i64::from(i32::from_le_bytes([b[0], b[1], b[2], b[3]])))
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Renders the stamped `/answer` body for parameter `i`.
    pub fn answer_json(&self, i: usize, plan: &[u8]) -> String {
        self.templates[i].render(&self.param_deltas(plan, i))
    }

    /// Renders the stamped `/aggregate` body for parameter `i`: the base
    /// aggregate plus the sum of the parameter's slot deltas.
    pub fn aggregate_json(&self, data: &ServeData, i: usize, plan: &[u8]) -> String {
        let delta: i64 = self.param_deltas(plan, i).iter().sum();
        data.aggregate_json_with_f(i, self.agg_base[i] + delta)
    }

    /// `POST /accuse`: parses the leaked answer set (`leak <elements...>
    /// <weight>` lines), scores every issued non-revoked recipient, and
    /// renders the forensic verdict.
    pub fn accuse_json(&self, body: &str, delta: f64) -> Result<String, String> {
        let pairs = parse_leak_body(body, self.fingerprinter.original().arity())?;
        let observed = observed_from_pairs(pairs);
        let outcome = accuse(&self.fingerprinter, &self.registry, &observed, delta);
        let mut out = format!(
            "{{\"scored\":{},\"skipped_revoked\":{}",
            outcome.scored, outcome.skipped_revoked
        );
        let render = |a: &qpwm_fingerprint::Accusation| {
            format!(
                "{{\"recipient\":\"{}\",\"index\":{},\"matches\":{},\"compared\":{},\"significance\":{:e},\"verdict\":\"{}\"}}",
                json_escape(&a.recipient),
                a.index,
                a.check.matches,
                a.check.compared,
                a.check.significance,
                a.check.verdict
            )
        };
        match outcome.accused() {
            Some(a) => out.push_str(&format!(",\"accused\":{}", render(a))),
            None => out.push_str(",\"accused\":null"),
        }
        if let Some(best) = &outcome.best {
            out.push_str(&format!(",\"best\":{}", render(best)));
        }
        if let Some(runner) = &outcome.runner_up {
            out.push_str(&format!(",\"runner_up\":{}", render(runner)));
        }
        out.push_str(&format!(",\"gap_log10\":{:.3}}}\n", outcome.gap_log10));
        Ok(out)
    }
}

/// Parses a `POST /accuse` body: one `leak <elements...> <weight>` line
/// per observed answer tuple (the same token grammar as `/detect`'s
/// `orig` lines).
pub fn parse_leak_body(body: &str, arity: usize) -> Result<Vec<(Vec<Element>, i64)>, String> {
    let mut pairs = Vec::new();
    for (lineno, raw) in body.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some("leak") {
            return Err(format!(
                "line {}: expected 'leak <elements...> <weight>', got '{line}'",
                lineno + 1
            ));
        }
        let fields: Vec<&str> = tokens.collect();
        if fields.len() != arity + 1 {
            return Err(format!(
                "line {}: expected {arity} element(s) and a weight, got {} field(s)",
                lineno + 1,
                fields.len()
            ));
        }
        let key: Result<Vec<Element>, _> =
            fields[..arity].iter().map(|t| t.parse::<Element>()).collect();
        let key = key.map_err(|_| format!("line {}: bad element id in '{line}'", lineno + 1))?;
        let w: i64 = fields[arity]
            .parse()
            .map_err(|_| format!("line {}: bad weight in '{line}'", lineno + 1))?;
        pairs.push((key, w));
    }
    if pairs.is_empty() {
        return Err("empty leak: body must carry 'leak <elements...> <weight>' lines".into());
    }
    Ok(pairs)
}

/// Renders a leaked answer set as a `POST /accuse` body.
pub fn leak_request_body(pairs: &[(Vec<Element>, i64)]) -> String {
    let mut out = String::with_capacity(pairs.len() * 16);
    for (tuple, w) in pairs {
        out.push_str("leak");
        for e in tuple {
            out.push_str(&format!(" {e}"));
        }
        out.push_str(&format!(" {w}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpwm_core::pairing::{Pair, PairMarking};
    use qpwm_fingerprint::MasterSecret;
    use qpwm_structures::{AnswerFamily, Weights};

    /// 24 disjoint unit pairs over elements 0..48 (enough capacity to
    /// clear the default significance floor), served as two parameters
    /// covering the halves.
    fn fixture(recipients: usize) -> (ServeData, FingerprintContext) {
        let pairs: Vec<Pair> = (0..24)
            .map(|i| Pair { plus: vec![2 * i], minus: vec![2 * i + 1] })
            .collect();
        let mut original = Weights::new(1);
        for e in 0..48u32 {
            original.set(&[e], 300 + i64::from(e));
        }
        let sets: Vec<Vec<Vec<u32>>> = vec![
            (0..24u32).map(|e| vec![e]).collect(),
            (24..48u32).map(|e| vec![e]).collect(),
        ];
        let family = AnswerFamily::from_nested(vec![vec![100], vec![101]], &sets);
        let data = ServeData::new(family, original.clone(), Vec::new(), None, "fp".into());
        let mut registry = KeyRegistry::new(MasterSecret::from_u64(0xfeed));
        for i in 0..recipients {
            registry.issue(&format!("tenant-{i}"), i as u64).expect("issue");
        }
        let fp = Fingerprinter::new(PairMarking::new(pairs), original);
        let ctx = FingerprintContext::new(&data, registry, fp, None).expect("context");
        (data, ctx)
    }

    #[test]
    fn stamped_answers_match_the_offline_stamp() {
        let (data, ctx) = fixture(6);
        let record = ctx.registry().record("tenant-4").expect("issued").clone();
        let plan = ctx.build_plan(record.index);
        let stamped = ctx
            .fingerprinter
            .stamp(ctx.registry().key_at(record.index));
        for i in 0..data.num_parameters() {
            let body = ctx.answer_json(i, &plan);
            // the stamped body must carry the per-recipient weights
            for e in (i as u32 * 24)..(i as u32 * 24 + 24) {
                assert!(
                    body.contains(&format!("\"t\":[{e}],\"label\":\"{e}\",\"w\":{}", stamped.get(&[e]))),
                    "param {i} tuple {e}: {body}"
                );
            }
            // and the aggregate is the stamped sum
            let f: i64 = ((i as u32 * 24)..(i as u32 * 24 + 24)).map(|e| stamped.get(&[e])).sum();
            assert!(
                ctx.aggregate_json(&data, i, &plan).contains(&format!("\"f\":{f}")),
                "param {i}"
            );
        }
    }

    #[test]
    fn plans_are_cached_per_recipient() {
        let (_, ctx) = fixture(3);
        let cache = ShardedLru::new(8, 2);
        let (first, hit1) = ctx.plan(&cache, 1);
        let (second, hit2) = ctx.plan(&cache, 1);
        assert!(!hit1 && hit2);
        assert_eq!(first, second);
        let (other, _) = ctx.plan(&cache, 2);
        assert_ne!(first, other, "distinct recipients get distinct plans");
    }

    #[test]
    fn resolve_prefers_query_and_refuses_revoked() {
        let (data, ctx) = fixture(3);
        assert!(ctx.resolve(None).expect("no default").is_none());
        assert_eq!(
            ctx.resolve(Some("tenant-2")).expect("issued").expect("record").recipient,
            "tenant-2"
        );
        assert!(ctx.resolve(Some("mallory")).is_err());

        // rebuild with a default recipient and a revocation
        let mut registry = ctx.registry.clone();
        registry.revoke("tenant-1", 9).expect("revoke");
        let ctx = FingerprintContext::new(
            &data,
            registry,
            ctx.fingerprinter.clone(),
            Some("tenant-0".into()),
        )
        .expect("context");
        assert_eq!(
            ctx.resolve(None).expect("default").expect("record").recipient,
            "tenant-0"
        );
        assert!(ctx.resolve(Some("tenant-1")).unwrap_err().contains("revoked"));
    }

    #[test]
    fn a_revoked_default_recipient_is_rejected_at_startup() {
        let (data, ctx) = fixture(2);
        let mut registry = ctx.registry.clone();
        registry.revoke("tenant-0", 5).expect("revoke");
        let err = FingerprintContext::new(
            &data,
            registry,
            ctx.fingerprinter.clone(),
            Some("tenant-0".into()),
        )
        .unwrap_err();
        assert!(err.contains("revoked"), "{err}");
    }

    #[test]
    fn accuse_round_trips_over_the_leak_grammar() {
        let (_, ctx) = fixture(12);
        let stamped = ctx.fingerprinter.stamp(ctx.registry().key_at(7));
        let pairs: Vec<(Vec<Element>, i64)> =
            (0..48u32).map(|e| (vec![e], stamped.get(&[e]))).collect();
        let body = leak_request_body(&pairs);
        let json = ctx
            .accuse_json(&body, qpwm_core::detect::DEFAULT_DELTA)
            .expect("accuses");
        assert!(json.contains("\"scored\":12"), "{json}");
        assert!(json.contains("\"recipient\":\"tenant-7\""), "{json}");
        assert!(json.contains("\"verdict\":\"mark-present\""), "{json}");

        // malformed bodies are named by line
        assert!(ctx.accuse_json("nope 1 2\n", 1e-6).unwrap_err().contains("line 1"));
        assert!(ctx.accuse_json("", 1e-6).unwrap_err().contains("empty leak"));
    }
}
