//! The owner's side of the wire: a minimal blocking HTTP client, a
//! resilient retrying transport, and a remote [`AnswerServer`]
//! implementation.
//!
//! [`RemoteServer`] is the deployment-scenario detector: the owner acts
//! as an ordinary user of a suspect data server, replaying the public
//! parameter domain over `GET /answer` and feeding the observed
//! `(b̄, W(b̄))` pairs into the standard
//! [`qpwm_core::detect::ObservedWeights`] → extraction pipeline. Element
//! ids are taken from the `"t"` arrays of the server's JSON, so
//! detection works id-for-id as long as owner and server load the same
//! public database (same interning order) — the paper's setting, where
//! the *data* is public and only the weights carry the mark.
//!
//! Resilience: the channel between owner and suspect is not assumed to
//! be clean. [`RetryingClient`] layers a [`RetryPolicy`] — exponential
//! backoff with deterministic [`qpwm_rng`] jitter, per-request
//! deadlines, reconnect on broken keep-alive, and a consecutive-failure
//! circuit breaker — over [`HttpClient`], so *transient* transport
//! faults become retries and only *permanent* faults surface. A
//! permanent failure reads as a missing answer: [`RemoteServer`] counts
//! it in its failed-read budget, which detection converts into a
//! smaller effective sample (see
//! [`qpwm_core::detect::DetectionReport::claim_check_effective`])
//! instead of corrupted bits.

use qpwm_core::detect::AnswerServer;
use qpwm_rng::Rng;
use qpwm_structures::Element;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Connection timeouts for client traffic.
///
/// Detection replays thousands of small answers; a stuck read should
/// fail (and be retried) in seconds, not the 30 s a generic client
/// would wait — the defaults are sized for that traffic. Override with
/// `Timeouts::from_millis`, the `QPWM_HTTP_TIMEOUT_MS` environment
/// variable, or the CLI's `--timeout-ms`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeouts {
    /// TCP connect timeout.
    pub connect: Duration,
    /// Per-response read timeout.
    pub read: Duration,
    /// Per-request write timeout.
    pub write: Duration,
}

impl Default for Timeouts {
    fn default() -> Self {
        Timeouts {
            connect: Duration::from_secs(2),
            read: Duration::from_secs(5),
            write: Duration::from_secs(5),
        }
    }
}

impl Timeouts {
    /// Uniform timeouts of `ms` milliseconds on connect, read and write.
    pub fn from_millis(ms: u64) -> Self {
        let d = Duration::from_millis(ms.max(1));
        Timeouts { connect: d, read: d, write: d }
    }

    /// The defaults, overridden by `QPWM_HTTP_TIMEOUT_MS` when set.
    pub fn from_env() -> Result<Self, String> {
        match std::env::var("QPWM_HTTP_TIMEOUT_MS") {
            Ok(raw) if !raw.trim().is_empty() => raw
                .trim()
                .parse()
                .map(Timeouts::from_millis)
                .map_err(|_| format!("QPWM_HTTP_TIMEOUT_MS needs milliseconds, got '{raw}'")),
            _ => Ok(Timeouts::default()),
        }
    }
}

/// A persistent keep-alive connection to one server.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
}

impl HttpClient {
    /// Connects to `addr` (`host:port`) with the default [`Timeouts`].
    pub fn connect(addr: &str) -> Result<HttpClient, String> {
        HttpClient::connect_with(addr, &Timeouts::default())
    }

    /// Connects to `addr` with explicit timeouts.
    pub fn connect_with(addr: &str, timeouts: &Timeouts) -> Result<HttpClient, String> {
        let sock_addr = addr
            .to_socket_addrs()
            .map_err(|e| format!("resolve {addr}: {e}"))?
            .next()
            .ok_or_else(|| format!("resolve {addr}: no address"))?;
        let stream = TcpStream::connect_timeout(&sock_addr, timeouts.connect)
            .map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(timeouts.read))
            .map_err(|e| e.to_string())?;
        stream
            .set_write_timeout(Some(timeouts.write))
            .map_err(|e| e.to_string())?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok(HttpClient { reader, writer: stream, host: addr.to_owned() })
    }

    /// Issues one request on the persistent connection and returns
    /// `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), String> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n",
            self.host,
            body.len()
        );
        self.writer
            .write_all(head.as_bytes())
            .and_then(|()| self.writer.write_all(body.as_bytes()))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send {target}: {e}"))?;
        read_response(&mut self.reader).map_err(|e| format!("read {target}: {e}"))
    }

    /// `GET target` on the persistent connection.
    pub fn get(&mut self, target: &str) -> Result<(u16, String), String> {
        self.request("GET", target, None)
    }
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Result<(u16, String), String> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line).map_err(|e| e.to_string())? == 0 {
        return Err("server closed the connection".into());
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line: {status_line:?}"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Err("truncated response head".into());
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "bad content-length".to_string())?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    String::from_utf8(body).map(|b| (status, b)).map_err(|e| e.to_string())
}

/// One-shot `GET` over a fresh connection.
pub fn http_get(addr: &str, target: &str) -> Result<(u16, String), String> {
    HttpClient::connect(addr)?.get(target)
}

/// One-shot `POST` over a fresh connection.
pub fn http_post(addr: &str, target: &str, body: &str) -> Result<(u16, String), String> {
    HttpClient::connect(addr)?.request("POST", target, Some(body))
}

/// Retry/backoff/breaker configuration for [`RetryingClient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff pause.
    pub max_backoff: Duration,
    /// Wall-clock budget per request (attempts + pauses).
    pub deadline: Duration,
    /// Consecutive failed *requests* that open the circuit breaker
    /// (0 disables the breaker).
    pub breaker_threshold: u32,
    /// Requests failed fast while the breaker is open, before the next
    /// probe is allowed through (half-open).
    pub breaker_cooldown: u32,
    /// Seed of the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            deadline: Duration::from_secs(10),
            breaker_threshold: 8,
            breaker_cooldown: 16,
            seed: 0x7e7,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, breaker disabled) —
    /// every transport fault is immediately permanent.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            breaker_threshold: 0,
            ..RetryPolicy::default()
        }
    }

    /// The pause before retry number `attempt` (1-based): exponential in
    /// the attempt with multiplicative jitter in `[0.5, 1.5)` drawn from
    /// the deterministic rng.
    pub fn backoff(&self, attempt: u32, rng: &mut Rng) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
            .min(self.max_backoff);
        exp.mul_f64(0.5 + rng.gen_f64())
    }
}

/// Transport counters accumulated by [`RetryingClient`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Individual wire attempts (including the first try of each
    /// request).
    pub attempts: u64,
    /// Attempts beyond the first, after a backoff pause.
    pub retries: u64,
    /// Reconnects after a broken keep-alive connection.
    pub reconnects: u64,
    /// Requests that failed permanently (every attempt exhausted).
    pub failed_requests: u64,
    /// Requests rejected without I/O while the breaker was open.
    pub breaker_fast_fails: u64,
}

/// A keep-alive HTTP client that absorbs transient faults.
///
/// Wraps [`HttpClient`] with the [`RetryPolicy`] loop: 5xx responses
/// and transport errors are retried with jittered exponential backoff
/// under a per-request deadline; a broken connection is re-established
/// on the next attempt; a run of permanently failed requests opens a
/// circuit breaker that fails fast for a cooldown before probing again
/// (so a dead server costs O(1) timeouts, not one per remaining
/// request).
pub struct RetryingClient {
    addr: String,
    timeouts: Timeouts,
    policy: RetryPolicy,
    conn: Option<HttpClient>,
    ever_connected: bool,
    rng: Rng,
    stats: TransportStats,
    consecutive_failures: u32,
    breaker_open_for: u32,
}

impl RetryingClient {
    /// A client for `addr` (`host:port`); connects lazily on the first
    /// request.
    pub fn new(addr: &str, timeouts: Timeouts, policy: RetryPolicy) -> Self {
        RetryingClient {
            addr: addr.to_owned(),
            timeouts,
            policy,
            conn: None,
            ever_connected: false,
            rng: Rng::seed_from_u64(policy.seed),
            stats: TransportStats::default(),
            consecutive_failures: 0,
            breaker_open_for: 0,
        }
    }

    /// The target address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Counters so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// `GET target` with retries.
    pub fn get(&mut self, target: &str) -> Result<(u16, String), String> {
        self.request("GET", target, None)
    }

    /// Issues one logical request, retrying transient faults.
    ///
    /// Returns `Ok` for any response the server actually produced except
    /// retryable 5xx (500/503, which are treated as transient); returns
    /// `Err` only when the request failed permanently — attempts
    /// exhausted, deadline passed, or breaker open.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), String> {
        if self.breaker_open_for > 0 {
            self.breaker_open_for -= 1;
            self.stats.breaker_fast_fails += 1;
            return Err(format!(
                "circuit breaker open ({} fast-fail(s) before the next probe)",
                self.breaker_open_for
            ));
        }
        let start = Instant::now();
        let max_attempts = self.policy.max_attempts.max(1);
        let mut last_error = String::new();
        for attempt in 1..=max_attempts {
            self.stats.attempts += 1;
            match self.try_once(method, target, body) {
                Ok((status, text)) if status != 500 && status != 503 => {
                    self.consecutive_failures = 0;
                    return Ok((status, text));
                }
                Ok((status, _)) => {
                    // retryable server-side failure; the keep-alive
                    // connection is still good (the response was read)
                    last_error = format!("server returned {status}");
                }
                Err(e) => {
                    // transport failure: the connection is suspect
                    last_error = e;
                    self.conn = None;
                }
            }
            if attempt == max_attempts {
                break;
            }
            let pause = self.policy.backoff(attempt, &mut self.rng);
            if start.elapsed() + pause >= self.policy.deadline {
                last_error.push_str(" (request deadline exhausted)");
                break;
            }
            std::thread::sleep(pause);
            self.stats.retries += 1;
        }
        self.stats.failed_requests += 1;
        self.consecutive_failures += 1;
        if self.policy.breaker_threshold > 0
            && self.consecutive_failures >= self.policy.breaker_threshold
        {
            self.breaker_open_for = self.policy.breaker_cooldown;
            self.consecutive_failures = 0;
        }
        Err(format!("{method} {target}: {last_error}"))
    }

    fn try_once(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), String> {
        if self.conn.is_none() {
            let conn = HttpClient::connect_with(&self.addr, &self.timeouts)?;
            if self.ever_connected {
                self.stats.reconnects += 1;
            }
            self.ever_connected = true;
            self.conn = Some(conn);
        }
        self.conn
            .as_mut()
            .expect("connection just established")
            .request(method, target, body)
    }
}

/// Extracts `(tuple, weight)` pairs from a `/answer` body.
///
/// This is a purpose-built scanner for the server's own rendering (each
/// answer is `{"t":[ids],...,"w":value}`), not a general JSON parser —
/// the workspace carries none, and the format is under our control.
pub fn parse_answer_tuples(body: &str) -> Result<Vec<(Vec<Element>, i64)>, String> {
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(t_pos) = rest.find("\"t\":[") {
        let after_t = &rest[t_pos + 5..];
        let close = after_t
            .find(']')
            .ok_or_else(|| "unterminated tuple array".to_string())?;
        let ids: Result<Vec<Element>, _> = after_t[..close]
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse::<Element>())
            .collect();
        let ids = ids.map_err(|e| format!("bad tuple id: {e}"))?;
        let after_ids = &after_t[close..];
        let w_pos = after_ids
            .find("\"w\":")
            .ok_or_else(|| "answer without a weight".to_string())?;
        let after_w = &after_ids[w_pos + 4..];
        let end = after_w
            .find(['}', ','])
            .ok_or_else(|| "unterminated weight".to_string())?;
        let w: i64 = after_w[..end]
            .trim()
            .parse()
            .map_err(|_| format!("bad weight '{}'", &after_w[..end]))?;
        out.push((ids, w));
        rest = &after_w[end..];
    }
    Ok(out)
}

/// Scans a JSON body for `"name":<integer>`.
pub fn parse_json_uint(body: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\":");
    let pos = body.find(&needle)?;
    let rest = &body[pos + needle.len()..];
    let digits: String = rest.trim_start().chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// One answer set with its aggregate, as fetched from the wire.
type AnswerTuples = Vec<(Vec<Element>, i64)>;

/// A suspect data server reached over HTTP — the remote counterpart of
/// [`qpwm_core::detect::HonestServer`].
///
/// All requests go through one keep-alive [`RetryingClient`]: transient
/// transport faults are retried transparently; a request that fails
/// permanently is an unread answer, counted in
/// [`RemoteServer::failed_reads`] — the missing-read budget the
/// detector folds into its effective significance sample.
pub struct RemoteServer {
    client: Mutex<RetryingClient>,
    num_parameters: usize,
    failed_reads: AtomicUsize,
    /// Parameters fetched per `POST /answers` round trip; 0 or 1
    /// disables batching (every read is its own `GET /answer`).
    batch: usize,
    /// Answers fetched ahead by a batch request, keyed by parameter.
    prefetched: Mutex<HashMap<usize, AnswerTuples>>,
}

impl RemoteServer {
    /// Probes `addr`'s `/healthz` (default timeouts — honoring
    /// `QPWM_HTTP_TIMEOUT_MS` — and default retry policy) and records
    /// the parameter-domain size. Batching is off: each read is one
    /// `GET /answer`, the finest granularity for fault accounting.
    pub fn connect(addr: &str) -> Result<RemoteServer, String> {
        RemoteServer::connect_with(addr, Timeouts::from_env()?, RetryPolicy::default())
    }

    /// Probes `addr`'s `/healthz` with explicit transport configuration
    /// (batching off).
    pub fn connect_with(
        addr: &str,
        timeouts: Timeouts,
        policy: RetryPolicy,
    ) -> Result<RemoteServer, String> {
        RemoteServer::connect_batched(addr, timeouts, policy, 0)
    }

    /// Like [`RemoteServer::connect_with`], but reads ahead `batch`
    /// parameters per `POST /answers` round trip, amortizing request
    /// parsing and syscalls across the audit. A failed batch falls back
    /// to a single `GET /answer` for the current parameter, so fault
    /// semantics degrade gracefully to the unbatched path.
    pub fn connect_batched(
        addr: &str,
        timeouts: Timeouts,
        policy: RetryPolicy,
        batch: usize,
    ) -> Result<RemoteServer, String> {
        let mut client = RetryingClient::new(addr, timeouts, policy);
        let (status, body) = client.get("/healthz")?;
        if status != 200 {
            return Err(format!("{addr}/healthz returned {status}"));
        }
        let num_parameters = parse_json_uint(&body, "parameters")
            .ok_or_else(|| format!("no parameter count in healthz body: {body}"))?
            as usize;
        Ok(RemoteServer {
            client: Mutex::new(client),
            num_parameters,
            failed_reads: AtomicUsize::new(0),
            batch,
            prefetched: Mutex::new(HashMap::new()),
        })
    }

    /// Fetches `start_i..start_i+batch` in one `POST /answers`, parking
    /// everything but `start_i` in the prefetch map. `None` means the
    /// batch failed (transport or parse) and the caller should fall
    /// back to a single `GET`.
    fn prefetch_batch(
        &self,
        client: &mut RetryingClient,
        start_i: usize,
    ) -> Option<AnswerTuples> {
        let end = (start_i + self.batch).min(self.num_parameters);
        let body = (start_i..end).map(|i| i.to_string()).collect::<Vec<_>>().join(" ");
        let (status, text) = client.request("POST", "/answers", Some(&body)).ok()?;
        if status != 200 {
            return None;
        }
        let mut wanted = None;
        let mut map = self.prefetched.lock().expect("prefetch map poisoned");
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Some(i) = parse_json_uint(line, "param").map(|i| i as usize) else { continue };
            let Ok(tuples) = parse_answer_tuples(line) else { continue };
            if i == start_i {
                wanted = Some(tuples);
            } else {
                map.insert(i, tuples);
            }
        }
        wanted
    }

    /// The server address.
    pub fn addr(&self) -> String {
        self.client.lock().expect("client poisoned").addr().to_owned()
    }

    /// Parameters whose answers could not be read despite retries — the
    /// missing-read budget. Detection shrinks its effective sample by
    /// the pairs these reads would have covered instead of treating
    /// them as mark evidence.
    pub fn failed_reads(&self) -> usize {
        self.failed_reads.load(Ordering::Relaxed)
    }

    /// Transport counters accumulated so far.
    pub fn transport_stats(&self) -> TransportStats {
        self.client.lock().expect("client poisoned").stats()
    }
}

impl AnswerServer for RemoteServer {
    fn num_parameters(&self) -> usize {
        self.num_parameters
    }

    /// One `GET /answer?i=<i>` per parameter over the retrying
    /// transport — or, when batching is on, one `POST /answers` per
    /// `batch` parameters with the rest served from the prefetch map. A
    /// *permanent* transport error (or an unparseable body) reads as an
    /// empty answer set and increments the failed-read budget — the
    /// affected pairs surface as missing reads that shrink the
    /// effective detection sample rather than corrupt bits.
    fn answer(&self, i: usize) -> Vec<(Vec<Element>, i64)> {
        if self.batch > 1 {
            if let Some(tuples) = self.prefetched.lock().expect("prefetch map poisoned").remove(&i)
            {
                return tuples;
            }
        }
        let mut client = self.client.lock().expect("client poisoned");
        if self.batch > 1 {
            if let Some(tuples) = self.prefetch_batch(&mut client, i) {
                return tuples;
            }
        }
        match client.get(&format!("/answer?i={i}")) {
            Ok((200, body)) => match parse_answer_tuples(&body) {
                Ok(tuples) => tuples,
                Err(_) => {
                    self.failed_reads.fetch_add(1, Ordering::Relaxed);
                    Vec::new()
                }
            },
            _ => {
                self.failed_reads.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_servers_answer_rendering() {
        let body = "{\"param\":0,\"label\":\"a\",\"count\":2,\"answers\":[{\"t\":[4],\"label\":\"x\",\"w\":7},{\"t\":[5,6],\"label\":\"y,z\",\"w\":-3}]}\n";
        let parsed = parse_answer_tuples(body).expect("parses");
        assert_eq!(parsed, vec![(vec![4], 7), (vec![5, 6], -3)]);
    }

    #[test]
    fn empty_answer_set_parses_to_nothing() {
        let body = "{\"param\":1,\"label\":\"b\",\"count\":0,\"answers\":[]}\n";
        assert_eq!(parse_answer_tuples(body).expect("parses"), Vec::new());
    }

    #[test]
    fn uint_scanning() {
        let body = "{\"status\":\"ok\",\"parameters\":42,\"output_arity\":1}";
        assert_eq!(parse_json_uint(body, "parameters"), Some(42));
        assert_eq!(parse_json_uint(body, "missing"), None);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            ..RetryPolicy::default()
        };
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut rng = Rng::seed_from_u64(seed);
            (1..=6).map(|a| policy.backoff(a, &mut rng)).collect()
        };
        assert_eq!(schedule(1), schedule(1), "same seed, same schedule");
        assert_ne!(schedule(1), schedule(2), "different seeds jitter differently");
        for (attempt, pause) in schedule(7).iter().enumerate() {
            // jitter keeps each pause within [0.5, 1.5) of the capped
            // exponential step
            let step = policy
                .base_backoff
                .saturating_mul(1 << attempt)
                .min(policy.max_backoff);
            assert!(*pause >= step.mul_f64(0.5), "attempt {attempt}: {pause:?}");
            assert!(*pause < step.mul_f64(1.5), "attempt {attempt}: {pause:?}");
        }
    }

    #[test]
    fn timeouts_from_millis() {
        let t = Timeouts::from_millis(250);
        assert_eq!(t.connect, Duration::from_millis(250));
        assert_eq!(t.read, Duration::from_millis(250));
        assert_eq!(t.write, Duration::from_millis(250));
        // zero is clamped to something positive (a zero read timeout is
        // invalid for std sockets)
        assert!(Timeouts::from_millis(0).read > Duration::ZERO);
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_half_opens() {
        // 127.0.0.1:1 refuses connections immediately, so every attempt
        // is a fast permanent failure.
        let policy = RetryPolicy {
            max_attempts: 1,
            breaker_threshold: 2,
            breaker_cooldown: 3,
            deadline: Duration::from_secs(1),
            ..RetryPolicy::default()
        };
        let mut client = RetryingClient::new("127.0.0.1:1", Timeouts::from_millis(200), policy);
        assert!(client.get("/x").is_err());
        assert!(client.get("/x").is_err()); // second failure: breaker opens
        let after_failures = client.stats();
        assert_eq!(after_failures.failed_requests, 2);
        assert_eq!(after_failures.attempts, 2);
        for _ in 0..3 {
            assert!(client.get("/x").is_err()); // cooldown: no I/O
        }
        let during_open = client.stats();
        assert_eq!(during_open.breaker_fast_fails, 3);
        assert_eq!(during_open.attempts, 2, "open breaker must not touch the wire");
        assert!(client.get("/x").is_err()); // half-open probe reaches the wire
        assert_eq!(client.stats().attempts, 3);
    }

    #[test]
    fn retry_policy_none_is_single_shot() {
        let policy = RetryPolicy::none();
        assert_eq!(policy.max_attempts, 1);
        assert_eq!(policy.breaker_threshold, 0);
        let mut client = RetryingClient::new("127.0.0.1:1", Timeouts::from_millis(200), policy);
        for _ in 0..5 {
            assert!(client.get("/x").is_err());
        }
        let stats = client.stats();
        assert_eq!(stats.attempts, 5, "breaker disabled: every request hits the wire");
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.breaker_fast_fails, 0);
    }
}
