//! The owner's side of the wire: a minimal blocking HTTP client and a
//! remote [`AnswerServer`] implementation.
//!
//! [`RemoteServer`] is the deployment-scenario detector: the owner acts
//! as an ordinary user of a suspect data server, replaying the public
//! parameter domain over `GET /answer` and feeding the observed
//! `(b̄, W(b̄))` pairs into the standard
//! [`qpwm_core::detect::ObservedWeights`] → extraction pipeline. Element
//! ids are taken from the `"t"` arrays of the server's JSON, so
//! detection works id-for-id as long as owner and server load the same
//! public database (same interning order) — the paper's setting, where
//! the *data* is public and only the weights carry the mark.

use qpwm_core::detect::AnswerServer;
use qpwm_structures::Element;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A persistent keep-alive connection to one server.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
}

impl HttpClient {
    /// Connects to `addr` (`host:port`).
    pub fn connect(addr: &str) -> Result<HttpClient, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| e.to_string())?;
        stream
            .set_write_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| e.to_string())?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok(HttpClient { reader, writer: stream, host: addr.to_owned() })
    }

    /// Issues one request on the persistent connection and returns
    /// `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), String> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n",
            self.host,
            body.len()
        );
        self.writer
            .write_all(head.as_bytes())
            .and_then(|()| self.writer.write_all(body.as_bytes()))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send {target}: {e}"))?;
        read_response(&mut self.reader).map_err(|e| format!("read {target}: {e}"))
    }

    /// `GET target` on the persistent connection.
    pub fn get(&mut self, target: &str) -> Result<(u16, String), String> {
        self.request("GET", target, None)
    }
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Result<(u16, String), String> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line).map_err(|e| e.to_string())? == 0 {
        return Err("server closed the connection".into());
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line: {status_line:?}"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Err("truncated response head".into());
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "bad content-length".to_string())?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    String::from_utf8(body).map(|b| (status, b)).map_err(|e| e.to_string())
}

/// One-shot `GET` over a fresh connection.
pub fn http_get(addr: &str, target: &str) -> Result<(u16, String), String> {
    HttpClient::connect(addr)?.get(target)
}

/// One-shot `POST` over a fresh connection.
pub fn http_post(addr: &str, target: &str, body: &str) -> Result<(u16, String), String> {
    HttpClient::connect(addr)?.request("POST", target, Some(body))
}

/// Extracts `(tuple, weight)` pairs from a `/answer` body.
///
/// This is a purpose-built scanner for the server's own rendering (each
/// answer is `{"t":[ids],...,"w":value}`), not a general JSON parser —
/// the workspace carries none, and the format is under our control.
pub fn parse_answer_tuples(body: &str) -> Result<Vec<(Vec<Element>, i64)>, String> {
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(t_pos) = rest.find("\"t\":[") {
        let after_t = &rest[t_pos + 5..];
        let close = after_t
            .find(']')
            .ok_or_else(|| "unterminated tuple array".to_string())?;
        let ids: Result<Vec<Element>, _> = after_t[..close]
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse::<Element>())
            .collect();
        let ids = ids.map_err(|e| format!("bad tuple id: {e}"))?;
        let after_ids = &after_t[close..];
        let w_pos = after_ids
            .find("\"w\":")
            .ok_or_else(|| "answer without a weight".to_string())?;
        let after_w = &after_ids[w_pos + 4..];
        let end = after_w
            .find(['}', ','])
            .ok_or_else(|| "unterminated weight".to_string())?;
        let w: i64 = after_w[..end]
            .trim()
            .parse()
            .map_err(|_| format!("bad weight '{}'", &after_w[..end]))?;
        out.push((ids, w));
        rest = &after_w[end..];
    }
    Ok(out)
}

/// Scans a JSON body for `"name":<integer>`.
pub fn parse_json_uint(body: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\":");
    let pos = body.find(&needle)?;
    let rest = &body[pos + needle.len()..];
    let digits: String = rest.trim_start().chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// A suspect data server reached over HTTP — the remote counterpart of
/// [`qpwm_core::detect::HonestServer`].
pub struct RemoteServer {
    addr: String,
    num_parameters: usize,
}

impl RemoteServer {
    /// Probes `addr`'s `/healthz` and records the parameter-domain size.
    pub fn connect(addr: &str) -> Result<RemoteServer, String> {
        let (status, body) = http_get(addr, "/healthz")?;
        if status != 200 {
            return Err(format!("{addr}/healthz returned {status}"));
        }
        let num_parameters = parse_json_uint(&body, "parameters")
            .ok_or_else(|| format!("no parameter count in healthz body: {body}"))?
            as usize;
        Ok(RemoteServer { addr: addr.to_owned(), num_parameters })
    }

    /// The server address.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl AnswerServer for RemoteServer {
    fn num_parameters(&self) -> usize {
        self.num_parameters
    }

    /// One `GET /answer?i=<i>` per parameter. A transport error reads as
    /// an empty answer set — the affected pairs surface as missing reads
    /// in the detection report rather than a crash, matching how the
    /// detector degrades under partial access.
    fn answer(&self, i: usize) -> Vec<(Vec<Element>, i64)> {
        match http_get(&self.addr, &format!("/answer?i={i}")) {
            Ok((200, body)) => parse_answer_tuples(&body).unwrap_or_default(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_servers_answer_rendering() {
        let body = "{\"param\":0,\"label\":\"a\",\"count\":2,\"answers\":[{\"t\":[4],\"label\":\"x\",\"w\":7},{\"t\":[5,6],\"label\":\"y,z\",\"w\":-3}]}\n";
        let parsed = parse_answer_tuples(body).expect("parses");
        assert_eq!(parsed, vec![(vec![4], 7), (vec![5, 6], -3)]);
    }

    #[test]
    fn empty_answer_set_parses_to_nothing() {
        let body = "{\"param\":1,\"label\":\"b\",\"count\":0,\"answers\":[]}\n";
        assert_eq!(parse_answer_tuples(body).expect("parses"), Vec::new());
    }

    #[test]
    fn uint_scanning() {
        let body = "{\"status\":\"ok\",\"parameters\":42,\"output_arity\":1}";
        assert_eq!(parse_json_uint(body, "parameters"), Some(42));
        assert_eq!(parse_json_uint(body, "missing"), None);
    }
}
