//! Property-based tests for the relational substrate.

use proptest::prelude::*;
use qpwm_structures::{
    distortion, GaifmanGraph, Neighborhood, Schema, Structure, StructureBuilder, Weights,
};
use std::sync::Arc;

/// Strategy: a random graph structure with n in [2, 24] and random edges.
fn graph_strategy() -> impl Strategy<Value = Structure> {
    (2u32..24).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..48).prop_map(move |edges| {
            let schema = Arc::new(Schema::graph());
            let mut b = StructureBuilder::new(schema, n);
            for (u, v) in edges {
                b.add(0, &[u, v]);
            }
            b.build()
        })
    })
}

fn weights_strategy(n: u32) -> impl Strategy<Value = Weights> {
    proptest::collection::vec(-1000i64..1000, n as usize).prop_map(|vals| {
        let mut w = Weights::new(1);
        for (e, v) in vals.into_iter().enumerate() {
            w.set(&[e as u32], v);
        }
        w
    })
}

proptest! {
    #[test]
    fn spheres_are_monotone_in_radius(s in graph_strategy(), center in 0u32..24, rho in 0u32..4) {
        prop_assume!(center < s.universe_size());
        let g = GaifmanGraph::of(&s);
        let small = g.sphere(&[center], rho);
        let large = g.sphere(&[center], rho + 1);
        // every element of the ρ-sphere is in the (ρ+1)-sphere
        for e in &small {
            prop_assert!(large.binary_search(e).is_ok());
        }
        prop_assert!(small.binary_search(&center).is_ok());
    }

    #[test]
    fn gaifman_adjacency_is_symmetric(s in graph_strategy()) {
        let g = GaifmanGraph::of(&s);
        for u in s.universe() {
            for &v in g.neighbors(u) {
                prop_assert!(g.neighbors(v).binary_search(&u).is_ok());
            }
        }
    }

    #[test]
    fn distance_satisfies_triangle_inequality(s in graph_strategy()) {
        let g = GaifmanGraph::of(&s);
        let n = s.universe_size().min(8);
        for a in 0..n {
            let da = g.distances_from(a);
            for b in 0..n {
                let db = g.distances_from(b);
                for c in 0..n {
                    if let (Some(ab), Some(bc), Some(ac)) =
                        (da[b as usize], db[c as usize], da[c as usize])
                    {
                        prop_assert!(ac <= ab + bc);
                    }
                }
            }
        }
    }

    #[test]
    fn neighborhood_iso_is_reflexive_and_symmetric(
        s in graph_strategy(),
        a in 0u32..24,
        b in 0u32..24,
        rho in 0u32..3,
    ) {
        prop_assume!(a < s.universe_size() && b < s.universe_size());
        let g = GaifmanGraph::of(&s);
        let na = Neighborhood::extract(&s, &g, &[a], rho);
        let nb = Neighborhood::extract(&s, &g, &[b], rho);
        prop_assert!(qpwm_structures::are_isomorphic(&na, &na));
        prop_assert_eq!(
            qpwm_structures::are_isomorphic(&na, &nb),
            qpwm_structures::are_isomorphic(&nb, &na)
        );
    }

    #[test]
    fn isomorphic_neighborhoods_have_equal_fingerprints(
        s in graph_strategy(),
        a in 0u32..24,
        b in 0u32..24,
        rho in 0u32..3,
    ) {
        prop_assume!(a < s.universe_size() && b < s.universe_size());
        let g = GaifmanGraph::of(&s);
        let na = Neighborhood::extract(&s, &g, &[a], rho);
        let nb = Neighborhood::extract(&s, &g, &[b], rho);
        if qpwm_structures::are_isomorphic(&na, &nb) {
            prop_assert_eq!(na.fingerprint(), nb.fingerprint());
        }
    }

    #[test]
    fn local_distortion_is_a_metric_ish(wa in weights_strategy(10), wb in weights_strategy(10)) {
        // symmetry and identity
        prop_assert_eq!(
            distortion::local_distortion(&wa, &wb),
            distortion::local_distortion(&wb, &wa)
        );
        prop_assert_eq!(distortion::local_distortion(&wa, &wa), 0);
        prop_assert!(distortion::local_distortion(&wa, &wb) >= 0);
    }

    #[test]
    fn global_distortion_bounded_by_local_times_set_size(
        wa in weights_strategy(10),
        wb in weights_strategy(10),
        set_mask in 0u32..1024,
    ) {
        let set: Vec<Vec<u32>> = (0..10u32)
            .filter(|i| set_mask >> i & 1 == 1)
            .map(|i| vec![i])
            .collect();
        let report = distortion::global_distortion(&wa, &wb, std::slice::from_ref(&set));
        let local = distortion::local_distortion(&wa, &wb);
        prop_assert!(report.max_global <= local * set.len() as i64);
    }
}
