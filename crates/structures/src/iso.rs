//! Exact isomorphism of pointed neighborhoods.
//!
//! Neighborhood isomorphism (`≈` in the paper) must map the i-th
//! distinguished point of one structure to the i-th point of the other and
//! preserve every relation in both directions. Neighborhoods in
//! `STRUCT_k[τ]` have at most `r·k^ρ`-ish elements — independent of the
//! database size — so a backtracking search with degree pruning is exact
//! and fast.

use crate::neighborhood::Neighborhood;

/// Tests pointed isomorphism of two neighborhoods.
pub fn are_isomorphic(a: &Neighborhood, b: &Neighborhood) -> bool {
    if a.len() != b.len()
        || a.num_relations() != b.num_relations()
        || a.points().len() != b.points().len()
    {
        return false;
    }
    for rel in 0..a.num_relations() {
        if a.tuples(rel).len() != b.tuples(rel).len() {
            return false;
        }
    }
    if a.fingerprint() != b.fingerprint() {
        return false;
    }

    let n = a.len();
    let adj_a = a.local_adjacency();
    let adj_b = b.local_adjacency();
    let prof_a = a.relation_profiles();
    let prof_b = b.relation_profiles();
    // mapping[x] = image of x in b; used[y] = y already an image.
    let mut mapping: Vec<Option<u32>> = vec![None; n];
    let mut used: Vec<bool> = vec![false; n];

    // Points are forced: point i of a must map to point i of b.
    for (pa, pb) in a.points().iter().zip(b.points()) {
        match mapping[*pa as usize] {
            None => {
                if used[*pb as usize] {
                    return false; // two distinct points forced onto one image
                }
                if adj_a[*pa as usize].len() != adj_b[*pb as usize].len()
                    || prof_a[*pa as usize] != prof_b[*pb as usize]
                {
                    return false;
                }
                mapping[*pa as usize] = Some(*pb);
                used[*pb as usize] = true;
            }
            Some(existing) => {
                if existing != *pb {
                    return false; // repeated point with conflicting images
                }
            }
        }
    }

    // Order the unmapped vertices by decreasing degree (most constrained
    // first); a BFS order from the points would also work, degree order is
    // simpler and the graphs are tiny.
    let mut order: Vec<u32> = (0..n as u32).filter(|&v| mapping[v as usize].is_none()).collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(adj_a[v as usize].len()));

    backtrack(
        a,
        b,
        &adj_a,
        &adj_b,
        &prof_a,
        &prof_b,
        &order,
        0,
        &mut mapping,
        &mut used,
    )
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    a: &Neighborhood,
    b: &Neighborhood,
    adj_a: &[Vec<u32>],
    adj_b: &[Vec<u32>],
    prof_a: &[crate::neighborhood::RelationProfile],
    prof_b: &[crate::neighborhood::RelationProfile],
    order: &[u32],
    depth: usize,
    mapping: &mut Vec<Option<u32>>,
    used: &mut Vec<bool>,
) -> bool {
    if depth == order.len() {
        return relations_preserved(a, b, mapping);
    }
    let v = order[depth];
    let deg_v = adj_a[v as usize].len();
    for cand in 0..adj_b.len() as u32 {
        if used[cand as usize]
            || adj_b[cand as usize].len() != deg_v
            || prof_b[cand as usize] != prof_a[v as usize]
        {
            continue;
        }
        // Adjacency consistency with already-mapped vertices (necessary
        // condition; full relation check happens at the leaf).
        let consistent = adj_a[v as usize].iter().all(|&u| match mapping[u as usize] {
            Some(img) => adj_b[cand as usize].binary_search(&img).is_ok(),
            None => true,
        });
        if !consistent {
            continue;
        }
        mapping[v as usize] = Some(cand);
        used[cand as usize] = true;
        if backtrack(a, b, adj_a, adj_b, prof_a, prof_b, order, depth + 1, mapping, used) {
            return true;
        }
        mapping[v as usize] = None;
        used[cand as usize] = false;
    }
    false
}

fn relations_preserved(a: &Neighborhood, b: &Neighborhood, mapping: &[Option<u32>]) -> bool {
    let mut image = vec![0u32; mapping.len()];
    for (i, m) in mapping.iter().enumerate() {
        image[i] = m.expect("complete mapping at leaf");
    }
    let mut scratch: Vec<u32> = Vec::new();
    for rel in 0..a.num_relations() {
        let b_tuples = b.tuples(rel);
        for t in a.tuples(rel) {
            scratch.clear();
            scratch.extend(t.iter().map(|&x| image[x as usize]));
            if b_tuples.binary_search_by(|probe| probe.as_slice().cmp(&scratch)).is_err() {
                return false;
            }
        }
        // Equal counts + injectivity make the reverse direction automatic.
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaifman::GaifmanGraph;
    use crate::schema::Schema;
    use crate::structure::{figure1_instance, Structure, StructureBuilder};
    use std::sync::Arc;

    fn nbhd(s: &Structure, centers: &[u32], rho: u32) -> Neighborhood {
        let g = GaifmanGraph::of(s);
        Neighborhood::extract(s, &g, centers, rho)
    }

    #[test]
    fn figure1_equivalences_hold() {
        // Figure 1 of the paper: N1(a) ≈ N1(b), N1(d) ≈ N1(e), N1(c) ≈ N1(f).
        let s = figure1_instance();
        assert!(are_isomorphic(&nbhd(&s, &[0], 1), &nbhd(&s, &[1], 1)));
        assert!(are_isomorphic(&nbhd(&s, &[3], 1), &nbhd(&s, &[4], 1)));
        assert!(are_isomorphic(&nbhd(&s, &[2], 1), &nbhd(&s, &[5], 1)));
    }

    #[test]
    fn figure1_distinct_types_rejected() {
        let s = figure1_instance();
        assert!(!are_isomorphic(&nbhd(&s, &[0], 1), &nbhd(&s, &[2], 1)));
        assert!(!are_isomorphic(&nbhd(&s, &[3], 1), &nbhd(&s, &[2], 1)));
        assert!(!are_isomorphic(&nbhd(&s, &[0], 1), &nbhd(&s, &[3], 1)));
    }

    #[test]
    fn orientation_matters() {
        // Directed edge 0->1 vs 1->0: pointed neighborhoods of the source
        // and target differ.
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 2);
        b.add(0, &[0, 1]);
        let s = b.build();
        let n0 = nbhd(&s, &[0], 1);
        let n1 = nbhd(&s, &[1], 1);
        assert!(!are_isomorphic(&n0, &n1));
        assert!(are_isomorphic(&n0, &n0));
    }

    #[test]
    fn pair_neighborhoods_respect_point_order() {
        let s = figure1_instance();
        let nab = nbhd(&s, &[0, 1], 1);
        let nba = nbhd(&s, &[1, 0], 1);
        // a-b is a symmetric edge here, so swapping points is isomorphic.
        assert!(are_isomorphic(&nab, &nba));
        let nad = nbhd(&s, &[0, 3], 1);
        assert!(!are_isomorphic(&nab, &nad) || nab.len() != nad.len());
    }

    #[test]
    fn repeated_points_must_repeat() {
        let s = figure1_instance();
        let naa = nbhd(&s, &[0, 0], 1);
        let nab = nbhd(&s, &[0, 1], 1);
        assert!(!are_isomorphic(&naa, &nab));
        assert!(are_isomorphic(&naa, &nbhd(&s, &[1, 1], 1)));
    }

    #[test]
    fn larger_symmetric_cycle() {
        // 6-cycle: all radius-1 neighborhoods isomorphic.
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 6);
        for i in 0..6u32 {
            let j = (i + 1) % 6;
            b.add(0, &[i, j]);
            b.add(0, &[j, i]);
        }
        let s = b.build();
        let n0 = nbhd(&s, &[0], 1);
        for v in 1..6u32 {
            assert!(are_isomorphic(&n0, &nbhd(&s, &[v], 1)), "vertex {v}");
        }
    }
}
