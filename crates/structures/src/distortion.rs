//! Distortion assumptions (paper, section 1).
//!
//! `(G, W')` is a *c-local* distortion of `(G, W)` iff every weight moved by
//! at most `c`; it is a *d-global* distortion w.r.t. a query iff the
//! aggregate `f(ā)` moved by at most `d` for every parameter `ā`. The
//! global side needs the query's active sets, so this module exposes it
//! generically over any family of `(parameter, W_ā)` pairs — the `logic`
//! and `trees` crates supply those families.

use crate::structure::Element;
use crate::weighted::Weights;

/// Result of auditing a distortion: the extreme local and global deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistortionReport {
    /// `max |W(w) - W'(w)|` over all touched weights.
    pub max_local: i64,
    /// `max |f(ā) - f'(ā)|` over all audited parameters.
    pub max_global: i64,
    /// Parameter achieving `max_global` (index into the audited family).
    pub worst_parameter: Option<usize>,
}

impl DistortionReport {
    /// Does the audited pair satisfy the c-local distortion assumption?
    pub fn is_c_local(&self, c: i64) -> bool {
        self.max_local <= c
    }

    /// Does it satisfy the d-global distortion assumption?
    pub fn is_d_global(&self, d: i64) -> bool {
        self.max_global <= d
    }
}

/// The smallest `c` such that `after` is a c-local distortion of `before`.
pub fn local_distortion(before: &Weights, after: &Weights) -> i64 {
    before.max_pointwise_diff(after)
}

/// The aggregate `f(ā) = Σ_{b̄ ∈ W_ā} W(b̄)` for one active set.
pub fn f_value(weights: &Weights, active_set: &[Vec<Element>]) -> i64 {
    active_set.iter().map(|b| weights.get(b)).sum()
}

/// Audits both assumptions over a family of active sets.
///
/// `active_sets[i]` is `W_{ā_i}` for the i-th parameter in the audit.
pub fn global_distortion(
    before: &Weights,
    after: &Weights,
    active_sets: &[Vec<Vec<Element>>],
) -> DistortionReport {
    let max_local = local_distortion(before, after);
    let mut max_global = 0i64;
    let mut worst = None;
    for (i, set) in active_sets.iter().enumerate() {
        let delta = (f_value(before, set) - f_value(after, set)).abs();
        if delta > max_global {
            max_global = delta;
            worst = Some(i);
        }
    }
    DistortionReport { max_local, max_global, worst_parameter: worst }
}

/// Sum/mean/min/max aggregates — the paper notes `f` may use any of these
/// without changing the positive results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Sum of weights (the paper's default `f`).
    Sum,
    /// Arithmetic mean, rounded toward zero (integer weights).
    Mean,
    /// Minimum weight.
    Min,
    /// Maximum weight.
    Max,
}

impl Aggregate {
    /// Applies the aggregate to one active set. Empty sets yield 0.
    pub fn apply(&self, weights: &Weights, active_set: &[Vec<Element>]) -> i64 {
        self.apply_iter(weights, active_set.iter().map(Vec::as_slice))
    }

    /// Applies the aggregate to a stream of output tuples (one active
    /// set, borrowed — e.g. out of an interned [`crate::AnswerFamily`]).
    /// Empty streams yield 0.
    pub fn apply_iter<'a>(
        &self,
        weights: &Weights,
        tuples: impl Iterator<Item = &'a [Element]>,
    ) -> i64 {
        let mut count = 0i64;
        let mut sum = 0i64;
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        for b in tuples {
            let w = weights.get(b);
            count += 1;
            sum += w;
            min = min.min(w);
            max = max.max(w);
        }
        if count == 0 {
            return 0;
        }
        match self {
            Aggregate::Sum => sum,
            Aggregate::Mean => sum / count,
            Aggregate::Min => min,
            Aggregate::Max => max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(pairs: &[(u32, i64)]) -> Weights {
        let mut out = Weights::new(1);
        for &(k, v) in pairs {
            out.set(&[k], v);
        }
        out
    }

    #[test]
    fn example3_timetable_prime() {
        // Paper example 3: Timetable' moves every duration by ±10 minutes
        // (we use integer minutes). c = 10 holds; d = 10 fails for the
        // parameter "India discovery" whose f moved by 20.
        let original = w(&[(0, 635), (1, 380), (2, 375), (3, 210), (4, 170), (5, 600)]);
        let prime = w(&[(0, 645), (1, 390), (2, 385), (3, 200), (4, 180), (5, 600)]);
        // W_{India discovery} = {F21 (0), G12 (1)}
        let india = vec![vec![0u32], vec![1]];
        let nepal = vec![vec![0u32], vec![2], vec![3]];
        let tour = vec![vec![3u32], vec![4]];
        let report = global_distortion(&original, &prime, &[india, nepal, tour]);
        assert_eq!(report.max_local, 10);
        assert!(report.is_c_local(10));
        assert_eq!(report.max_global, 20);
        assert!(!report.is_d_global(10));
        assert_eq!(report.worst_parameter, Some(0));
    }

    #[test]
    fn example3_timetable_second() {
        // Timetable'' respects both c = 10 and d = 10.
        let original = w(&[(0, 635), (1, 380), (2, 375), (3, 210), (4, 170), (5, 600)]);
        let second = w(&[(0, 625), (1, 390), (2, 365), (3, 220), (4, 160), (5, 600)]);
        let india = vec![vec![0u32], vec![1]];
        let nepal = vec![vec![0u32], vec![2], vec![3]];
        let tour = vec![vec![3u32], vec![4]];
        let report = global_distortion(&original, &second, &[india, nepal, tour]);
        assert!(report.is_c_local(10));
        assert!(report.is_d_global(10));
    }

    #[test]
    fn identical_weights_have_zero_distortion() {
        let a = w(&[(0, 5)]);
        let report = global_distortion(&a, &a, &[vec![vec![0]]]);
        assert_eq!(report.max_local, 0);
        assert_eq!(report.max_global, 0);
        assert_eq!(report.worst_parameter, None);
    }

    #[test]
    fn balanced_pair_cancels_globally_not_locally() {
        // The (+1, -1) trick: local distortion 1, global distortion 0 on a
        // set containing both members.
        let before = w(&[(0, 10), (1, 10)]);
        let after = w(&[(0, 11), (1, 9)]);
        let both = vec![vec![0u32], vec![1]];
        let report = global_distortion(&before, &after, &[both]);
        assert_eq!(report.max_local, 1);
        assert_eq!(report.max_global, 0);
        // But a set separating the pair sees the full +1.
        let only_first = vec![vec![0u32]];
        let report2 = global_distortion(&before, &after, &[only_first]);
        assert_eq!(report2.max_global, 1);
    }

    #[test]
    fn aggregates() {
        let weights = w(&[(0, 2), (1, 4), (2, 9)]);
        let set = vec![vec![0u32], vec![1], vec![2]];
        assert_eq!(Aggregate::Sum.apply(&weights, &set), 15);
        assert_eq!(Aggregate::Mean.apply(&weights, &set), 5);
        assert_eq!(Aggregate::Min.apply(&weights, &set), 2);
        assert_eq!(Aggregate::Max.apply(&weights, &set), 9);
        assert_eq!(Aggregate::Sum.apply(&weights, &[]), 0);
    }
}
