//! Signatures (database schemas).
//!
//! A signature τ is a finite set of relation symbols with arities, plus the
//! arity `s` of the weight function `W : U^s -> N` (fixed by the schema, as
//! in the paper).

use std::fmt;

/// Identifier of a relation symbol within a [`Schema`] (dense index).
pub type RelId = usize;

/// A relation symbol: a name and an arity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelationSymbol {
    /// Human-readable name (e.g. `"Route"`).
    pub name: String,
    /// Number of columns.
    pub arity: usize,
}

/// A signature τ = {R_1, ..., R_t} together with the weight arity `s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    relations: Vec<RelationSymbol>,
    weight_arity: usize,
}

impl Schema {
    /// Creates a schema from `(name, arity)` pairs and the weight arity `s`.
    ///
    /// # Panics
    /// Panics if two relations share a name, if any arity is zero, or if
    /// `weight_arity` is zero — all of these are programming errors in the
    /// schema definition, not data errors.
    pub fn new<S: Into<String>>(relations: Vec<(S, usize)>, weight_arity: usize) -> Self {
        assert!(weight_arity > 0, "weight arity s must be positive");
        let relations: Vec<RelationSymbol> = relations
            .into_iter()
            .map(|(name, arity)| {
                assert!(arity > 0, "relation arity must be positive");
                RelationSymbol { name: name.into(), arity }
            })
            .collect();
        for i in 0..relations.len() {
            for j in (i + 1)..relations.len() {
                assert_ne!(relations[i].name, relations[j].name, "duplicate relation name");
            }
        }
        Schema { relations, weight_arity }
    }

    /// A schema with a single binary relation `E` and unary weights — the
    /// graph signature used throughout the paper's examples.
    pub fn graph() -> Self {
        Schema::new(vec![("E", 2)], 1)
    }

    /// Number of relation symbols.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The relation symbols, in declaration order.
    pub fn relations(&self) -> &[RelationSymbol] {
        &self.relations
    }

    /// Arity of relation `rel`.
    pub fn arity(&self, rel: RelId) -> usize {
        self.relations[rel].arity
    }

    /// Name of relation `rel`.
    pub fn name(&self, rel: RelId) -> &str {
        &self.relations[rel].name
    }

    /// Looks a relation up by name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.relations.iter().position(|r| r.name == name)
    }

    /// Arity `s` of the weight function `W : U^s -> N`.
    pub fn weight_arity(&self) -> usize {
        self.weight_arity
    }

    /// Largest relation arity (useful for sizing scratch buffers).
    pub fn max_arity(&self) -> usize {
        self.relations.iter().map(|r| r.arity).max().unwrap_or(0)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ = {{")?;
        for (i, r) in self.relations.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}", r.name, r.arity)?;
        }
        write!(f, "}}, s = {}", self.weight_arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_queries_schema() {
        let s = Schema::new(vec![("Route", 2), ("Timetable", 4)], 1);
        assert_eq!(s.num_relations(), 2);
        assert_eq!(s.arity(0), 2);
        assert_eq!(s.arity(1), 4);
        assert_eq!(s.name(1), "Timetable");
        assert_eq!(s.rel_id("Route"), Some(0));
        assert_eq!(s.rel_id("Nope"), None);
        assert_eq!(s.weight_arity(), 1);
        assert_eq!(s.max_arity(), 4);
    }

    #[test]
    fn graph_schema_shape() {
        let g = Schema::graph();
        assert_eq!(g.num_relations(), 1);
        assert_eq!(g.arity(0), 2);
        assert_eq!(g.name(0), "E");
    }

    #[test]
    fn display_is_readable() {
        let s = Schema::new(vec![("E", 2)], 1);
        assert_eq!(s.to_string(), "τ = {E/2}, s = 1");
    }

    #[test]
    #[should_panic(expected = "duplicate relation name")]
    fn rejects_duplicate_names() {
        let _ = Schema::new(vec![("E", 2), ("E", 3)], 1);
    }

    #[test]
    #[should_panic(expected = "weight arity")]
    fn rejects_zero_weight_arity() {
        let _ = Schema::new(vec![("E", 2)], 0);
    }
}
