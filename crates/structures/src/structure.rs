//! Finite structures (database instances).
//!
//! A structure `G = <U, R_1, ..., R_t>` interprets every relation symbol of
//! a [`Schema`] over a finite universe `U = {0, ..., n-1}`. Tuples are kept
//! both in a hash set (membership tests during formula evaluation) and in a
//! sorted vector (deterministic iteration for reproducible experiments).

use crate::schema::{RelId, Schema};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// An element of the universe.
pub type Element = u32;

/// A tuple of elements (length = the arity of its relation).
pub type Tuple = Vec<Element>;

/// One interpreted relation: tuples in sorted order, a membership index,
/// and per-position postings lists for candidate lookup.
#[derive(Debug, Clone, Default)]
struct Relation {
    sorted: Vec<Tuple>,
    index: HashSet<Tuple>,
    /// Per position `p` of the relation's arity, a CSR map from element
    /// `e` to the (ascending) indices into `sorted` of tuples with `e`
    /// at position `p`: `postings[p] = (offsets, tuple_indices)` with
    /// `offsets.len() == universe_size + 1`.
    postings: Vec<(Vec<u32>, Vec<u32>)>,
}

impl Relation {
    fn insert(&mut self, t: Tuple) -> bool {
        if self.index.insert(t.clone()) {
            self.sorted.push(t);
            true
        } else {
            false
        }
    }

    fn finish(&mut self, universe_size: u32) {
        self.sorted.sort_unstable();
        let arity = self.sorted.first().map(Vec::len).unwrap_or(0);
        let n = universe_size as usize;
        self.postings = (0..arity)
            .map(|pos| {
                // Counting sort by the component at `pos`: scanning
                // `sorted` in order keeps each bucket's tuple indices
                // ascending, which downstream code relies on for
                // deterministic, scan-order-identical iteration.
                let mut counts = vec![0u32; n + 1];
                for t in &self.sorted {
                    counts[t[pos] as usize + 1] += 1;
                }
                for i in 0..n {
                    counts[i + 1] += counts[i];
                }
                let mut ids = vec![0u32; self.sorted.len()];
                let mut cursor = counts.clone();
                for (i, t) in self.sorted.iter().enumerate() {
                    let slot = &mut cursor[t[pos] as usize];
                    ids[*slot as usize] = i as u32;
                    *slot += 1;
                }
                (counts, ids)
            })
            .collect();
    }

    /// Ascending indices into `sorted` of tuples with `e` at position `pos`.
    fn with_at(&self, pos: usize, e: Element) -> &[u32] {
        match self.postings.get(pos) {
            Some((offsets, ids)) if (e as usize + 1) < offsets.len() => {
                &ids[offsets[e as usize] as usize..offsets[e as usize + 1] as usize]
            }
            _ => &[],
        }
    }
}

/// A finite τ-structure (database instance).
///
/// Immutable once built; construct through [`StructureBuilder`].
#[derive(Debug, Clone)]
pub struct Structure {
    schema: Arc<Schema>,
    universe_size: u32,
    relations: Vec<Relation>,
    element_names: Option<Vec<String>>,
}

impl Structure {
    /// The schema this structure interprets.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Size `n` of the universe `U = {0, ..., n-1}`.
    pub fn universe_size(&self) -> u32 {
        self.universe_size
    }

    /// Iterator over all universe elements.
    pub fn universe(&self) -> impl Iterator<Item = Element> + Clone {
        0..self.universe_size
    }

    /// Does `rel` contain `tuple`?
    pub fn contains(&self, rel: RelId, tuple: &[Element]) -> bool {
        debug_assert_eq!(tuple.len(), self.schema.arity(rel));
        self.relations[rel].index.contains(tuple)
    }

    /// Tuples of `rel` in sorted order.
    pub fn tuples(&self, rel: RelId) -> &[Tuple] {
        &self.relations[rel].sorted
    }

    /// Indices (ascending, into [`Structure::tuples`]) of the tuples of
    /// `rel` whose component at `pos` is `e` — the postings list built at
    /// construction time. Empty for out-of-range `pos`/`e`.
    pub fn tuples_with(&self, rel: RelId, pos: usize, e: Element) -> &[u32] {
        self.relations[rel].with_at(pos, e)
    }

    /// Number of tuples of `rel` with `e` at position `pos` (postings
    /// list length — O(1)).
    pub fn count_with(&self, rel: RelId, pos: usize, e: Element) -> usize {
        self.relations[rel].with_at(pos, e).len()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.sorted.len()).sum()
    }

    /// Optional human-readable name of an element.
    pub fn element_name(&self, e: Element) -> Option<&str> {
        self.element_names
            .as_ref()
            .and_then(|names| names.get(e as usize))
            .map(String::as_str)
    }

    /// Name of `e` if one was registered, else its index rendered as text.
    pub fn display_element(&self, e: Element) -> String {
        self.element_name(e)
            .map(str::to_owned)
            .unwrap_or_else(|| e.to_string())
    }

    /// Restricts this structure to the elements of `keep` (the induced
    /// substructure): keeps exactly the tuples all of whose components lie
    /// in `keep`. Element indices are preserved (no renumbering), so the
    /// result shares the original universe size; use
    /// [`crate::neighborhood::Neighborhood`] for compact renumbered
    /// neighborhoods.
    pub fn induced(&self, keep: &HashSet<Element>) -> Structure {
        let mut relations = Vec::with_capacity(self.relations.len());
        for rel in &self.relations {
            let mut out = Relation::default();
            for t in &rel.sorted {
                if t.iter().all(|e| keep.contains(e)) {
                    out.insert(t.clone());
                }
            }
            out.finish(self.universe_size);
            relations.push(out);
        }
        Structure {
            schema: Arc::clone(&self.schema),
            universe_size: self.universe_size,
            relations,
            element_names: self.element_names.clone(),
        }
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "structure over {} (|U| = {})", self.schema, self.universe_size)?;
        for (id, rel) in self.relations.iter().enumerate() {
            write!(f, "  {}:", self.schema.name(id))?;
            for t in &rel.sorted {
                write!(f, " (")?;
                for (i, e) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", self.display_element(*e))?;
                }
                write!(f, ")")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Builder for [`Structure`].
#[derive(Debug)]
pub struct StructureBuilder {
    schema: Arc<Schema>,
    universe_size: u32,
    relations: Vec<Relation>,
    element_names: Option<Vec<String>>,
}

impl StructureBuilder {
    /// Starts a structure over `universe_size` elements.
    pub fn new(schema: Arc<Schema>, universe_size: u32) -> Self {
        let relations = (0..schema.num_relations()).map(|_| Relation::default()).collect();
        StructureBuilder { schema, universe_size, relations, element_names: None }
    }

    /// Registers human-readable names for elements `0..names.len()`.
    ///
    /// # Panics
    /// Panics if more names are given than there are elements.
    pub fn element_names<S: Into<String>>(mut self, names: Vec<S>) -> Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert!(
            names.len() <= self.universe_size as usize,
            "more names than universe elements"
        );
        self.element_names = Some(names);
        self
    }

    /// Adds a tuple to relation `rel`. Duplicate insertions are idempotent.
    ///
    /// # Panics
    /// Panics on arity mismatch or out-of-universe elements (data-model
    /// violations that would silently corrupt every downstream theorem).
    pub fn add(&mut self, rel: RelId, tuple: &[Element]) -> &mut Self {
        assert_eq!(
            tuple.len(),
            self.schema.arity(rel),
            "arity mismatch inserting into {}",
            self.schema.name(rel)
        );
        for &e in tuple {
            assert!(e < self.universe_size, "element {e} outside universe");
        }
        self.relations[rel].insert(tuple.to_vec());
        self
    }

    /// Adds an edge to the relation named `name` (convenience).
    ///
    /// # Panics
    /// Panics if no relation has that name.
    pub fn add_named(&mut self, name: &str, tuple: &[Element]) -> &mut Self {
        let rel = self
            .schema
            .rel_id(name)
            .unwrap_or_else(|| panic!("no relation named {name}"));
        self.add(rel, tuple)
    }

    /// Finalizes the structure.
    pub fn build(mut self) -> Structure {
        for rel in &mut self.relations {
            rel.finish(self.universe_size);
        }
        Structure {
            schema: self.schema,
            universe_size: self.universe_size,
            relations: self.relations,
            element_names: self.element_names,
        }
    }
}

/// Builds the six-element graph instance of the paper's Figure 1.
///
/// The figure itself is not machine-readable, but Figures 2–3 pin the
/// instance down: with the query `ψ(u,v) ≡ R(u,v)` the active sets must be
/// `W_a = W_b = {d, e}`, `W_c = {d}`, `W_f = {e}`, and `W_d`, `W_e` must
/// agree except on two elements. The (symmetric) edge set
/// `a–d, a–e, b–d, b–e, c–d, f–e` realizes exactly that, and yields the
/// paper's three radius-1 neighborhood types
/// (`type(a)=type(b)`, `type(d)=type(e)`, `type(c)=type(f)`).
/// Elements are `a=0, b=1, c=2, d=3, e=4, f=5`.
pub fn figure1_instance() -> Structure {
    let schema = Arc::new(Schema::graph());
    let mut b = StructureBuilder::new(schema, 6)
        .element_names(vec!["a", "b", "c", "d", "e", "f"]);
    for &(x, y) in &[(0u32, 3u32), (0, 4), (1, 3), (1, 4), (2, 3), (5, 4)] {
        b.add(0, &[x, y]);
        b.add(0, &[y, x]);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Structure {
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 4);
        b.add(0, &[0, 1]).add(0, &[1, 2]).add(0, &[2, 3]);
        b.build()
    }

    #[test]
    fn membership_and_iteration() {
        let s = small();
        assert!(s.contains(0, &[0, 1]));
        assert!(!s.contains(0, &[1, 0]));
        assert_eq!(s.tuples(0).len(), 3);
        assert_eq!(s.total_tuples(), 3);
        assert_eq!(s.universe().count(), 4);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 2);
        b.add(0, &[0, 1]).add(0, &[0, 1]);
        let s = b.build();
        assert_eq!(s.tuples(0).len(), 1);
    }

    #[test]
    fn tuples_are_sorted() {
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 3);
        b.add(0, &[2, 1]).add(0, &[0, 1]).add(0, &[1, 1]);
        let s = b.build();
        let ts: Vec<_> = s.tuples(0).to_vec();
        assert_eq!(ts, vec![vec![0, 1], vec![1, 1], vec![2, 1]]);
    }

    #[test]
    fn induced_substructure_keeps_inner_tuples() {
        let s = small();
        let keep: HashSet<Element> = [0, 1, 2].into_iter().collect();
        let sub = s.induced(&keep);
        assert!(sub.contains(0, &[0, 1]));
        assert!(sub.contains(0, &[1, 2]));
        assert!(!sub.contains(0, &[2, 3]));
    }

    #[test]
    fn postings_agree_with_full_scan() {
        let s = figure1_instance();
        for pos in 0..2 {
            for e in s.universe() {
                let via_postings: Vec<&Tuple> = s
                    .tuples_with(0, pos, e)
                    .iter()
                    .map(|&i| &s.tuples(0)[i as usize])
                    .collect();
                let via_scan: Vec<&Tuple> =
                    s.tuples(0).iter().filter(|t| t[pos] == e).collect();
                assert_eq!(via_postings, via_scan, "pos {pos} elem {e}");
                assert_eq!(s.count_with(0, pos, e), via_scan.len());
            }
        }
        // Out-of-range lookups are empty, not panics.
        assert!(s.tuples_with(0, 5, 0).is_empty());
        assert!(s.tuples_with(0, 0, 999).is_empty());
    }

    #[test]
    fn induced_rebuilds_postings() {
        let s = small();
        let keep: HashSet<Element> = [0, 1, 2].into_iter().collect();
        let sub = s.induced(&keep);
        assert_eq!(sub.tuples_with(0, 0, 1), &[1]); // tuple (1,2)
        assert!(sub.tuples_with(0, 0, 2).is_empty()); // (2,3) dropped
    }

    #[test]
    fn element_names_render() {
        let s = figure1_instance();
        assert_eq!(s.display_element(0), "a");
        assert_eq!(s.display_element(5), "f");
        assert!(s.contains(0, &[0, 3]));
        assert!(s.contains(0, &[3, 0]));
    }

    #[test]
    fn figure1_active_sets_match_figure2() {
        // With ψ(u,v) ≡ R(u,v): W_a = W_b = {d,e}, W_c = {d}, W_f = {e}.
        let s = figure1_instance();
        let neighbors = |u: Element| -> Vec<Element> {
            s.tuples(0)
                .iter()
                .filter(|t| t[0] == u)
                .map(|t| t[1])
                .collect()
        };
        assert_eq!(neighbors(0), vec![3, 4]);
        assert_eq!(neighbors(1), vec![3, 4]);
        assert_eq!(neighbors(2), vec![3]);
        assert_eq!(neighbors(5), vec![4]);
        // W_d = {a,b,c}, W_e = {a,b,f}: differ on exactly two elements.
        assert_eq!(neighbors(3), vec![0, 1, 2]);
        assert_eq!(neighbors(4), vec![0, 1, 5]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 2);
        b.add(0, &[0]);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_panics() {
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 2);
        b.add(0, &[0, 7]);
    }
}
