//! The interned answer-set engine.
//!
//! Every scheme in the paper consumes the same object: the family of
//! active sets `W_ā = ψ(ā, G)` (Definition 2). This module gives that
//! object one shared, cheap representation:
//!
//! * a [`TupleArena`] interns output tuples to dense [`TupleId`]s with
//!   O(1) slice lookup, so a tuple's content is stored once no matter how
//!   many active sets it appears in;
//! * an [`AnswerFamily`] stores the family itself in CSR form — one flat
//!   `Vec<TupleId>` plus offsets — with a memoized active universe, and
//!   clones in O(1) (the payload sits behind `Arc`s), so markers,
//!   detectors and benches can pass families around freely;
//! * an [`AnswerSource`] abstracts *where* answers come from (FO
//!   evaluation, a CQ join plan, a tree-pattern matcher) so Theorem 3 and
//!   Theorem 5 schemes materialize through one streaming interface
//!   without intermediate nested vectors.
//!
//! Ids are **canonical**: after construction, numeric id order equals
//! lexicographic tuple order. Consequences the rest of the workspace
//! leans on: a numerically sorted id slice is content-sorted, set
//! equality is id-slice equality, membership is a binary search on ids,
//! and the universe's rank of an id doubles as a ground-set index for
//! VC-dimension machinery.

use crate::distortion::{self, DistortionReport};
use crate::structure::Element;
use crate::weighted::Weights;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Dense identifier of an interned output tuple.
pub type TupleId = u32;

/// Interns `s`-ary output tuples to dense ids.
#[derive(Debug, Clone, Default)]
pub struct TupleArena {
    arity: usize,
    flat: Vec<Element>,
    index: HashMap<Vec<Element>, TupleId>,
}

impl TupleArena {
    /// Creates an empty arena for tuples of the given arity.
    pub fn new(arity: usize) -> Self {
        TupleArena { arity, flat: Vec::new(), index: HashMap::new() }
    }

    /// Interns a tuple, returning its id (existing or fresh).
    ///
    /// # Panics
    /// Panics on an arity mismatch.
    pub fn intern(&mut self, tuple: &[Element]) -> TupleId {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        if let Some(&id) = self.index.get(tuple) {
            return id;
        }
        let id = (self.flat.len() / self.arity.max(1)) as TupleId;
        self.flat.extend_from_slice(tuple);
        self.index.insert(tuple.to_vec(), id);
        id
    }

    /// Looks up a tuple without interning (O(1), no allocation).
    pub fn lookup(&self, tuple: &[Element]) -> Option<TupleId> {
        self.index.get(tuple).copied()
    }

    /// The content of an interned tuple.
    ///
    /// # Panics
    /// Panics when `id` was never issued.
    pub fn tuple(&self, id: TupleId) -> &[Element] {
        let start = id as usize * self.arity;
        &self.flat[start..start + self.arity]
    }

    /// Number of distinct interned tuples.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Tuple arity `s`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Iterates `(id, tuple)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &[Element])> {
        let arity = self.arity;
        self.flat
            .chunks(arity.max(1))
            .enumerate()
            .map(move |(i, t)| (i as TupleId, if arity == 0 { &t[..0] } else { t }))
    }

    /// Remaps ids so numeric order equals lexicographic tuple order.
    /// Returns `perm` with `perm[old_id] = new_id`.
    fn canonicalize(&mut self) -> Vec<TupleId> {
        let n = self.len();
        let mut order: Vec<TupleId> = (0..n as TupleId).collect();
        order.sort_by(|&a, &b| self.tuple(a).cmp(self.tuple(b)));
        let mut perm = vec![0 as TupleId; n];
        let mut flat = Vec::with_capacity(self.flat.len());
        for (new, &old) in order.iter().enumerate() {
            perm[old as usize] = new as TupleId;
            flat.extend_from_slice(self.tuple(old));
        }
        self.flat = flat;
        for id in self.index.values_mut() {
            *id = perm[*id as usize];
        }
        perm
    }
}

/// A producer of answer sets: given a parameter tuple `ā`, visits every
/// output tuple of `ψ(ā, G)`. Implementations may visit in any order and
/// may repeat tuples — the engine sorts and dedups while interning.
///
/// Implemented by FO evaluation and the CQ join plan (`qpwm-logic`) and
/// by the tree-pattern matcher (`qpwm-trees`), so relational (Theorem 3)
/// and XML (Theorem 5) schemes materialize through one interface.
pub trait AnswerSource {
    /// Output arity `s` of the produced tuples.
    fn output_arity(&self) -> usize;
    /// Visits every output tuple of `ψ(param, G)`.
    fn for_each_answer(&self, param: &[Element], visit: &mut dyn FnMut(&[Element]));
}

/// Immutable payload of one family (everything but the shared arena).
#[derive(Debug)]
struct FamilyCore {
    parameters: Vec<Vec<Element>>,
    param_index: HashMap<Vec<Element>, usize>,
    /// CSR offsets into `ids`; length `parameters.len() + 1`.
    offsets: Vec<u32>,
    /// Concatenated active sets, each slice sorted and deduped.
    ids: Vec<TupleId>,
    /// Memoized `W = ∪_ā W_ā`, sorted.
    universe: Vec<TupleId>,
}

/// The interned family `{W_ā : ā ∈ domain}` — the engine's central type.
///
/// Cloning is O(1) (two `Arc` bumps); several families produced by one
/// [`FamilyBuilder`] share a single arena, so ids are comparable across
/// them.
#[derive(Debug, Clone)]
pub struct AnswerFamily {
    arena: Arc<TupleArena>,
    core: Arc<FamilyCore>,
}

impl AnswerFamily {
    /// Materializes a family by streaming `source` over `domain` —
    /// answers flow straight into the arena with no intermediate nested
    /// vectors.
    pub fn from_source<S: AnswerSource + ?Sized>(source: &S, domain: Vec<Vec<Element>>) -> Self {
        let mut b = FamilyBuilder::new(source.output_arity());
        b.push_source(source, domain);
        b.finish().pop().expect("one family pushed")
    }

    /// [`AnswerFamily::from_source`] with per-parameter materialization
    /// fanned out over the ambient [`qpwm_par::thread_count`]. The result
    /// is id-for-id identical to the sequential path for any thread
    /// count (see [`FamilyBuilder::push_source_par_with`]).
    pub fn from_source_par<S: AnswerSource + Sync + ?Sized>(
        source: &S,
        domain: Vec<Vec<Element>>,
    ) -> Self {
        Self::from_source_par_with(qpwm_par::thread_count(), source, domain)
    }

    /// [`AnswerFamily::from_source_par`] with an explicit thread count
    /// (deterministic entry point for differential tests).
    pub fn from_source_par_with<S: AnswerSource + Sync + ?Sized>(
        threads: usize,
        source: &S,
        domain: Vec<Vec<Element>>,
    ) -> Self {
        let mut b = FamilyBuilder::new(source.output_arity());
        b.push_source_par_with(threads, source, domain);
        b.finish().pop().expect("one family pushed")
    }

    /// Builds a family from an already-materialized nested representation
    /// (compat path for hand-built set families).
    pub fn from_nested(parameters: Vec<Vec<Element>>, sets: &[Vec<Vec<Element>>]) -> Self {
        let mut b = FamilyBuilder::new(sets.iter().flat_map(|s| s.iter()).map(Vec::len).next().unwrap_or(1));
        b.push_nested(parameters, sets);
        b.finish().pop().expect("one family pushed")
    }

    /// Rebuilds a family from its raw canonical components, as persisted
    /// by `qpwm-store`'s page file: the arena's flat element buffer (in
    /// canonical lexicographic order), the parameter domain, the CSR
    /// offsets/ids, and the memoized universe. The hash indexes the
    /// in-memory representation carries (`TupleArena::index`,
    /// `param_index`) are derived here rather than persisted.
    ///
    /// Every canonical invariant the engine normally establishes through
    /// [`FamilyBuilder::finish`] is *checked*, not assumed — a corrupt or
    /// hand-forged page image must fail loudly rather than yield a family
    /// whose binary searches silently misbehave.
    pub fn from_raw_parts(
        arity: usize,
        flat: Vec<Element>,
        parameters: Vec<Vec<Element>>,
        offsets: Vec<u32>,
        ids: Vec<TupleId>,
        universe: Vec<TupleId>,
    ) -> Result<Self, String> {
        if arity == 0 {
            return Err("from_raw_parts: output arity must be >= 1".into());
        }
        if !flat.len().is_multiple_of(arity) {
            return Err(format!(
                "from_raw_parts: flat length {} not a multiple of arity {arity}",
                flat.len()
            ));
        }
        let n_tuples = flat.len() / arity;
        let mut index: HashMap<Vec<Element>, TupleId> = HashMap::with_capacity(n_tuples);
        for (i, chunk) in flat.chunks(arity).enumerate() {
            if i > 0 && flat[(i - 1) * arity..i * arity] >= *chunk {
                return Err(format!("from_raw_parts: tuple {i} breaks canonical order"));
            }
            index.insert(chunk.to_vec(), i as TupleId);
        }
        if offsets.len() != parameters.len() + 1 {
            return Err(format!(
                "from_raw_parts: {} offsets for {} parameters",
                offsets.len(),
                parameters.len()
            ));
        }
        if offsets.first() != Some(&0) || *offsets.last().expect("nonempty") != ids.len() as u32 {
            return Err("from_raw_parts: CSR offsets do not span ids".into());
        }
        for (p, w) in offsets.windows(2).enumerate() {
            if w[0] > w[1] {
                return Err(format!("from_raw_parts: offsets decrease at parameter {p}"));
            }
            let set = &ids[w[0] as usize..w[1] as usize];
            for pair in set.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(format!("from_raw_parts: set {p} not strictly sorted"));
                }
            }
            if let Some(&max) = set.last() {
                if max as usize >= n_tuples {
                    return Err(format!("from_raw_parts: set {p} references tuple {max}"));
                }
            }
        }
        let mut expected_universe = ids.clone();
        expected_universe.sort_unstable();
        expected_universe.dedup();
        if expected_universe != universe {
            return Err("from_raw_parts: universe is not the union of the sets".into());
        }
        let param_index: HashMap<Vec<Element>, usize> =
            parameters.iter().enumerate().map(|(i, p)| (p.clone(), i)).collect();
        if param_index.len() != parameters.len() {
            return Err("from_raw_parts: duplicate parameter in domain".into());
        }
        let arena = TupleArena { arity, flat, index };
        Ok(AnswerFamily {
            arena: Arc::new(arena),
            core: Arc::new(FamilyCore { parameters, param_index, offsets, ids, universe }),
        })
    }

    /// The parameter domain, in materialization order.
    pub fn parameters(&self) -> &[Vec<Element>] {
        &self.core.parameters
    }

    /// Number of parameters in the domain.
    pub fn len(&self) -> usize {
        self.core.parameters.len()
    }

    /// True when the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.core.parameters.is_empty()
    }

    /// The shared tuple arena.
    pub fn arena(&self) -> &TupleArena {
        &self.arena
    }

    /// Output arity `s`.
    pub fn output_arity(&self) -> usize {
        self.arena.arity()
    }

    /// `W_ā` for the i-th parameter, as a sorted, deduped id slice.
    pub fn active_ids(&self, i: usize) -> &[TupleId] {
        let lo = self.core.offsets[i] as usize;
        let hi = self.core.offsets[i + 1] as usize;
        &self.core.ids[lo..hi]
    }

    /// Index of a parameter value in the domain.
    pub fn position_of(&self, a: &[Element]) -> Option<usize> {
        self.core.param_index.get(a).copied()
    }

    /// `W_ā` looked up by parameter value.
    pub fn ids_of(&self, a: &[Element]) -> Option<&[TupleId]> {
        self.position_of(a).map(|i| self.active_ids(i))
    }

    /// Content of one interned tuple.
    pub fn tuple(&self, id: TupleId) -> &[Element] {
        self.arena.tuple(id)
    }

    /// Iterates the tuples of `W_ā` in sorted content order.
    pub fn set_tuples(&self, i: usize) -> impl Iterator<Item = &[Element]> + '_ {
        self.active_ids(i).iter().map(move |&id| self.arena.tuple(id))
    }

    /// Owned nested copy of one active set (cold paths and tests only).
    pub fn materialize_set(&self, i: usize) -> Vec<Vec<Element>> {
        self.set_tuples(i).map(<[Element]>::to_vec).collect()
    }

    /// Owned nested copy of the whole family (tests and compat shims
    /// only — scheme code must stay on the interned representation).
    pub fn materialize_sets(&self) -> Vec<Vec<Vec<Element>>> {
        (0..self.len()).map(|i| self.materialize_set(i)).collect()
    }

    /// The active universe `W = ∪_ā W_ā` as a memoized sorted id slice
    /// — no per-call allocation.
    pub fn active_universe(&self) -> &[TupleId] {
        &self.core.universe
    }

    /// Iterates the universe's tuples in sorted content order.
    pub fn universe_tuples(&self) -> impl Iterator<Item = &[Element]> + '_ {
        self.core.universe.iter().map(move |&id| self.arena.tuple(id))
    }

    /// Is `id` a member of `W_ā` for the i-th parameter?
    pub fn contains(&self, i: usize, id: TupleId) -> bool {
        self.active_ids(i).binary_search(&id).is_ok()
    }

    /// Rank of `id` within the sorted universe, if active.
    pub fn universe_rank(&self, id: TupleId) -> Option<usize> {
        self.core.universe.binary_search(&id).ok()
    }

    /// `N`: the number of *distinct* active sets — the paper's "number
    /// of distinct possible queries". Id slices compare in O(len), no
    /// tuple hashing.
    pub fn distinct_queries(&self) -> usize {
        let set: BTreeSet<&[TupleId]> = (0..self.len()).map(|i| self.active_ids(i)).collect();
        set.len()
    }

    /// The aggregate `f(ā) = Σ_{b̄ ∈ W_ā} W(b̄)` for the i-th parameter.
    pub fn f(&self, weights: &Weights, i: usize) -> i64 {
        self.set_tuples(i).map(|b| weights.get(b)).sum()
    }

    /// All `f` values in parameter order.
    pub fn f_all(&self, weights: &Weights) -> Vec<i64> {
        (0..self.len()).map(|i| self.f(weights, i)).collect()
    }

    /// Audits the c-local / d-global distortion assumptions over this
    /// family.
    pub fn global_distortion(&self, before: &Weights, after: &Weights) -> DistortionReport {
        let max_local = distortion::local_distortion(before, after);
        let mut max_global = 0i64;
        let mut worst = None;
        for i in 0..self.len() {
            let delta = (self.f(before, i) - self.f(after, i)).abs();
            if delta > max_global {
                max_global = delta;
                worst = Some(i);
            }
        }
        DistortionReport { max_local, max_global, worst_parameter: worst }
    }

    /// Maximum global distortion between two weight assignments — the
    /// `d` of the d-global distortion assumption.
    pub fn max_global_distortion(&self, before: &Weights, after: &Weights) -> i64 {
        self.global_distortion(before, after).max_global
    }
}

/// Accumulates one or more families over a single shared arena (the
/// multi-query scheme builds all its per-query families through one
/// builder so ids stay comparable across queries).
#[derive(Debug)]
pub struct FamilyBuilder {
    arena: TupleArena,
    families: Vec<RawFamily>,
}

#[derive(Debug)]
struct RawFamily {
    parameters: Vec<Vec<Element>>,
    offsets: Vec<u32>,
    ids: Vec<TupleId>,
}

impl FamilyBuilder {
    /// Creates a builder for output arity `s`.
    pub fn new(arity: usize) -> Self {
        FamilyBuilder { arena: TupleArena::new(arity), families: Vec::new() }
    }

    /// Streams one family from `source` over `domain`.
    pub fn push_source<S: AnswerSource + ?Sized>(&mut self, source: &S, domain: Vec<Vec<Element>>) {
        assert_eq!(source.output_arity(), self.arena.arity(), "output arity mismatch");
        let mut offsets: Vec<u32> = Vec::with_capacity(domain.len() + 1);
        offsets.push(0);
        let mut ids: Vec<TupleId> = Vec::new();
        for a in &domain {
            let arena = &mut self.arena;
            source.for_each_answer(a, &mut |b| ids.push(arena.intern(b)));
            offsets.push(ids.len() as u32);
        }
        self.families.push(RawFamily { parameters: domain, offsets, ids });
    }

    /// Streams one family from `source` over `domain` with the parameters
    /// fanned out over the ambient [`qpwm_par::thread_count`].
    pub fn push_source_par<S: AnswerSource + Sync + ?Sized>(
        &mut self,
        source: &S,
        domain: Vec<Vec<Element>>,
    ) {
        self.push_source_par_with(qpwm_par::thread_count(), source, domain);
    }

    /// [`FamilyBuilder::push_source_par`] with an explicit thread count.
    ///
    /// Each worker streams a contiguous chunk of `domain` into a private
    /// thread-local [`TupleArena`] shard; shards are then merged
    /// sequentially in chunk order by re-interning each shard's tuples
    /// into the shared arena and remapping the shard-local ids. Merging
    /// in chunk order reproduces the sequential per-set id *multisets*
    /// exactly, and [`FamilyBuilder::finish`] canonicalizes the arena to
    /// content order and sorts/dedups every set — so the final family is
    /// id-for-id identical to [`FamilyBuilder::push_source`] no matter
    /// how the domain was chunked.
    pub fn push_source_par_with<S: AnswerSource + Sync + ?Sized>(
        &mut self,
        threads: usize,
        source: &S,
        domain: Vec<Vec<Element>>,
    ) {
        assert_eq!(source.output_arity(), self.arena.arity(), "output arity mismatch");
        if threads <= 1 || domain.len() < 2 {
            self.push_source(source, domain);
            return;
        }
        struct Shard {
            arena: TupleArena,
            offsets: Vec<u32>,
            ids: Vec<TupleId>,
        }
        let arity = self.arena.arity();
        let domain_ref = &domain;
        let shards: Vec<Shard> = qpwm_par::par_chunks_with(threads, domain.len(), |range| {
            let mut arena = TupleArena::new(arity);
            let mut offsets: Vec<u32> = vec![0];
            let mut ids: Vec<TupleId> = Vec::new();
            for a in &domain_ref[range] {
                source.for_each_answer(a, &mut |b| ids.push(arena.intern(b)));
                offsets.push(ids.len() as u32);
            }
            Shard { arena, offsets, ids }
        });
        let mut offsets: Vec<u32> = Vec::with_capacity(domain.len() + 1);
        offsets.push(0);
        let mut ids: Vec<TupleId> = Vec::new();
        for shard in shards {
            let remap: Vec<TupleId> =
                shard.arena.iter().map(|(_, t)| self.arena.intern(t)).collect();
            let base = ids.len() as u32;
            ids.extend(shard.ids.iter().map(|&local| remap[local as usize]));
            offsets.extend(shard.offsets[1..].iter().map(|&o| base + o));
        }
        self.families.push(RawFamily { parameters: domain, offsets, ids });
    }

    /// Adds one family from nested, already-materialized sets.
    pub fn push_nested(&mut self, parameters: Vec<Vec<Element>>, sets: &[Vec<Vec<Element>>]) {
        assert_eq!(parameters.len(), sets.len(), "parameters/sets length mismatch");
        let mut offsets: Vec<u32> = Vec::with_capacity(parameters.len() + 1);
        offsets.push(0);
        let mut ids: Vec<TupleId> = Vec::new();
        for set in sets {
            for b in set {
                ids.push(self.arena.intern(b));
            }
            offsets.push(ids.len() as u32);
        }
        self.families.push(RawFamily { parameters, offsets, ids });
    }

    /// Finalizes: remaps ids to canonical (lexicographic) order, sorts
    /// and dedups every set slice, memoizes each family's universe, and
    /// returns the families in push order, all sharing one arena.
    pub fn finish(mut self) -> Vec<AnswerFamily> {
        let perm = self.arena.canonicalize();
        let arena = Arc::new(self.arena);
        self.families
            .into_iter()
            .map(|raw| {
                let mut offsets: Vec<u32> = Vec::with_capacity(raw.offsets.len());
                offsets.push(0);
                let mut ids: Vec<TupleId> = Vec::with_capacity(raw.ids.len());
                let mut scratch: Vec<TupleId> = Vec::new();
                for w in raw.offsets.windows(2) {
                    scratch.clear();
                    scratch.extend(
                        raw.ids[w[0] as usize..w[1] as usize]
                            .iter()
                            .map(|&old| perm[old as usize]),
                    );
                    scratch.sort_unstable();
                    scratch.dedup();
                    ids.extend_from_slice(&scratch);
                    offsets.push(ids.len() as u32);
                }
                let mut universe = ids.clone();
                universe.sort_unstable();
                universe.dedup();
                let param_index = raw
                    .parameters
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (p.clone(), i))
                    .collect();
                AnswerFamily {
                    arena: Arc::clone(&arena),
                    core: Arc::new(FamilyCore {
                        parameters: raw.parameters,
                        param_index,
                        offsets,
                        ids,
                        universe,
                    }),
                }
            })
            .collect()
    }
}

/// A consumer of a family produced in canonical order — the out-of-core
/// seam. [`stream_family`] pushes every *new* tuple exactly once, in
/// canonical (lexicographic) order, then each parameter with its sorted
/// active-id set; a sink typically spills both straight to storage
/// (`qpwm-store`'s streamer) so the family never exists in RAM.
pub trait FamilySink {
    /// The next canonical tuple; its id is the number of tuples pushed
    /// before it.
    fn push_tuple(&mut self, tuple: &[Element]) -> Result<(), String>;
    /// The next parameter with its strictly ascending active ids.
    fn push_param(&mut self, param: &[Element], active: &[TupleId]) -> Result<(), String>;
}

/// Interns tuples to canonical ids *online*, without keeping the flat
/// buffer: new tuples must arrive in strictly increasing lexicographic
/// order (so push order == canonical order), and repeats must fall
/// inside a bounded **frontier** of recently interned tuples. Memory is
/// O(frontier), independent of how many tuples pass through.
///
/// The frontier contract is what makes out-of-core materialization
/// honest: a source whose active sets revisit tuples arbitrarily far
/// back needs the in-RAM [`FamilyBuilder`]; a source with locality (a
/// sliding window, a sorted generator, chunked re-marking) streams.
#[derive(Debug)]
pub struct StreamingInterner {
    arity: usize,
    next_id: TupleId,
    /// Greatest (most recent) interned tuple.
    last: Vec<Element>,
    /// Recently interned tuples, oldest first; mirrored in `index`.
    recent: std::collections::VecDeque<Vec<Element>>,
    index: HashMap<Vec<Element>, TupleId>,
    frontier: usize,
}

/// Callback [`StreamingInterner::intern`] fires exactly once per fresh
/// tuple, in canonical order; an `Err` aborts the intern.
pub type OnNewTuple<'a> = dyn FnMut(&[Element], TupleId) -> Result<(), String> + 'a;

impl StreamingInterner {
    /// An interner keeping the last `frontier` tuples resolvable.
    pub fn new(arity: usize, frontier: usize) -> Self {
        StreamingInterner {
            arity,
            next_id: 0,
            last: Vec::new(),
            recent: std::collections::VecDeque::new(),
            index: HashMap::new(),
            frontier: frontier.max(1),
        }
    }

    /// Number of distinct tuples interned.
    pub fn len(&self) -> usize {
        self.next_id as usize
    }

    /// True before the first intern.
    pub fn is_empty(&self) -> bool {
        self.next_id == 0
    }

    /// Resolves `tuple` to its canonical id, calling `on_new` (exactly
    /// once, in canonical order) when it is fresh. Errors when a fresh
    /// tuple breaks canonical order or a repeat falls behind the
    /// frontier.
    pub fn intern(
        &mut self,
        tuple: &[Element],
        on_new: &mut OnNewTuple<'_>,
    ) -> Result<TupleId, String> {
        if tuple.len() != self.arity {
            return Err(format!("tuple arity {} != {}", tuple.len(), self.arity));
        }
        if let Some(&id) = self.index.get(tuple) {
            return Ok(id);
        }
        if self.next_id > 0 && tuple <= self.last.as_slice() {
            return Err(format!(
                "tuple {tuple:?} at id {} is behind the streaming frontier: either the \
                 source is not canonically ordered or the frontier ({}) is too small",
                self.next_id, self.frontier
            ));
        }
        let id = self.next_id;
        on_new(tuple, id)?;
        self.next_id = self
            .next_id
            .checked_add(1)
            .ok_or_else(|| "tuple id space exhausted".to_string())?;
        self.last.clear();
        self.last.extend_from_slice(tuple);
        self.recent.push_back(tuple.to_vec());
        self.index.insert(tuple.to_vec(), id);
        if self.recent.len() > self.frontier {
            let old = self.recent.pop_front().expect("nonempty");
            self.index.remove(&old);
        }
        Ok(id)
    }
}

/// Shape of a streamed family (what [`stream_family`] produced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Distinct tuples interned.
    pub n_tuples: usize,
    /// Parameters pushed.
    pub n_params: usize,
    /// Total active-set entries.
    pub n_ids: u64,
}

/// Materializes `source` over `domain` straight into `sink`, holding
/// only one answer set plus the interner's frontier in memory — the
/// out-of-core counterpart of [`AnswerFamily::from_source`]. The
/// resulting family (tuple order, CSR runs, universe) is identical to
/// the in-RAM path whenever the source satisfies the frontier contract
/// (see [`StreamingInterner`]).
pub fn stream_family<S: AnswerSource + ?Sized>(
    source: &S,
    domain: impl IntoIterator<Item = Vec<Element>>,
    frontier: usize,
    sink: &mut dyn FamilySink,
) -> Result<StreamSummary, String> {
    let mut interner = StreamingInterner::new(source.output_arity(), frontier);
    let mut scratch: Vec<Vec<Element>> = Vec::new();
    let mut ids: Vec<TupleId> = Vec::new();
    let mut n_params = 0usize;
    let mut n_ids = 0u64;
    for param in domain {
        scratch.clear();
        source.for_each_answer(&param, &mut |b| scratch.push(b.to_vec()));
        scratch.sort_unstable();
        scratch.dedup();
        ids.clear();
        for t in &scratch {
            ids.push(interner.intern(t, &mut |t, _| sink.push_tuple(t))?);
        }
        // content-sorted + canonical interning ⇒ ids strictly ascending
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        sink.push_param(&param, &ids)?;
        n_params += 1;
        n_ids += ids.len() as u64;
    }
    Ok(StreamSummary { n_tuples: interner.len(), n_params, n_ids })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SquaresBelow(u32);
    impl AnswerSource for SquaresBelow {
        fn output_arity(&self) -> usize {
            1
        }
        fn for_each_answer(&self, param: &[Element], visit: &mut dyn FnMut(&[Element])) {
            // deliberately emit out of order and with a duplicate
            for k in (0..self.0).rev() {
                if k * k <= param[0] {
                    visit(&[k]);
                    visit(&[k]);
                }
            }
        }
    }

    #[test]
    fn arena_interns_and_looks_up() {
        let mut a = TupleArena::new(2);
        let x = a.intern(&[3, 4]);
        let y = a.intern(&[1, 2]);
        assert_ne!(x, y);
        assert_eq!(a.intern(&[3, 4]), x);
        assert_eq!(a.len(), 2);
        assert_eq!(a.lookup(&[1, 2]), Some(y));
        assert_eq!(a.lookup(&[9, 9]), None);
        assert_eq!(a.tuple(x), &[3, 4]);
    }

    #[test]
    fn streaming_source_sorts_and_dedups() {
        let fam =
            AnswerFamily::from_source(&SquaresBelow(5), vec![vec![0], vec![4], vec![10]]);
        assert_eq!(fam.materialize_set(0), vec![vec![0]]);
        assert_eq!(fam.materialize_set(1), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(fam.materialize_set(2), vec![vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(fam.active_universe().len(), 4);
    }

    #[test]
    fn parallel_materialization_is_id_for_id_identical() {
        let source = SquaresBelow(40);
        let domain: Vec<Vec<Element>> = (0..100).map(|i| vec![i * 7]).collect();
        let sequential = AnswerFamily::from_source(&source, domain.clone());
        for threads in [1usize, 2, 3, 5, 16] {
            let parallel =
                AnswerFamily::from_source_par_with(threads, &source, domain.clone());
            assert_eq!(parallel.parameters(), sequential.parameters(), "threads {threads}");
            assert_eq!(
                parallel.active_universe(),
                sequential.active_universe(),
                "threads {threads}"
            );
            for i in 0..sequential.len() {
                assert_eq!(
                    parallel.active_ids(i),
                    sequential.active_ids(i),
                    "threads {threads}, set {i}"
                );
            }
            for (a, b) in parallel.arena().iter().zip(sequential.arena().iter()) {
                assert_eq!(a, b, "threads {threads}: arenas must agree id-for-id");
            }
        }
    }

    #[test]
    fn canonical_ids_follow_content_order() {
        let fam = AnswerFamily::from_nested(
            vec![vec![0], vec![1]],
            &[vec![vec![7], vec![2]], vec![vec![5]]],
        );
        // ids sorted numerically == tuples sorted lexicographically
        for ids in [fam.active_ids(0), fam.active_ids(1)] {
            let mut sorted = ids.to_vec();
            sorted.sort_unstable();
            assert_eq!(ids, sorted.as_slice());
        }
        let universe_tuples: Vec<Vec<Element>> =
            fam.universe_tuples().map(<[Element]>::to_vec).collect();
        assert_eq!(universe_tuples, vec![vec![2], vec![5], vec![7]]);
        assert_eq!(fam.tuple(fam.active_universe()[0]), &[2]);
    }

    #[test]
    fn universe_is_memoized_and_shared() {
        let fam = AnswerFamily::from_nested(
            vec![vec![0], vec![1]],
            &[vec![vec![1], vec![2]], vec![vec![2], vec![3]]],
        );
        let first = fam.active_universe().as_ptr();
        assert_eq!(fam.active_universe().as_ptr(), first, "no per-call rebuild");
        assert_eq!(fam.active_universe().len(), 3);
        let clone = fam.clone();
        assert_eq!(clone.active_universe().as_ptr(), first, "clone shares the payload");
    }

    #[test]
    fn lookup_and_membership() {
        let fam = AnswerFamily::from_nested(
            vec![vec![10], vec![20]],
            &[vec![vec![1]], vec![vec![1], vec![2]]],
        );
        let one = fam.arena().lookup(&[1]).unwrap();
        let two = fam.arena().lookup(&[2]).unwrap();
        assert!(fam.contains(0, one));
        assert!(!fam.contains(0, two));
        assert!(fam.contains(1, two));
        assert_eq!(fam.ids_of(&[20]).unwrap().len(), 2);
        assert!(fam.ids_of(&[30]).is_none());
        assert_eq!(fam.universe_rank(one), Some(0));
    }

    #[test]
    fn distinct_queries_and_aggregates() {
        let fam = AnswerFamily::from_nested(
            vec![vec![0], vec![1], vec![2]],
            &[vec![vec![4], vec![5]], vec![vec![4], vec![5]], vec![vec![5]]],
        );
        assert_eq!(fam.distinct_queries(), 2);
        let mut w = Weights::new(1);
        w.set(&[4], 7);
        w.set(&[5], 9);
        assert_eq!(fam.f(&w, 0), 16);
        assert_eq!(fam.f_all(&w), vec![16, 16, 9]);
        let mut after = w.clone();
        after.set(&[4], 8);
        assert_eq!(fam.max_global_distortion(&w, &after), 1);
    }

    /// Collects the streamed family back into vectors, so tests can
    /// compare the streaming path against the in-RAM builder.
    #[derive(Default)]
    struct CollectSink {
        flat: Vec<Element>,
        parameters: Vec<Vec<Element>>,
        offsets: Vec<u32>,
        ids: Vec<TupleId>,
    }

    impl FamilySink for CollectSink {
        fn push_tuple(&mut self, tuple: &[Element]) -> Result<(), String> {
            self.flat.extend_from_slice(tuple);
            Ok(())
        }
        fn push_param(&mut self, param: &[Element], active: &[TupleId]) -> Result<(), String> {
            if self.offsets.is_empty() {
                self.offsets.push(0);
            }
            self.parameters.push(param.to_vec());
            self.ids.extend_from_slice(active);
            self.offsets.push(self.ids.len() as u32);
            Ok(())
        }
    }

    /// Windowed ranges: parameter [a] activates tuples a..a+3 — canonical
    /// first-occurrence order with a small revisit frontier.
    struct Windows;
    impl AnswerSource for Windows {
        fn output_arity(&self) -> usize {
            1
        }
        fn for_each_answer(&self, param: &[Element], visit: &mut dyn FnMut(&[Element])) {
            // out of order + duplicate, like a real evaluator
            for k in (param[0]..param[0] + 3).rev() {
                visit(&[k]);
                visit(&[k]);
            }
        }
    }

    #[test]
    fn streamed_family_matches_in_ram_builder() {
        let domain: Vec<Vec<Element>> = (0..50).map(|i| vec![i]).collect();
        let in_ram = AnswerFamily::from_source(&Windows, domain.clone());
        let mut sink = CollectSink::default();
        let summary =
            stream_family(&Windows, domain.clone(), 8, &mut sink).expect("stream");
        assert_eq!(summary.n_params, 50);
        assert_eq!(summary.n_tuples, 52);
        let universe = {
            let mut u = sink.ids.clone();
            u.sort_unstable();
            u.dedup();
            u
        };
        let streamed = AnswerFamily::from_raw_parts(
            1,
            sink.flat,
            sink.parameters,
            sink.offsets,
            sink.ids,
            universe,
        )
        .expect("streamed family is canonical");
        assert_eq!(streamed.parameters(), in_ram.parameters());
        assert_eq!(streamed.active_universe(), in_ram.active_universe());
        for i in 0..in_ram.len() {
            assert_eq!(streamed.active_ids(i), in_ram.active_ids(i), "set {i}");
        }
    }

    #[test]
    fn frontier_violations_error_instead_of_corrupting() {
        // revisiting tuple 0 at parameter 20 with a frontier of 4 —
        // tuple 0 has long been evicted
        struct Revisit;
        impl AnswerSource for Revisit {
            fn output_arity(&self) -> usize {
                1
            }
            fn for_each_answer(&self, param: &[Element], visit: &mut dyn FnMut(&[Element])) {
                visit(&[param[0]]);
                if param[0] == 20 {
                    visit(&[0]);
                }
            }
        }
        let domain: Vec<Vec<Element>> = (0..30).map(|i| vec![i]).collect();
        let mut sink = CollectSink::default();
        let err = stream_family(&Revisit, domain, 4, &mut sink).expect_err("must fail");
        assert!(err.contains("frontier"), "unexpected error: {err}");
    }

    #[test]
    fn streaming_interner_resolves_inside_frontier() {
        let mut i = StreamingInterner::new(1, 4);
        let mut news = Vec::new();
        for k in 0..6u32 {
            let id = i.intern(&[k], &mut |t, id| {
                news.push((t.to_vec(), id));
                Ok(())
            });
            assert_eq!(id, Ok(k));
        }
        // repeats inside the window resolve without on_new
        assert_eq!(i.intern(&[5], &mut |_, _| panic!("not new")), Ok(5));
        assert_eq!(i.intern(&[2], &mut |_, _| panic!("not new")), Ok(2));
        // a repeat evicted from the window errors
        assert!(i.intern(&[0], &mut |_, _| Ok(())).is_err());
        assert_eq!(news.len(), 6);
    }

    #[test]
    fn shared_arena_across_families() {
        let mut b = FamilyBuilder::new(1);
        b.push_nested(vec![vec![0]], &[vec![vec![3], vec![1]]]);
        b.push_nested(vec![vec![0]], &[vec![vec![3], vec![2]]]);
        let fams = b.finish();
        assert_eq!(fams.len(), 2);
        let three_a = fams[0].arena().lookup(&[3]).unwrap();
        let three_b = fams[1].arena().lookup(&[3]).unwrap();
        assert_eq!(three_a, three_b, "ids comparable across families");
        assert_eq!(fams[0].arena().len(), 3);
    }
}
