//! ρ-neighborhoods `N_ρ(c̄)`: induced substructures on spheres, with the
//! tuple components as distinguished points.
//!
//! Neighborhoods are renumbered to a compact local universe so that
//! isomorphism tests ([`crate::iso`]) and type censuses ([`crate::types`])
//! operate on small, self-contained values.

use crate::gaifman::GaifmanGraph;
use crate::structure::{Element, Structure};
use std::collections::HashMap;

/// One vertex's relation profile: the sorted multiset of
/// `(relation, position)` slots it occupies.
pub type RelationProfile = Vec<(u16, u16)>;

/// A distinguished point's invariant: Gaifman degree, BFS layer sizes,
/// and its relation profile.
pub type PointProfile = (u32, Vec<u32>, RelationProfile);

/// A pointed induced substructure: the ρ-neighborhood of a tuple.
///
/// `universe` maps local indices back to the original elements;
/// `relations[r]` holds relation `r`'s tuples in *local* indices, sorted;
/// `points` are the distinguished elements `c_1, ..., c_n` in local indices
/// (order matters for isomorphism — pointed isomorphisms must map the i-th
/// point to the i-th point).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Neighborhood {
    universe: Vec<Element>,
    relations: Vec<Vec<Vec<u32>>>,
    points: Vec<u32>,
}

impl Neighborhood {
    /// Extracts `N_ρ(centers)` from `structure`, using a precomputed
    /// Gaifman graph (pass the same graph for all extractions on one
    /// structure — building it is the expensive part).
    pub fn extract(
        structure: &Structure,
        gaifman: &GaifmanGraph,
        centers: &[Element],
        rho: u32,
    ) -> Self {
        let sphere = gaifman.sphere(centers, rho);
        let local: HashMap<Element, u32> = sphere
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, i as u32))
            .collect();
        let mut relations = Vec::with_capacity(structure.schema().num_relations());
        for rel in 0..structure.schema().num_relations() {
            let mut tuples = Vec::new();
            if structure.schema().arity(rel) == 0 {
                // Nullary tuples have no components and are vacuously
                // induced; the postings gather below would miss them.
                tuples.extend(structure.tuples(rel).iter().map(|_| Vec::new()));
            } else {
                // A tuple lies in the induced substructure iff every
                // component is in the sphere — in particular its first
                // component, so gathering the postings lists of sphere
                // elements at position 0 visits each candidate exactly
                // once. O(sphere-local tuples), not O(all tuples).
                for &e in &sphere {
                    for &ti in structure.tuples_with(rel, 0, e) {
                        let t = &structure.tuples(rel)[ti as usize];
                        if let Some(local_tuple) = t
                            .iter()
                            .map(|c| local.get(c).copied())
                            .collect::<Option<Vec<u32>>>()
                        {
                            tuples.push(local_tuple);
                        }
                    }
                }
            }
            tuples.sort_unstable();
            relations.push(tuples);
        }
        let points = centers
            .iter()
            .map(|c| local[c])
            .collect();
        Neighborhood { universe: sphere, relations, points }
    }

    /// Size of the local universe (the sphere).
    pub fn len(&self) -> usize {
        self.universe.len()
    }

    /// True when the sphere is empty (never happens for valid centers).
    pub fn is_empty(&self) -> bool {
        self.universe.is_empty()
    }

    /// Original element behind local index `i`.
    pub fn original(&self, i: u32) -> Element {
        self.universe[i as usize]
    }

    /// The distinguished points, in local indices.
    pub fn points(&self) -> &[u32] {
        &self.points
    }

    /// Tuples of relation `rel` in local indices, sorted.
    pub fn tuples(&self, rel: usize) -> &[Vec<u32>] {
        &self.relations[rel]
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Per-vertex relation profiles: for each local vertex, the sorted
    /// multiset of `(relation, position)` slots it occupies. Any
    /// isomorphism must map a vertex to one with an identical profile —
    /// the pruning that keeps backtracking polynomial on hub-heavy
    /// instances (e.g. every transport sharing one `plane` vertex),
    /// where pure adjacency is uselessly symmetric.
    pub fn relation_profiles(&self) -> Vec<RelationProfile> {
        let mut profiles: Vec<RelationProfile> = vec![Vec::new(); self.universe.len()];
        for (rel, tuples) in self.relations.iter().enumerate() {
            for t in tuples {
                for (pos, &v) in t.iter().enumerate() {
                    profiles[v as usize].push((rel as u16, pos as u16));
                }
            }
        }
        for p in &mut profiles {
            p.sort_unstable();
        }
        profiles
    }

    /// Local adjacency (Gaifman within the neighborhood), used by the
    /// isomorphism backtracker and the invariant fingerprint.
    pub fn local_adjacency(&self) -> Vec<Vec<u32>> {
        let n = self.universe.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for rel in &self.relations {
            for t in rel {
                for i in 0..t.len() {
                    for j in (i + 1)..t.len() {
                        let (a, b) = (t[i], t[j]);
                        if a != b {
                            adj[a as usize].push(b);
                            adj[b as usize].push(a);
                        }
                    }
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        adj
    }

    /// An isomorphism-invariant fingerprint: neighborhoods with different
    /// fingerprints are guaranteed non-isomorphic, so the type census only
    /// runs the exact backtracking test within fingerprint buckets.
    ///
    /// Components: universe size, per-relation tuple counts, sorted local
    /// degree sequence, per-point (degree, BFS layer sizes) profile.
    pub fn fingerprint(&self) -> Fingerprint {
        let adj = self.local_adjacency();
        let mut degrees: Vec<u32> = adj.iter().map(|l| l.len() as u32).collect();
        let rel_profiles = self.relation_profiles();
        let point_profiles: Vec<PointProfile> = self
            .points
            .iter()
            .map(|&p| {
                let layers = bfs_layer_sizes(&adj, p);
                (
                    adj[p as usize].len() as u32,
                    layers,
                    rel_profiles[p as usize].clone(),
                )
            })
            .collect();
        degrees.sort_unstable();
        let mut profile_multiset = rel_profiles;
        profile_multiset.sort_unstable();
        Fingerprint {
            universe_size: self.universe.len() as u32,
            tuple_counts: self.relations.iter().map(|r| r.len() as u32).collect(),
            degree_sequence: degrees,
            point_profiles,
            profile_multiset,
        }
    }
}

/// Cheap isomorphism invariant of a [`Neighborhood`]; see
/// [`Neighborhood::fingerprint`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    universe_size: u32,
    tuple_counts: Vec<u32>,
    degree_sequence: Vec<u32>,
    point_profiles: Vec<PointProfile>,
    profile_multiset: Vec<RelationProfile>,
}

fn bfs_layer_sizes(adj: &[Vec<u32>], source: u32) -> Vec<u32> {
    let mut dist: Vec<Option<u32>> = vec![None; adj.len()];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = Some(0);
    queue.push_back(source);
    let mut layers: Vec<u32> = vec![1];
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize].expect("queued vertices have distances");
        for &w in &adj[v as usize] {
            if dist[w as usize].is_none() {
                dist[w as usize] = Some(dv + 1);
                if layers.len() <= (dv + 1) as usize {
                    layers.push(0);
                }
                layers[(dv + 1) as usize] += 1;
                queue.push_back(w);
            }
        }
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::structure::{figure1_instance, StructureBuilder};
    use std::sync::Arc;

    #[test]
    fn figure1_radius1_neighborhoods() {
        let s = figure1_instance();
        let g = GaifmanGraph::of(&s);
        // a (0): neighbors d (3) and b (1) -> sphere {a, b, d}
        let na = Neighborhood::extract(&s, &g, &[0], 1);
        assert_eq!(na.len(), 3);
        // c (2): neighbor d only -> sphere {c, d}
        let nc = Neighborhood::extract(&s, &g, &[2], 1);
        assert_eq!(nc.len(), 2);
    }

    #[test]
    fn points_are_tracked_in_order() {
        let s = figure1_instance();
        let g = GaifmanGraph::of(&s);
        let n = Neighborhood::extract(&s, &g, &[3, 0], 1);
        assert_eq!(n.points().len(), 2);
        assert_eq!(n.original(n.points()[0]), 3);
        assert_eq!(n.original(n.points()[1]), 0);
    }

    #[test]
    fn induced_tuples_only() {
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 4);
        // path 0-1-2-3
        for i in 0..3u32 {
            b.add(0, &[i, i + 1]);
        }
        let s = b.build();
        let g = GaifmanGraph::of(&s);
        // N_1(1) = {0,1,2}; must contain edges (0,1),(1,2) but not (2,3).
        let n = Neighborhood::extract(&s, &g, &[1], 1);
        assert_eq!(n.len(), 3);
        assert_eq!(n.tuples(0).len(), 2);
    }

    #[test]
    fn fingerprints_separate_different_shapes() {
        let s = figure1_instance();
        let g = GaifmanGraph::of(&s);
        let na = Neighborhood::extract(&s, &g, &[0], 1); // degree-2 middle
        let nc = Neighborhood::extract(&s, &g, &[2], 1); // degree-1 end
        assert_ne!(na.fingerprint(), nc.fingerprint());
    }

    #[test]
    fn fingerprints_match_for_symmetric_elements() {
        let s = figure1_instance();
        let g = GaifmanGraph::of(&s);
        // a and b are symmetric in the figure-1 instance.
        let na = Neighborhood::extract(&s, &g, &[0], 1);
        let nb = Neighborhood::extract(&s, &g, &[1], 1);
        assert_eq!(na.fingerprint(), nb.fingerprint());
    }
}
