//! Neighborhood-type censuses: the `≈_ρ` equivalence classes and
//! `ntp(ρ, G)`.
//!
//! Every tuple gets a [`TypeId`]; tuples are equivalent iff their
//! ρ-neighborhoods are (pointed) isomorphic. For structures of bounded
//! Gaifman degree the number of types is independent of `|G|` — this is
//! what makes Theorem 3's canonical-parameter trick work.

use crate::gaifman::GaifmanGraph;
use crate::iso::are_isomorphic;
use crate::neighborhood::{Fingerprint, Neighborhood};
use crate::structure::{Element, Structure};
use std::collections::HashMap;

/// Identifier of a `≈_ρ` equivalence class (dense, starting at 0 in
/// first-encounter order, so censuses are deterministic).
pub type TypeId = usize;

/// A census of ρ-neighborhood isomorphism types for a fixed tuple arity.
#[derive(Debug)]
pub struct NeighborhoodTypes {
    rho: u32,
    arity: usize,
    /// One representative neighborhood per type.
    representatives: Vec<(Vec<Element>, Neighborhood)>,
    /// type of each classified tuple.
    assignment: HashMap<Vec<Element>, TypeId>,
    /// fingerprint buckets: candidates for the exact isomorphism test.
    buckets: HashMap<Fingerprint, Vec<TypeId>>,
}

impl NeighborhoodTypes {
    /// Classifies every tuple yielded by `tuples` by its ρ-neighborhood
    /// type in `structure`.
    ///
    /// Pass all `U^r` tuples for a full census, or any subset (e.g. only
    /// the parameter tuples that can actually occur).
    ///
    /// Neighborhood extraction and fingerprinting — the expensive,
    /// per-tuple-independent phase — fan out over
    /// [`qpwm_par::thread_count`] workers; the bucket/isomorphism merge
    /// then runs sequentially in input order, so type ids keep their
    /// deterministic first-encounter numbering for any thread count.
    pub fn classify<I>(structure: &Structure, gaifman: &GaifmanGraph, rho: u32, tuples: I) -> Self
    where
        I: IntoIterator<Item = Vec<Element>>,
    {
        let mut census = NeighborhoodTypes {
            rho,
            arity: 0,
            representatives: Vec::new(),
            assignment: HashMap::new(),
            buckets: HashMap::new(),
        };
        let mut seen: std::collections::HashSet<Vec<Element>> = std::collections::HashSet::new();
        let mut distinct: Vec<Vec<Element>> = Vec::new();
        for tuple in tuples {
            census.arity = tuple.len();
            if seen.insert(tuple.clone()) {
                distinct.push(tuple);
            }
        }
        let rho_ = rho;
        let extracted = qpwm_par::par_map(&distinct, |tuple| {
            let nbhd = Neighborhood::extract(structure, gaifman, tuple, rho_);
            let fp = nbhd.fingerprint();
            (nbhd, fp)
        });
        for (tuple, (nbhd, fp)) in distinct.into_iter().zip(extracted) {
            census.merge_classified(tuple, nbhd, fp);
        }
        census
    }

    fn merge_classified(
        &mut self,
        tuple: Vec<Element>,
        nbhd: Neighborhood,
        fp: Fingerprint,
    ) -> TypeId {
        let candidates = self.buckets.entry(fp).or_default();
        for &t in candidates.iter() {
            if are_isomorphic(&self.representatives[t].1, &nbhd) {
                self.assignment.insert(tuple, t);
                return t;
            }
        }
        let t = self.representatives.len();
        candidates.push(t);
        self.representatives.push((tuple.clone(), nbhd));
        self.assignment.insert(tuple, t);
        t
    }

    /// Radius ρ of the census.
    pub fn rho(&self) -> u32 {
        self.rho
    }

    /// The number of types seen: `ntp(ρ, G)` restricted to the classified
    /// tuples.
    pub fn num_types(&self) -> usize {
        self.representatives.len()
    }

    /// Type of a classified tuple (`None` if it was never classified).
    pub fn type_of(&self, tuple: &[Element]) -> Option<TypeId> {
        self.assignment.get(tuple).copied()
    }

    /// The canonical representative tuple of type `t` — the paper's
    /// canonical parameter `ā_t`.
    pub fn representative(&self, t: TypeId) -> &[Element] {
        &self.representatives[t].0
    }

    /// The representative's neighborhood.
    pub fn representative_neighborhood(&self, t: TypeId) -> &Neighborhood {
        &self.representatives[t].1
    }

    /// All canonical parameters `S = {ā_1, ..., ā_ntp}` in type order.
    pub fn canonical_parameters(&self) -> Vec<Vec<Element>> {
        self.representatives.iter().map(|(t, _)| t.clone()).collect()
    }

    /// Members of each type, sorted (for reports and tests).
    pub fn members(&self) -> Vec<Vec<Vec<Element>>> {
        let mut out: Vec<Vec<Vec<Element>>> = vec![Vec::new(); self.num_types()];
        for (tuple, &t) in &self.assignment {
            out[t].push(tuple.clone());
        }
        for group in &mut out {
            group.sort_unstable();
        }
        out
    }
}

/// Classifies all unary tuples (single elements) — the common case for the
/// paper's examples where queries have one parameter.
pub fn classify_elements(structure: &Structure, gaifman: &GaifmanGraph, rho: u32) -> NeighborhoodTypes {
    NeighborhoodTypes::classify(
        structure,
        gaifman,
        rho,
        structure.universe().map(|e| vec![e]),
    )
}

/// Enumerates all `U^r` tuples of `structure` (row-major). Use carefully:
/// this is `n^r` tuples.
pub fn all_tuples(structure: &Structure, r: usize) -> Vec<Vec<Element>> {
    let n = structure.universe_size();
    let mut out = Vec::with_capacity((n as usize).pow(r as u32));
    let mut current = vec![0u32; r];
    loop {
        out.push(current.clone());
        // odometer increment
        let mut i = r;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            current[i] += 1;
            if current[i] < n {
                break;
            }
            current[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::figure1_instance;

    #[test]
    fn figure1_has_three_types() {
        // The paper: type(a)=type(b), type(d)=type(e), type(c)=type(f);
        // 3 distinct radius-1 types.
        let s = figure1_instance();
        let g = GaifmanGraph::of(&s);
        let census = classify_elements(&s, &g, 1);
        assert_eq!(census.num_types(), 3);
        assert_eq!(census.type_of(&[0]), census.type_of(&[1]));
        assert_eq!(census.type_of(&[3]), census.type_of(&[4]));
        assert_eq!(census.type_of(&[2]), census.type_of(&[5]));
        assert_ne!(census.type_of(&[0]), census.type_of(&[2]));
        assert_ne!(census.type_of(&[0]), census.type_of(&[3]));
    }

    #[test]
    fn representatives_are_first_encountered() {
        let s = figure1_instance();
        let g = GaifmanGraph::of(&s);
        let census = classify_elements(&s, &g, 1);
        // element 0 (a) is classified first, so type 0's representative is [0].
        assert_eq!(census.representative(0), &[0]);
        let canon = census.canonical_parameters();
        assert_eq!(canon.len(), 3);
        assert_eq!(canon[0], vec![0]);
    }

    #[test]
    fn members_partition_the_universe() {
        let s = figure1_instance();
        let g = GaifmanGraph::of(&s);
        let census = classify_elements(&s, &g, 1);
        let members = census.members();
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
        assert_eq!(members[0], vec![vec![0], vec![1]]);
    }

    #[test]
    fn radius_zero_merges_everything_unlabeled() {
        // With ρ = 0, every element's neighborhood is a single unlabeled
        // point (plus self-loops, absent here) — one type.
        let s = figure1_instance();
        let g = GaifmanGraph::of(&s);
        let census = classify_elements(&s, &g, 0);
        assert_eq!(census.num_types(), 1);
    }

    #[test]
    fn all_tuples_enumerates_row_major() {
        let s = figure1_instance();
        let pairs = all_tuples(&s, 2);
        assert_eq!(pairs.len(), 36);
        assert_eq!(pairs[0], vec![0, 0]);
        assert_eq!(pairs[1], vec![0, 1]);
        assert_eq!(pairs[35], vec![5, 5]);
    }

    #[test]
    fn pair_census_on_figure1() {
        let s = figure1_instance();
        let g = GaifmanGraph::of(&s);
        let census = NeighborhoodTypes::classify(&s, &g, 1, all_tuples(&s, 2));
        // Sanity: symmetric pairs share a type.
        assert_eq!(census.type_of(&[0, 3]), census.type_of(&[1, 4]));
        assert!(census.num_types() >= 3);
    }
}
