//! Gaifman graphs, distances and ρ-spheres.
//!
//! The Gaifman graph of a structure `G` connects `a` and `b` iff some tuple
//! of some relation contains both. Bounded Gaifman degree is the structural
//! restriction under which Theorem 3's watermarking scheme exists.

use crate::structure::{Element, Structure};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// The Gaifman graph of a structure, with BFS helpers.
#[derive(Debug, Clone)]
pub struct GaifmanGraph {
    adj: Vec<Vec<Element>>,
}

impl GaifmanGraph {
    /// Builds the Gaifman graph of `structure`.
    pub fn of(structure: &Structure) -> Self {
        let n = structure.universe_size() as usize;
        let mut adj: Vec<Vec<Element>> = vec![Vec::new(); n];
        for rel in 0..structure.schema().num_relations() {
            for tuple in structure.tuples(rel) {
                for i in 0..tuple.len() {
                    for j in (i + 1)..tuple.len() {
                        let (a, b) = (tuple[i], tuple[j]);
                        if a != b {
                            adj[a as usize].push(b);
                            adj[b as usize].push(a);
                        }
                    }
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        GaifmanGraph { adj }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbors of `e`, sorted.
    pub fn neighbors(&self, e: Element) -> &[Element] {
        &self.adj[e as usize]
    }

    /// Degree of `e`.
    pub fn degree(&self, e: Element) -> usize {
        self.adj[e as usize].len()
    }

    /// Maximum degree `k` over the whole graph — the parameter of
    /// `STRUCT_k[τ]`.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// BFS distances from `source`; `None` means unreachable (`d = ∞`).
    pub fn distances_from(&self, source: Element) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.adj.len()];
        let mut queue = VecDeque::new();
        dist[source as usize] = Some(0);
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v as usize].expect("queued vertices have distances");
            for &w in &self.adj[v as usize] {
                if dist[w as usize].is_none() {
                    dist[w as usize] = Some(dv + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// The ρ-sphere `S_ρ(c̄)`: all elements within distance `rho` of *some*
    /// component of `centers`. Sorted.
    ///
    /// Visited-set BFS sized to the sphere, not the graph: on bounded
    /// degree the cost is O(|sphere| · k), independent of `|U|`, which is
    /// what lets per-tuple neighborhood extraction scale linearly.
    pub fn sphere(&self, centers: &[Element], rho: u32) -> Vec<Element> {
        let mut dist: std::collections::HashMap<Element, u32> = HashMap::new();
        let mut queue = VecDeque::new();
        for &c in centers {
            if let Entry::Vacant(slot) = dist.entry(c) {
                slot.insert(0);
                queue.push_back(c);
            }
        }
        while let Some(v) = queue.pop_front() {
            let dv = dist[&v];
            if dv == rho {
                continue;
            }
            for &w in &self.adj[v as usize] {
                if let Entry::Vacant(slot) = dist.entry(w) {
                    slot.insert(dv + 1);
                    queue.push_back(w);
                }
            }
        }
        let mut out: Vec<Element> = dist.into_keys().collect();
        out.sort_unstable();
        out
    }

    /// Distance between two single elements (`None` = unreachable).
    pub fn distance(&self, a: Element, b: Element) -> Option<u32> {
        self.distances_from(a)[b as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::structure::{figure1_instance, StructureBuilder};
    use std::sync::Arc;

    fn path(n: u32) -> Structure {
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, n);
        for i in 0..n - 1 {
            b.add(0, &[i, i + 1]);
        }
        b.build()
    }

    #[test]
    fn path_degrees() {
        let g = GaifmanGraph::of(&path(5));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn gaifman_ignores_orientation_and_self_loops() {
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 3);
        b.add(0, &[0, 1]).add(0, &[1, 0]).add(0, &[2, 2]);
        let g = GaifmanGraph::of(&b.build());
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn higher_arity_tuples_form_cliques() {
        let schema = Arc::new(Schema::new(vec![("T", 3)], 1));
        let mut b = StructureBuilder::new(schema, 4);
        b.add(0, &[0, 1, 2]);
        let g = GaifmanGraph::of(&b.build());
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn distances_and_unreachable() {
        let g = GaifmanGraph::of(&path(4));
        assert_eq!(g.distance(0, 3), Some(3));
        let schema = Arc::new(Schema::graph());
        let b = StructureBuilder::new(schema, 2);
        let g2 = GaifmanGraph::of(&b.build());
        assert_eq!(g2.distance(0, 1), None);
    }

    #[test]
    fn spheres_grow_with_radius() {
        let g = GaifmanGraph::of(&path(7));
        assert_eq!(g.sphere(&[3], 0), vec![3]);
        assert_eq!(g.sphere(&[3], 1), vec![2, 3, 4]);
        assert_eq!(g.sphere(&[3], 2), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn multi_center_sphere_unions() {
        let g = GaifmanGraph::of(&path(7));
        assert_eq!(g.sphere(&[0, 6], 1), vec![0, 1, 5, 6]);
    }

    #[test]
    fn figure1_gaifman_shape() {
        // Edges a–d, a–e, b–d, b–e, c–d, f–e.
        // Degrees: a,b = 2; c,f = 1; d,e = 3.
        let g = GaifmanGraph::of(&figure1_instance());
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.degree(3), 3);
        assert_eq!(g.degree(4), 3);
        assert_eq!(g.degree(5), 1);
        assert_eq!(g.max_degree(), 3);
    }
}
