//! Weighted structures `(G, W)`.
//!
//! A weight assignment maps `s`-tuples of universe elements to integer
//! weights. The paper uses `W : U^s -> N`; we use `i64` so that ±1 marking
//! distortions and simulated adversarial noise can never underflow. Tuples
//! without an explicit weight have weight 0.

use crate::structure::{Element, Structure};
use std::collections::HashMap;
use std::fmt;

/// Key of the weight map: an `s`-tuple of elements.
pub type WeightKey = Vec<Element>;

/// A weight assignment `W : U^s -> i64` (sparse; default 0).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Weights {
    map: HashMap<WeightKey, i64>,
    arity: usize,
}

impl Weights {
    /// Creates an empty assignment on `s`-tuples.
    pub fn new(arity: usize) -> Self {
        Weights { map: HashMap::new(), arity }
    }

    /// Arity `s` of the keys.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The weight of `key` (0 if unset).
    pub fn get(&self, key: &[Element]) -> i64 {
        debug_assert_eq!(key.len(), self.arity);
        self.map.get(key).copied().unwrap_or(0)
    }

    /// Sets the weight of `key`.
    pub fn set(&mut self, key: &[Element], w: i64) {
        debug_assert_eq!(key.len(), self.arity);
        self.map.insert(key.to_vec(), w);
    }

    /// Adds `delta` to the weight of `key`.
    pub fn add(&mut self, key: &[Element], delta: i64) {
        debug_assert_eq!(key.len(), self.arity);
        *self.map.entry(key.to_vec()).or_insert(0) += delta;
    }

    /// Number of explicitly stored weights.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no weight was ever set.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over explicitly stored `(key, weight)` pairs in sorted key
    /// order (deterministic).
    pub fn iter_sorted(&self) -> Vec<(&WeightKey, i64)> {
        let mut v: Vec<_> = self.map.iter().map(|(k, &w)| (k, w)).collect();
        v.sort_unstable_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// Keys of all explicitly stored weights, sorted.
    pub fn keys_sorted(&self) -> Vec<WeightKey> {
        let mut v: Vec<_> = self.map.keys().cloned().collect();
        v.sort_unstable();
        v
    }

    /// Maximum absolute pointwise difference to `other` over the union of
    /// their explicit keys — the smallest `c` for which `other` is a
    /// `c`-local distortion of `self`.
    pub fn max_pointwise_diff(&self, other: &Weights) -> i64 {
        debug_assert_eq!(self.arity, other.arity);
        let mut max = 0i64;
        for (k, &w) in &self.map {
            max = max.max((w - other.get(k)).abs());
        }
        for (k, &w) in &other.map {
            if !self.map.contains_key(k) {
                max = max.max(w.abs());
            }
        }
        max
    }
}

impl fmt::Display for Weights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W = {{")?;
        for (i, (k, w)) in self.iter_sorted().into_iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k:?} -> {w}")?;
        }
        write!(f, "}}")
    }
}

/// A weighted structure `(G, W)`.
#[derive(Debug, Clone)]
pub struct WeightedStructure {
    structure: Structure,
    weights: Weights,
}

impl WeightedStructure {
    /// Pairs a structure with a weight assignment.
    ///
    /// # Panics
    /// Panics if the weight arity disagrees with the schema's `s`.
    pub fn new(structure: Structure, weights: Weights) -> Self {
        assert_eq!(
            weights.arity(),
            structure.schema().weight_arity(),
            "weight arity must match schema weight arity"
        );
        WeightedStructure { structure, weights }
    }

    /// The underlying structure `G`.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// The weight assignment `W`.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Mutable access to the weights (the structure part stays immutable —
    /// watermarking only ever perturbs `W`).
    pub fn weights_mut(&mut self) -> &mut Weights {
        &mut self.weights
    }

    /// Clones this weighted structure with a different weight assignment
    /// over the same structure.
    pub fn with_weights(&self, weights: Weights) -> Self {
        WeightedStructure::new(self.structure.clone(), weights)
    }

    /// The weight of an `s`-tuple.
    pub fn weight(&self, key: &[Element]) -> i64 {
        self.weights.get(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::structure::StructureBuilder;
    use std::sync::Arc;

    fn graph2() -> Structure {
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 3);
        b.add(0, &[0, 1]).add(0, &[1, 2]);
        b.build()
    }

    #[test]
    fn default_weight_is_zero() {
        let w = Weights::new(1);
        assert_eq!(w.get(&[5]), 0);
        assert!(w.is_empty());
    }

    #[test]
    fn set_get_add_roundtrip() {
        let mut w = Weights::new(1);
        w.set(&[0], 10);
        w.add(&[0], -3);
        w.add(&[1], 4);
        assert_eq!(w.get(&[0]), 7);
        assert_eq!(w.get(&[1]), 4);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn pointwise_diff_covers_both_sides() {
        let mut a = Weights::new(1);
        a.set(&[0], 10);
        a.set(&[1], 5);
        let mut b = Weights::new(1);
        b.set(&[0], 12);
        b.set(&[2], -4);
        // |10-12| = 2, |5-0| = 5, |0-(-4)| = 4 -> max 5
        assert_eq!(a.max_pointwise_diff(&b), 5);
        assert_eq!(b.max_pointwise_diff(&a), 5);
    }

    #[test]
    fn weighted_structure_accessors() {
        let mut w = Weights::new(1);
        w.set(&[0], 1);
        let ws = WeightedStructure::new(graph2(), w);
        assert_eq!(ws.weight(&[0]), 1);
        assert_eq!(ws.weight(&[2]), 0);
        assert_eq!(ws.structure().universe_size(), 3);
    }

    #[test]
    #[should_panic(expected = "weight arity")]
    fn arity_mismatch_rejected() {
        let w = Weights::new(2);
        let _ = WeightedStructure::new(graph2(), w);
    }

    #[test]
    fn iter_sorted_is_deterministic() {
        let mut w = Weights::new(1);
        for e in [3u32, 1, 2, 0] {
            w.set(&[e], e as i64);
        }
        let keys: Vec<_> = w.iter_sorted().into_iter().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![0, 1, 2, 3]);
    }
}
