//! Relational substrate for query-preserving watermarking.
//!
//! This crate implements the *weighted structures* of Gross-Amblard
//! (PODS 2003, section 1): finite relational structures over a schema
//! (signature), weight assignments on `s`-tuples, and the combinatorial
//! machinery the watermarking schemes are built on — Gaifman graphs,
//! ρ-spheres, ρ-neighborhoods, isomorphism of pointed structures and
//! neighborhood-type censuses.
//!
//! Elements of the universe are dense indices (`Element = u32`); callers
//! that need named elements keep their own name table (see
//! [`structure::StructureBuilder`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distortion;
pub mod engine;
pub mod gaifman;
pub mod iso;
pub mod neighborhood;
pub mod schema;
pub mod structure;
pub mod types;
pub mod weighted;

pub use distortion::{global_distortion, local_distortion, DistortionReport};
pub use engine::{
    stream_family, AnswerFamily, AnswerSource, FamilyBuilder, FamilySink, StreamSummary,
    StreamingInterner, TupleArena, TupleId,
};
pub use gaifman::GaifmanGraph;
pub use iso::are_isomorphic;
pub use neighborhood::Neighborhood;
pub use schema::{RelId, Schema};
pub use structure::{figure1_instance, Element, Structure, StructureBuilder, Tuple};
pub use types::{NeighborhoodTypes, TypeId};
pub use weighted::{WeightKey, WeightedStructure, Weights};
