//! Deterministic, dependency-free parallelism for the workspace.
//!
//! The marker/detector pipeline is full of embarrassingly parallel
//! stages — per-parameter answer materialization, per-tuple neighborhood
//! extraction, per-pair separation counting — but the workspace is
//! hermetic: no rayon, no crossbeam. This crate fills the gap with
//! `std::thread::scope` chunked map/reduce whose output is **bit-identical
//! to the sequential path**: inputs are split into contiguous chunks, each
//! worker maps its chunk in order, and results are concatenated in chunk
//! order, so `par_map(items, f)` returns exactly `items.map(f).collect()`
//! for any thread count.
//!
//! Thread count resolution (first match wins):
//!
//! 1. an explicit [`set_threads`] call (the CLI `--threads N` flag);
//! 2. the `QPWM_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! At 1 thread every entry point degrades to a plain sequential loop on
//! the calling thread — no spawn, no overhead — which is also the
//! deterministic reference the differential tests pin against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 = unset; otherwise the explicit override from [`set_threads`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets an explicit thread count for all subsequent parallel calls,
/// taking precedence over `QPWM_THREADS` and the detected parallelism.
/// `set_threads(0)` clears the override.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Parses a user-supplied thread count (a `--threads` value or the
/// `QPWM_THREADS` variable): a positive integer, nothing else.
///
/// This is the one validator every frontend shares — the `qpwm` CLI,
/// the bench binaries, and `qpwm serve` — so `--threads 0` and
/// `--threads fast` fail the same way everywhere: a clear diagnostic
/// naming the offending value, never a panic or a silent fallback.
pub fn parse_thread_arg(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "thread count must be at least 1, got '{}'",
            value.trim()
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "thread count must be a positive integer, got '{}'",
            value.trim()
        )),
    }
}

/// Resolves the effective worker count: [`set_threads`] override, then
/// the `QPWM_THREADS` environment variable, then
/// [`std::thread::available_parallelism`] (1 if unavailable).
pub fn thread_count() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(value) = std::env::var("QPWM_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Splits `len` items into at most `threads` contiguous chunk ranges of
/// near-equal size (the first `len % threads` chunks get one extra item).
/// Empty input yields no chunks.
pub fn chunk_ranges(len: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.max(1).min(len.max(1));
    if len == 0 {
        return Vec::new();
    }
    let base = len / threads;
    let extra = len % threads;
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0;
    for i in 0..threads {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Maps `f` over `items` with the ambient [`thread_count`], preserving
/// input order. Equivalent to `items.iter().map(f).collect()`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(thread_count(), items, f)
}

/// [`par_map`] with an explicit thread count — the deterministic entry
/// point for tests, immune to the global [`set_threads`] state.
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let ranges = chunk_ranges(items.len(), threads);
    if ranges.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let mut chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|range| {
                let slice = &items[range.clone()];
                let f = &f;
                scope.spawn(move || slice.iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("qpwm-par worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunks.iter_mut() {
        out.append(chunk);
    }
    out
}

/// Maps `f` over whole index chunks (`f` receives the chunk's index
/// range) and returns the per-chunk results in chunk order. This is the
/// shard-then-merge primitive: each worker builds a private accumulator
/// for a contiguous slice of the input, and the caller merges the shards
/// sequentially in deterministic order.
pub fn par_chunks<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    par_chunks_with(thread_count(), len, f)
}

/// [`par_chunks`] with an explicit thread count.
pub fn par_chunks_with<R, F>(threads: usize, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let ranges = chunk_ranges(len, threads);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let f = &f;
                scope.spawn(move || f(range))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("qpwm-par worker panicked")).collect()
    })
}

/// One step of a recursive [`fork_join`] split: either replace the task
/// with an ordered list of subtasks, or keep it as a leaf.
#[derive(Debug)]
pub enum Fork<T> {
    /// Replace the task with these subtasks. Child order is reduction
    /// order: the join callback sees the children's results in exactly
    /// this order, for every thread count.
    Split(Vec<T>),
    /// Stop splitting: evaluate this task as a leaf.
    Leaf(T),
}

/// Expansion cutoffs for [`fork_join`]. Both limits are *inputs*, never
/// derived from the thread count, so the task tree — and therefore the
/// reduction shape — is identical for any number of workers.
#[derive(Debug, Clone, Copy)]
pub struct ForkJoinLimits {
    /// Maximum split depth; the root is at depth 0.
    pub max_depth: usize,
    /// Soft cap on the number of leaves: once reached, no further
    /// splits happen (a final split may overshoot by its own fan-out).
    pub max_tasks: usize,
}

impl Default for ForkJoinLimits {
    fn default() -> Self {
        ForkJoinLimits { max_depth: 12, max_tasks: 128 }
    }
}

/// The expanded task tree: leaves carry tasks, branches only shape.
enum Node<T> {
    Leaf(T),
    Branch(Vec<Node<T>>),
}

/// Tree shape with the tasks stripped out, used to replay the joins in
/// the exact split order after the leaves were evaluated in parallel.
enum Shape {
    Leaf,
    Branch(Vec<Shape>),
}

fn expand<T, S>(
    task: T,
    depth: usize,
    limits: &ForkJoinLimits,
    leaves: &mut usize,
    split: &S,
) -> Node<T>
where
    S: Fn(T, usize) -> Fork<T>,
{
    if depth >= limits.max_depth || *leaves >= limits.max_tasks {
        return Node::Leaf(task);
    }
    match split(task, depth) {
        Fork::Leaf(t) => Node::Leaf(t),
        Fork::Split(children) => {
            *leaves += children.len().saturating_sub(1);
            Node::Branch(
                children
                    .into_iter()
                    .map(|c| expand(c, depth + 1, limits, leaves, split))
                    .collect(),
            )
        }
    }
}

fn strip<T>(node: Node<T>, tasks: &mut Vec<T>) -> Shape {
    match node {
        Node::Leaf(t) => {
            tasks.push(t);
            Shape::Leaf
        }
        Node::Branch(children) => {
            Shape::Branch(children.into_iter().map(|c| strip(c, tasks)).collect())
        }
    }
}

fn reduce<R, J>(shape: &Shape, results: &mut std::vec::IntoIter<R>, join: &J) -> R
where
    J: Fn(Vec<R>) -> R,
{
    match shape {
        Shape::Leaf => results.next().expect("one result per leaf"),
        Shape::Branch(children) => {
            let rs: Vec<R> = children.iter().map(|c| reduce(c, results, join)).collect();
            join(rs)
        }
    }
}

/// Recursive fork-join with the ambient [`thread_count`]: see
/// [`fork_join_with`].
pub fn fork_join<T, R, S, L, J>(
    root: T,
    limits: ForkJoinLimits,
    split: S,
    leaf: L,
    join: J,
) -> R
where
    T: Sync,
    R: Send,
    S: Fn(T, usize) -> Fork<T>,
    L: Fn(&T) -> R + Sync,
    J: Fn(Vec<R>) -> R,
{
    fork_join_with(thread_count(), root, limits, split, leaf, join)
}

/// Recursive fork-join parallelism with a deterministic reduction order.
///
/// The root task is split recursively (`split` decides, per task and
/// depth) until `limits` cuts expansion off; the resulting leaves are
/// evaluated on the scoped-thread pool in left-to-right order-preserving
/// chunks ([`par_map_with`]); then `join` folds each branch's child
/// results back up **in child order**, sequentially, on the calling
/// thread.
///
/// Determinism: the expansion is sequential and the limits are explicit
/// inputs, so the task tree has the same shape for every thread count —
/// `threads` only changes how leaves are scheduled, never which leaves
/// exist nor the order their results are joined in. Even a
/// non-commutative `join` therefore produces bit-identical output at any
/// worker count. A single-leaf tree (the root refuses to split) runs
/// entirely on the calling thread with no spawn.
///
/// A task that splits into an empty `Vec` becomes `join(vec![])` — the
/// join callback must supply the identity for that case if its splits
/// can come up empty.
pub fn fork_join_with<T, R, S, L, J>(
    threads: usize,
    root: T,
    limits: ForkJoinLimits,
    split: S,
    leaf: L,
    join: J,
) -> R
where
    T: Sync,
    R: Send,
    S: Fn(T, usize) -> Fork<T>,
    L: Fn(&T) -> R + Sync,
    J: Fn(Vec<R>) -> R,
{
    let mut leaves = 1usize;
    let tree = expand(root, 0, &limits, &mut leaves, &split);
    let mut tasks: Vec<T> = Vec::with_capacity(leaves);
    let shape = strip(tree, &mut tasks);
    let results = par_map_with(threads, &tasks, leaf);
    reduce(&shape, &mut results.into_iter(), &join)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_input_exactly_once() {
        for len in [0usize, 1, 2, 7, 16, 100] {
            for threads in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, threads);
                let mut covered = 0;
                for r in &ranges {
                    assert_eq!(r.start, covered, "chunks must be contiguous");
                    assert!(!r.is_empty(), "no empty chunks");
                    covered = r.end;
                }
                assert_eq!(covered, len, "chunks must cover the input");
                assert!(ranges.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_for_all_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1usize, 2, 3, 4, 7, 32] {
            let got = par_map_with(threads, &items, |x| x * x + 1);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_preserves_order_with_uneven_work() {
        // Make later items cheap and early items expensive so workers
        // finish out of order; the merge must still be input-ordered.
        let items: Vec<usize> = (0..64).collect();
        let got = par_map_with(8, &items, |&i| {
            let mut acc = 0u64;
            for k in 0..((64 - i) * 1_000) as u64 {
                acc = acc.wrapping_add(k ^ i as u64);
            }
            (i, acc)
        });
        let indices: Vec<usize> = got.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, items);
    }

    #[test]
    fn par_chunks_shards_merge_in_order() {
        let len = 103;
        for threads in [1usize, 2, 5, 16] {
            let shards = par_chunks_with(threads, len, |range| range.collect::<Vec<usize>>());
            let merged: Vec<usize> = shards.into_iter().flatten().collect();
            assert_eq!(merged, (0..len).collect::<Vec<usize>>(), "threads = {threads}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(4, &empty, |x| *x).is_empty());
        assert!(par_chunks_with(4, 0, |r| r.len()).is_empty());
    }

    #[test]
    fn parse_thread_arg_accepts_positive_integers() {
        assert_eq!(parse_thread_arg("1"), Ok(1));
        assert_eq!(parse_thread_arg(" 8 "), Ok(8));
        assert_eq!(parse_thread_arg("128"), Ok(128));
    }

    #[test]
    fn parse_thread_arg_rejects_zero_and_garbage() {
        let zero = parse_thread_arg("0").expect_err("0 is rejected");
        assert!(zero.contains("at least 1"), "{zero}");
        assert!(zero.contains("'0'"), "{zero}");
        for bad in ["", "fast", "-2", "1.5", "0x4"] {
            let err = parse_thread_arg(bad).expect_err("non-numeric is rejected");
            assert!(err.contains("positive integer"), "{bad}: {err}");
        }
    }

    /// Splits an integer range in half until it is small; leaves sum
    /// their range. The closed form pins the arithmetic.
    #[test]
    fn fork_join_sums_a_range() {
        let limits = ForkJoinLimits { max_depth: 8, max_tasks: 64 };
        for threads in [1usize, 2, 3, 8] {
            let total = fork_join_with(
                threads,
                0u64..1000,
                limits,
                |r, _| {
                    if r.end - r.start <= 10 {
                        Fork::Leaf(r)
                    } else {
                        let mid = r.start + (r.end - r.start) / 2;
                        Fork::Split(vec![r.start..mid, mid..r.end])
                    }
                },
                |r| r.clone().sum::<u64>(),
                |rs| rs.into_iter().sum(),
            );
            assert_eq!(total, 999 * 1000 / 2, "threads = {threads}");
        }
    }

    /// A deliberately non-commutative join (string concatenation in
    /// child order) must come out identical for every thread count:
    /// the task tree and the reduction order never depend on workers.
    #[test]
    fn fork_join_reduction_order_is_thread_independent() {
        let limits = ForkJoinLimits { max_depth: 6, max_tasks: 32 };
        let run = |threads: usize| -> String {
            fork_join_with(
                threads,
                (0u32, 27u32),
                limits,
                |(lo, hi), _| {
                    if hi - lo <= 3 {
                        Fork::Leaf((lo, hi))
                    } else {
                        let third = (hi - lo) / 3;
                        Fork::Split(vec![
                            (lo, lo + third),
                            (lo + third, hi - third),
                            (hi - third, hi),
                        ])
                    }
                },
                |&(lo, hi)| format!("[{lo}-{hi}]"),
                |rs| rs.concat(),
            )
        };
        let reference = run(1);
        for threads in [2usize, 4, 7] {
            assert_eq!(run(threads), reference, "threads = {threads}");
        }
        // and the reference really is the in-order concatenation
        assert!(reference.starts_with("[0-3]"));
        assert!(reference.ends_with("[24-27]"));
    }

    /// The width cutoff stops expansion: leaf count stays within
    /// max_tasks plus one final fan-out, and max_depth bounds the tree.
    #[test]
    fn fork_join_respects_limits() {
        use std::sync::atomic::AtomicUsize;
        let leaves = AtomicUsize::new(0);
        let limits = ForkJoinLimits { max_depth: 20, max_tasks: 10 };
        let total = fork_join_with(
            4,
            0u32..4096,
            limits,
            |r, _| {
                if r.end - r.start <= 1 {
                    Fork::Leaf(r)
                } else {
                    let mid = r.start + (r.end - r.start) / 2;
                    Fork::Split(vec![r.start..mid, mid..r.end])
                }
            },
            |r| {
                leaves.fetch_add(1, Ordering::Relaxed);
                r.len() as u64
            },
            |rs| rs.into_iter().sum(),
        );
        assert_eq!(total, 4096);
        let n = leaves.load(Ordering::Relaxed);
        assert!(n <= 12, "width cutoff ignored: {n} leaves");
        assert!(n >= 10, "expansion stopped early: {n} leaves");
    }

    /// An unsplit root runs as a single leaf on the calling thread.
    #[test]
    fn fork_join_single_leaf_runs_inline() {
        let caller = std::thread::current().id();
        let limits = ForkJoinLimits { max_depth: 0, max_tasks: 1 };
        let ran_on = fork_join_with(
            8,
            42u32,
            limits,
            |t, _| Fork::Split(vec![t]), // never reached: depth 0
            |&t| {
                assert_eq!(t, 42);
                std::thread::current().id()
            },
            |mut rs| rs.pop().expect("one leaf"),
        );
        assert_eq!(ran_on, caller);
    }

    /// An empty split reduces to join(vec![]).
    #[test]
    fn fork_join_empty_split_joins_identity() {
        let limits = ForkJoinLimits::default();
        let total = fork_join_with(
            2,
            0u32,
            limits,
            |_, _| Fork::Split(Vec::new()),
            |_| 7u64,
            |rs| rs.into_iter().sum::<u64>(),
        );
        assert_eq!(total, 0);
    }

    #[test]
    fn thread_count_respects_override() {
        set_threads(3);
        assert_eq!(thread_count(), 3);
        set_threads(0);
        assert!(thread_count() >= 1);
    }
}
