//! The Agrawal–Kiernan watermarking scheme (VLDB 2002), reimplemented.
//!
//! The scheme marks a relation by deterministically selecting, per tuple,
//! whether to mark it (keyed pseudo-random decision on the primary key),
//! which least-significant bit of which numerical attribute to overwrite,
//! and the bit value. Detection re-derives the same selections and counts
//! matches; ownership is claimed when the match count is improbably high
//! under the null hypothesis.
//!
//! This reproduction keeps the essential mechanics: a keyed PRF over
//! primary keys (an xorshift-based mix — cryptographic strength is not
//! the point of the experiments), a `1/gamma` marking rate, `xi`
//! candidate LSBs, and threshold detection. Mean and variance move only
//! slightly — but *parametric query results* shift unboundedly in the
//! worst case, which is exactly the gap the PODS'03 paper closes.

use qpwm_structures::{Element, WeightKey, Weights};

/// Configuration of the Agrawal–Kiernan marker.
#[derive(Debug, Clone)]
pub struct AkConfig {
    /// Secret key.
    pub key: u64,
    /// Mark roughly one in `gamma` tuples.
    pub gamma: u64,
    /// Number of candidate least-significant bits (`ξ`).
    pub xi: u32,
    /// Detection threshold `τ ∈ (0.5, 1]`: claim ownership when the
    /// fraction of matching marked bits reaches it.
    pub tau: f64,
}

impl Default for AkConfig {
    fn default() -> Self {
        AkConfig { key: 0xA5A5_5A5A, gamma: 4, xi: 2, tau: 0.8 }
    }
}

/// Keyed PRF: mixes the key and the primary key into 64 pseudo-random
/// bits (splitmix64 finalizer — deterministic across platforms).
fn prf(key: u64, tuple_key: &[Element], salt: u64) -> u64 {
    let mut h = key ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &e in tuple_key {
        h ^= u64::from(e).wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

/// The Agrawal–Kiernan scheme over a single weighted attribute keyed by
/// the tuple identity.
#[derive(Debug, Clone)]
pub struct AkScheme {
    config: AkConfig,
}

/// Detection outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AkDetection {
    /// Tuples the detector expected to be marked.
    pub total_marked: usize,
    /// Of those, bits that matched the expected mark.
    pub matches: usize,
    /// `matches / total_marked` (1.0 when nothing was expected).
    pub match_rate: f64,
    /// Did the match rate reach the threshold τ?
    pub suspicious: bool,
}

impl AkScheme {
    /// Creates the scheme.
    pub fn new(config: AkConfig) -> Self {
        AkScheme { config }
    }

    /// Is this tuple selected for marking, and if so which bit/value?
    fn selection(&self, key: &[Element]) -> Option<(u32, bool)> {
        let h = prf(self.config.key, key, 0);
        if !h.is_multiple_of(self.config.gamma) {
            return None;
        }
        let bit = (prf(self.config.key, key, 1) % u64::from(self.config.xi)) as u32;
        let value = prf(self.config.key, key, 2) & 1 == 1;
        Some((bit, value))
    }

    /// Marks every selected tuple's chosen LSB.
    pub fn mark(&self, weights: &Weights, universe: &[WeightKey]) -> Weights {
        let mut out = weights.clone();
        for key in universe {
            if let Some((bit, value)) = self.selection(key) {
                let w = out.get(key);
                let mask = 1i64 << bit;
                let marked = if value { w | mask } else { w & !mask };
                out.set(key, marked);
            }
        }
        out
    }

    /// Detects the mark in suspect weights.
    pub fn detect(&self, suspect: &Weights, universe: &[WeightKey]) -> AkDetection {
        let mut total = 0usize;
        let mut matches = 0usize;
        for key in universe {
            if let Some((bit, value)) = self.selection(key) {
                total += 1;
                let observed = suspect.get(key) >> bit & 1 == 1;
                if observed == value {
                    matches += 1;
                }
            }
        }
        let match_rate = if total == 0 { 1.0 } else { matches as f64 / total as f64 };
        AkDetection {
            total_marked: total,
            matches,
            match_rate,
            suspicious: match_rate >= self.config.tau && total > 0,
        }
    }

    /// Maximum per-tuple distortion the marking can cause (`2^ξ − 1`).
    pub fn max_local_distortion(&self) -> i64 {
        (1i64 << self.config.xi) - 1
    }

    /// The keyed selections over a universe: every tuple the PRF marks,
    /// with its chosen bit position and bit value, in universe order.
    /// This is the scheme's effective "message" — exposed so trait
    /// adapters can score ownership claims bit by bit.
    pub fn selections(&self, universe: &[WeightKey]) -> Vec<(WeightKey, u32, bool)> {
        universe
            .iter()
            .filter_map(|key| {
                self.selection(key)
                    .map(|(bit, value)| (key.clone(), bit, value))
            })
            .collect()
    }
}

/// Mean and variance of a weight assignment over a universe — the
/// statistics Agrawal–Kiernan verify experimentally.
pub fn mean_variance(weights: &Weights, universe: &[WeightKey]) -> (f64, f64) {
    if universe.is_empty() {
        return (0.0, 0.0);
    }
    let n = universe.len() as f64;
    let mean = universe.iter().map(|k| weights.get(k) as f64).sum::<f64>() / n;
    let var = universe
        .iter()
        .map(|k| {
            let d = weights.get(k) as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe(n: u32) -> Vec<WeightKey> {
        (0..n).map(|e| vec![e]).collect()
    }

    fn weights(n: u32) -> Weights {
        let mut w = Weights::new(1);
        for e in 0..n {
            w.set(&[e], 1000 + (e as i64 * 37) % 200);
        }
        w
    }

    #[test]
    fn marking_is_deterministic() {
        let s = AkScheme::new(AkConfig::default());
        let u = universe(100);
        let w = weights(100);
        assert_eq!(s.mark(&w, &u), s.mark(&w, &u));
    }

    #[test]
    fn marks_about_one_in_gamma() {
        let s = AkScheme::new(AkConfig { gamma: 4, ..AkConfig::default() });
        let u = universe(2000);
        let marked = u.iter().filter(|k| s.selection(k).is_some()).count();
        let expected = 2000 / 4;
        assert!(
            (marked as i64 - expected as i64).abs() < 120,
            "marked {marked}, expected ≈{expected}"
        );
    }

    #[test]
    fn detects_own_mark_perfectly() {
        let s = AkScheme::new(AkConfig::default());
        let u = universe(500);
        let w = weights(500);
        let marked = s.mark(&w, &u);
        let det = s.detect(&marked, &u);
        assert_eq!(det.matches, det.total_marked);
        assert!(det.suspicious);
    }

    #[test]
    fn unmarked_data_is_not_suspicious() {
        let s = AkScheme::new(AkConfig::default());
        let u = universe(500);
        let w = weights(500);
        let det = s.detect(&w, &u);
        // unmarked LSBs match by chance ≈ 50%, below τ = 0.8
        assert!(!det.suspicious, "match rate {}", det.match_rate);
    }

    #[test]
    fn wrong_key_detects_nothing() {
        let s = AkScheme::new(AkConfig::default());
        let u = universe(500);
        let w = weights(500);
        let marked = s.mark(&w, &u);
        let other = AkScheme::new(AkConfig { key: 123, ..AkConfig::default() });
        let det = other.detect(&marked, &u);
        assert!(!det.suspicious, "match rate {}", det.match_rate);
    }

    #[test]
    fn mean_and_variance_move_little() {
        let s = AkScheme::new(AkConfig::default());
        let u = universe(2000);
        let w = weights(2000);
        let marked = s.mark(&w, &u);
        let (m0, v0) = mean_variance(&w, &u);
        let (m1, v1) = mean_variance(&marked, &u);
        assert!((m0 - m1).abs() < 1.0, "mean moved {}", (m0 - m1).abs());
        assert!((v0 - v1).abs() / v0 < 0.05, "variance moved {}", (v0 - v1).abs());
    }

    #[test]
    fn local_distortion_bounded_by_xi() {
        let config = AkConfig { xi: 2, ..AkConfig::default() };
        let bound = AkScheme::new(config.clone()).max_local_distortion();
        assert_eq!(bound, 3);
        let s = AkScheme::new(config);
        let u = universe(1000);
        let w = weights(1000);
        let marked = s.mark(&w, &u);
        assert!(w.max_pointwise_diff(&marked) <= bound);
    }

    #[test]
    fn parametric_queries_are_unprotected() {
        // The paper's point: a small answer set can absorb several marked
        // tuples, so a parametric query's aggregate can move by more than
        // any fixed d even though mean/variance barely move. Find a small
        // subset of marked tuples whose aggregate moved a lot.
        let s = AkScheme::new(AkConfig { gamma: 1, xi: 3, ..AkConfig::default() });
        let u = universe(300);
        let w = weights(300);
        let marked = s.mark(&w, &u);
        // adversarial parameter: the 5 tuples with the largest shift
        let mut shifts: Vec<(i64, &WeightKey)> = u
            .iter()
            .map(|k| ((marked.get(k) - w.get(k)).abs(), k))
            .collect();
        shifts.sort_unstable_by_key(|s| std::cmp::Reverse(s.0));
        let worst5: i64 = shifts[..5].iter().map(|(d, _)| d).sum();
        assert!(worst5 >= 5, "worst-5 aggregate shift {worst5}");
    }
}
