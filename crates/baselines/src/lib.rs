//! Baseline watermarking schemes the paper positions itself against.
//!
//! * [`agrawal_kiernan`] — the VLDB 2002 bit-flipping scheme for
//!   relational data. The paper frames it as "a watermarking that only
//!   preserves (the mean of) a projection query on each numerical
//!   attribute, without parameters": it controls aggregate statistics
//!   experimentally but gives no guarantee on parametric query results.
//! * [`khanna_zane`] — the SODA 2000 scheme preserving shortest-path
//!   queries on weighted graphs, the paper's other anchor (and the source
//!   of its adversarial framework).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod agrawal_kiernan;
pub mod khanna_zane;

pub use adapters::{AkWatermark, KzWatermark};
pub use agrawal_kiernan::{AkConfig, AkScheme};
pub use khanna_zane::{KzGraph, KzScheme};
