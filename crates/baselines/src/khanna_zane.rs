//! The Khanna–Zane scheme (SODA 2000): watermarking weighted graphs while
//! provably preserving shortest-path queries.
//!
//! The original paper hides information in ±1 edge-weight perturbations
//! chosen so that *every* pairwise shortest-path distance moves by at
//! most `d`. This reproduction keeps that contract:
//!
//! * a Dijkstra substrate for all-pairs distances;
//! * a greedy marker that admits an edge into the mark set only if both
//!   extreme orientations (all `+1`, all `−1`) keep every distance within
//!   `d` — by monotonicity of shortest paths in edge weights, this bounds
//!   every mixed message too;
//! * a differential detector reading edge weights back from the suspect
//!   graph.

use qpwm_rng::Rng;
use std::collections::BinaryHeap;

/// An undirected weighted graph for shortest-path watermarking.
#[derive(Debug, Clone)]
pub struct KzGraph {
    n: usize,
    /// `(u, v, weight)`; undirected.
    edges: Vec<(u32, u32, i64)>,
}

impl KzGraph {
    /// Creates a graph on `n` vertices.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or non-positive weights.
    pub fn new(n: usize, edges: Vec<(u32, u32, i64)>) -> Self {
        for &(u, v, w) in &edges {
            assert!((u as usize) < n && (v as usize) < n, "endpoint out of range");
            assert!(w > 0, "weights must be positive");
        }
        KzGraph { n, edges }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The edges.
    pub fn edges(&self) -> &[(u32, u32, i64)] {
        &self.edges
    }

    /// Replaces edge weights (same topology).
    pub fn with_weights(&self, weights: &[i64]) -> KzGraph {
        assert_eq!(weights.len(), self.edges.len());
        let edges = self
            .edges
            .iter()
            .zip(weights)
            .map(|(&(u, v, _), &w)| (u, v, w))
            .collect();
        KzGraph { n: self.n, edges }
    }

    fn adjacency(&self) -> Vec<Vec<(u32, i64)>> {
        let mut adj: Vec<Vec<(u32, i64)>> = vec![Vec::new(); self.n];
        for &(u, v, w) in &self.edges {
            adj[u as usize].push((v, w));
            adj[v as usize].push((u, w));
        }
        adj
    }

    /// Dijkstra from `source`; `i64::MAX` marks unreachable vertices.
    pub fn distances_from(&self, source: u32) -> Vec<i64> {
        let adj = self.adjacency();
        let mut dist = vec![i64::MAX; self.n];
        dist[source as usize] = 0;
        let mut heap: BinaryHeap<std::cmp::Reverse<(i64, u32)>> = BinaryHeap::new();
        heap.push(std::cmp::Reverse((0, source)));
        while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for &(w, len) in &adj[v as usize] {
                let nd = d + len;
                if nd < dist[w as usize] {
                    dist[w as usize] = nd;
                    heap.push(std::cmp::Reverse((nd, w)));
                }
            }
        }
        dist
    }

    /// All-pairs distances (n Dijkstras).
    pub fn all_pairs(&self) -> Vec<Vec<i64>> {
        (0..self.n as u32).map(|s| self.distances_from(s)).collect()
    }

    /// Maximum absolute distance change versus another weighting of the
    /// same topology (ignoring pairs unreachable in either).
    pub fn max_distance_change(&self, other: &KzGraph) -> i64 {
        let a = self.all_pairs();
        let b = other.all_pairs();
        let mut max = 0;
        for (ra, rb) in a.iter().zip(&b) {
            for (&da, &db) in ra.iter().zip(rb) {
                if da != i64::MAX && db != i64::MAX {
                    max = max.max((da - db).abs());
                }
            }
        }
        max
    }
}

/// A constructed Khanna–Zane scheme: the secret mark-edge set plus the
/// original weights of those edges, so detection is *blind* — the
/// detector needs only the scheme state and the suspect graph, never
/// the original graph.
#[derive(Debug, Clone)]
pub struct KzScheme {
    /// Indices into the graph's edge list.
    mark_edges: Vec<usize>,
    /// Pre-mark weight of each mark edge (parallel to `mark_edges`) —
    /// the digest the blind detector compares against.
    original: Vec<i64>,
    d: i64,
}

impl KzScheme {
    /// Greedily selects a maximal mark-edge set keeping all shortest
    /// paths within `d` under both extreme orientations.
    pub fn build(graph: &KzGraph, d: i64, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..graph.edges.len()).collect();
        rng.shuffle(&mut order);
        let base: Vec<i64> = graph.edges.iter().map(|&(_, _, w)| w).collect();
        let mut selected: Vec<usize> = Vec::new();
        for cand in order {
            if base[cand] <= 1 {
                continue; // a −1 would zero the weight
            }
            let mut trial = selected.clone();
            trial.push(cand);
            let ok = [1i64, -1].iter().all(|&sign| {
                let mut w = base.clone();
                for &e in &trial {
                    w[e] += sign;
                }
                graph.max_distance_change(&graph.with_weights(&w)) <= d
            });
            if ok {
                selected = trial;
            }
        }
        selected.sort_unstable();
        let original = selected.iter().map(|&e| base[e]).collect();
        KzScheme { mark_edges: selected, original, d }
    }

    /// Message capacity in bits.
    pub fn capacity(&self) -> usize {
        self.mark_edges.len()
    }

    /// The distortion budget.
    pub fn d(&self) -> i64 {
        self.d
    }

    /// The secret mark-edge indices.
    pub fn mark_edges(&self) -> &[usize] {
        &self.mark_edges
    }

    /// The stored pre-mark weights of the mark edges (parallel to
    /// [`KzScheme::mark_edges`]).
    pub fn original_weights(&self) -> &[i64] {
        &self.original
    }

    /// Marks the graph with `message` (bit per selected edge).
    ///
    /// # Panics
    /// Panics if the message is longer than the capacity.
    pub fn mark(&self, graph: &KzGraph, message: &[bool]) -> KzGraph {
        assert!(message.len() <= self.mark_edges.len());
        let mut weights: Vec<i64> = graph.edges.iter().map(|&(_, _, w)| w).collect();
        for (&e, &bit) in self.mark_edges.iter().zip(message) {
            weights[e] += if bit { 1 } else { -1 };
        }
        graph.with_weights(&weights)
    }

    /// Reads the message back from a suspect graph's edge weights —
    /// blind: compares against the pre-mark weights stored in the
    /// scheme state, so no caller has to thread the original graph
    /// through every detection site.
    pub fn detect(&self, suspect: &KzGraph) -> Vec<bool> {
        self.mark_edges
            .iter()
            .zip(&self.original)
            .map(|(&e, &w0)| suspect.edges[e].2 > w0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ring with chords: plenty of alternative paths.
    fn ring(n: u32) -> KzGraph {
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, (i + 1) % n, 10));
        }
        for i in 0..n / 2 {
            edges.push((i, i + n / 2, 25));
        }
        KzGraph::new(n as usize, edges)
    }

    #[test]
    fn dijkstra_on_a_path() {
        let g = KzGraph::new(4, vec![(0, 1, 3), (1, 2, 4), (2, 3, 5)]);
        let d = g.distances_from(0);
        assert_eq!(d, vec![0, 3, 7, 12]);
    }

    #[test]
    fn unreachable_is_max() {
        let g = KzGraph::new(3, vec![(0, 1, 1)]);
        let d = g.distances_from(0);
        assert_eq!(d[2], i64::MAX);
        // max_distance_change ignores the unreachable pair
        assert_eq!(g.max_distance_change(&g), 0);
    }

    #[test]
    fn scheme_respects_distance_budget() {
        let g = ring(12);
        let scheme = KzScheme::build(&g, 2, 11);
        assert!(scheme.capacity() >= 2, "capacity {}", scheme.capacity());
        for message in [vec![true; scheme.capacity()], vec![false; scheme.capacity()]] {
            let marked = scheme.mark(&g, &message);
            let change = g.max_distance_change(&marked);
            assert!(change <= 2, "distance change {change}");
        }
    }

    #[test]
    fn mixed_messages_stay_within_budget() {
        let g = ring(12);
        let scheme = KzScheme::build(&g, 2, 3);
        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
        let marked = scheme.mark(&g, &message);
        assert!(g.max_distance_change(&marked) <= 2);
    }

    #[test]
    fn roundtrip_detection() {
        let g = ring(10);
        let scheme = KzScheme::build(&g, 3, 5);
        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 3 != 0).collect();
        let marked = scheme.mark(&g, &message);
        assert_eq!(scheme.detect(&marked), message);
    }

    #[test]
    fn detection_is_blind() {
        // The detector sees only the suspect graph: marking a *copy*
        // with different base weights than the build-time graph still
        // decodes against the stored digest, not a caller-supplied
        // original.
        let g = ring(10);
        let scheme = KzScheme::build(&g, 3, 5);
        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
        let marked = scheme.mark(&g, &message);
        drop(g); // no original graph survives to detection time
        assert_eq!(scheme.detect(&marked), message);
        assert_eq!(scheme.original_weights().len(), scheme.capacity());
    }

    #[test]
    fn weight_one_edges_never_selected() {
        let g = KzGraph::new(3, vec![(0, 1, 1), (1, 2, 50), (0, 2, 50)]);
        let scheme = KzScheme::build(&g, 10, 1);
        let marked = scheme.mark(&g, &vec![false; scheme.capacity()]);
        assert!(marked.edges().iter().all(|&(_, _, w)| w > 0));
    }
}
