//! [`WatermarkScheme`] adapters for the baseline schemes, so the
//! battleground can box Agrawal–Kiernan and Khanna–Zane next to the
//! query-preserving schemes and judge all of them with the same
//! binomial significance statistic.
//!
//! Both adapters carry the *workload's* answer family: neither baseline
//! preserves those parametric aggregates by construction, which is
//! exactly what the shared `distortion` column then measures.

use qpwm_core::detect::{binomial_tail, Verdict, DEFAULT_DELTA};
use qpwm_core::scheme::{MarkedCarrier, SchemeVerdict, WatermarkScheme};
use qpwm_structures::{AnswerFamily, WeightKey, Weights};

use crate::agrawal_kiernan::AkScheme;
use crate::khanna_zane::{KzGraph, KzScheme};

/// Scores `matches` out of `compared` evidence-bearing bits the same
/// way `claim_check_effective` does: prove the mark below
/// [`DEFAULT_DELTA`], abstain when evidence was lost and what remains
/// does not clear it, stay inconclusive otherwise.
fn verdict_from_counts(matches: usize, compared: usize, full: usize) -> SchemeVerdict {
    let significance = binomial_tail(compared, matches);
    let verdict = if significance < DEFAULT_DELTA {
        Verdict::MarkPresent
    } else if compared < full {
        Verdict::Abstain
    } else {
        Verdict::Inconclusive
    };
    SchemeVerdict {
        matches,
        compared,
        bit_errors: compared - matches,
        significance,
        verdict,
    }
}

/// Agrawal–Kiernan behind the [`WatermarkScheme`] trait: the carrier is
/// the weight column over the family's active universe, the "message"
/// is the PRF's keyed bit selection.
///
/// AK embeds no free message — which tuples are marked, and to what,
/// follows from the secret key alone. [`WatermarkScheme::mark`]
/// therefore *ignores the content* of its `message` argument (only its
/// length is validated) and records the PRF-expected bits as the
/// carrier's claim, so detection scores exactly what AK's own detector
/// counts: marked cells whose LSB still agrees with the key.
pub struct AkWatermark {
    scheme: AkScheme,
    params: String,
    family: AnswerFamily,
    baseline: Weights,
    /// `(tuple, bit position, expected value)` for every PRF-selected
    /// tuple, in universe order.
    selections: Vec<(WeightKey, u32, bool)>,
}

impl AkWatermark {
    /// Wraps an AK scheme over `family`'s active universe.
    pub fn new(scheme: AkScheme, params: String, family: AnswerFamily, baseline: Weights) -> Self {
        let universe: Vec<WeightKey> = family.universe_tuples().map(|t| t.to_vec()).collect();
        let selections = scheme.selections(&universe);
        AkWatermark { scheme, params, family, baseline, selections }
    }
}

impl WatermarkScheme for AkWatermark {
    fn name(&self) -> &str {
        "ak"
    }

    fn params(&self) -> String {
        self.params.clone()
    }

    fn capacity_hint(&self) -> usize {
        self.selections.len()
    }

    fn family(&self) -> &AnswerFamily {
        &self.family
    }

    fn baseline(&self) -> &Weights {
        &self.baseline
    }

    fn mark(&self, message: &[bool]) -> MarkedCarrier {
        assert!(message.len() <= self.capacity_hint(), "message exceeds capacity");
        let universe: Vec<WeightKey> = self.family.universe_tuples().map(|t| t.to_vec()).collect();
        let marked = self.scheme.mark(&self.baseline, &universe);
        let expected = self.selections.iter().map(|&(_, _, v)| v).collect();
        MarkedCarrier::clean(marked, expected)
    }

    fn detect(&self, suspect: &MarkedCarrier) -> SchemeVerdict {
        let dropped = suspect.dropped_set();
        let mut compared = 0usize;
        let mut matches = 0usize;
        for (key, bit, value) in &self.selections {
            if dropped.contains(key) {
                continue;
            }
            compared += 1;
            let observed = suspect.weights.get(key) >> bit & 1 == 1;
            if observed == *value {
                matches += 1;
            }
        }
        // AK's detector scans the whole served relation, so forged
        // tuples the PRF happens to select dilute the sample — the
        // superset attack's entire effect on this scheme.
        for (key, w) in &suspect.inserted {
            if let Some((bit, value)) = self
                .scheme
                .selections(std::slice::from_ref(key))
                .first()
                .map(|&(_, b, v)| (b, v))
            {
                compared += 1;
                if (w >> bit & 1 == 1) == value {
                    matches += 1;
                }
            }
        }
        verdict_from_counts(matches, compared, self.selections.len())
    }
}

/// Khanna–Zane behind the [`WatermarkScheme`] trait: the family's
/// active universe becomes the leaf edges of a star graph (edge `i`
/// joins leaf `i` to a hub vertex, carrying tuple `i`'s weight), so
/// every ±1 edge mark moves any leaf-to-leaf shortest path by at most
/// 2 — the budget `d = 2` then admits every edge and capacity tracks
/// the universe size.
///
/// Detection is blind (the KZ scheme state stores the pre-mark digest);
/// the adapter only reconstructs the suspect's edge weights from the
/// carrier and lets [`KzScheme::detect`] read the bits back.
pub struct KzWatermark {
    scheme: KzScheme,
    graph: KzGraph,
    params: String,
    family: AnswerFamily,
    baseline: Weights,
    /// `universe[e]` is the tuple carried by star edge `e`.
    universe: Vec<WeightKey>,
}

impl KzWatermark {
    /// Builds the star carrier over `family`'s universe and selects the
    /// KZ mark-edge set under shortest-path budget `d`.
    pub fn new(family: AnswerFamily, baseline: Weights, d: i64, seed: u64) -> Self {
        let universe: Vec<WeightKey> = family.universe_tuples().map(|t| t.to_vec()).collect();
        let hub = universe.len() as u32;
        // Star edge weights clamp at 2: KZ never selects weight-1 edges
        // (a −1 would zero them), and only weight *deltas* round-trip to
        // the real carrier, so clamping costs nothing but keeps every
        // tuple markable.
        let edges = universe
            .iter()
            .enumerate()
            .map(|(i, key)| (i as u32, hub, baseline.get(key).max(2)))
            .collect();
        let graph = KzGraph::new(universe.len() + 1, edges);
        let scheme = KzScheme::build(&graph, d, seed);
        let params = format!("d={d}, star over |W|={}", universe.len());
        KzWatermark { scheme, graph, params, family, baseline, universe }
    }

    /// The underlying blind KZ scheme.
    pub fn scheme(&self) -> &KzScheme {
        &self.scheme
    }
}

impl WatermarkScheme for KzWatermark {
    fn name(&self) -> &str {
        "kz"
    }

    fn params(&self) -> String {
        self.params.clone()
    }

    fn capacity_hint(&self) -> usize {
        self.scheme.capacity()
    }

    fn family(&self) -> &AnswerFamily {
        &self.family
    }

    fn baseline(&self) -> &Weights {
        &self.baseline
    }

    fn mark(&self, message: &[bool]) -> MarkedCarrier {
        let marked_graph = self.scheme.mark(&self.graph, message);
        let mut weights = self.baseline.clone();
        for (&e, _) in self.scheme.mark_edges().iter().zip(message) {
            let delta = marked_graph.edges()[e].2 - self.graph.edges()[e].2;
            weights.add(&self.universe[e], delta);
        }
        MarkedCarrier::clean(weights, message.to_vec())
    }

    fn detect(&self, suspect: &MarkedCarrier) -> SchemeVerdict {
        let dropped = suspect.dropped_set();
        // Rebuild the star's edge weights from the served carrier;
        // censored tuples keep the pre-mark weight (no evidence) and
        // are excluded from the sample below.
        let mut edge_weights: Vec<i64> =
            self.graph.edges().iter().map(|&(_, _, w)| w).collect();
        for (e, key) in self.universe.iter().enumerate() {
            if !dropped.contains(key) {
                edge_weights[e] += suspect.weights.get(key) - self.baseline.get(key);
            }
        }
        let bits = self.scheme.detect(&self.graph.with_weights(&edge_weights));
        let full = suspect.message.len().min(bits.len());
        let mut compared = 0usize;
        let mut matches = 0usize;
        for (j, &bit) in bits.iter().enumerate().take(full) {
            let key = &self.universe[self.scheme.mark_edges()[j]];
            if dropped.contains(key) {
                continue;
            }
            compared += 1;
            if bit == suspect.message[j] {
                matches += 1;
            }
        }
        verdict_from_counts(matches, compared, full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agrawal_kiernan::AkConfig;
    use qpwm_core::adversary::Attack;

    fn family(n: u32) -> AnswerFamily {
        let sets: Vec<Vec<WeightKey>> = (0..n / 4)
            .map(|s| (4 * s..4 * s + 4).map(|e| vec![e]).collect())
            .collect();
        let params = (0..sets.len()).map(|i| vec![1000 + i as u32]).collect();
        AnswerFamily::from_nested(params, &sets)
    }

    fn baseline(n: u32) -> Weights {
        let mut w = Weights::new(1);
        for e in 0..n {
            w.set(&[e], 100 + i64::from(e) * 3);
        }
        w
    }

    #[test]
    fn ak_adapter_roundtrips_and_rejects_unmarked() {
        let fam = family(120);
        let scheme = AkWatermark::new(
            AkScheme::new(AkConfig::default()),
            "default".into(),
            fam,
            baseline(120),
        );
        assert!(scheme.capacity_hint() >= 20, "capacity {}", scheme.capacity_hint());
        let carrier = scheme.mark(&vec![false; scheme.capacity_hint()]);
        assert!(scheme.detect(&carrier).survived());
        let unmarked = MarkedCarrier::clean(baseline(120), carrier.message.clone());
        assert!(!scheme.detect(&unmarked).survived());
    }

    #[test]
    fn kz_adapter_is_blind_and_survives_subsetting() {
        let fam = family(96);
        let scheme = KzWatermark::new(fam.clone(), baseline(96), 2, 7);
        assert!(scheme.capacity_hint() >= 90, "capacity {}", scheme.capacity_hint());
        let message: Vec<bool> = (0..scheme.capacity_hint()).map(|i| i % 2 == 0).collect();
        let mut carrier = scheme.mark(&message);
        assert!(scheme.detect(&carrier).survived());
        Attack::SubsetSelection { drop_fraction: 0.4 }.apply_carrier(&mut carrier, &fam, 99);
        let verdict = scheme.detect(&carrier);
        assert!(verdict.compared < scheme.capacity_hint());
        assert_eq!(verdict.bit_errors, 0, "surviving edges decode exactly");
    }
}
