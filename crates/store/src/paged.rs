//! Paged, read-only access to a store file.
//!
//! A [`ReadView`] answers family queries — parameter tuples, labels,
//! active sets, weights — straight through its own buffer pool, page by
//! page, without ever decoding the full content image. Peak memory is
//! O(pool frames + one answer), so a 10^8-tuple store serves and verifies
//! on a small-RAM box. [`PagedServer`] adapts a view to the detector's
//! [`AnswerServer`] trait, making the full
//! `ObservedWeights::collect → PairMarking::extract` pipeline run out of
//! core.
//!
//! ## Consistency against a live writer
//!
//! A view opened standalone ([`ReadView::open`]) reads a quiescent file.
//! A view attached to an open [`Store`] ([`ReadView::attach`]) shares its
//! [`LockTable`]: every page read holds the page's shared lock (so a
//! checkpoint's exclusive page writes never interleave with it), and
//! every multi-page logical operation validates the checkpoint epoch —
//! if a checkpoint completed mid-scan, the cached frames may mix old and
//! new pages, so the pool is dropped and the operation retried. Each
//! retrieved answer therefore reflects exactly one committed state.
//!
//! Labels and element names live in the immutable blob section, so the
//! view indexes them once at open (a sparse checkpoint every
//! [`LABEL_STRIDE`] entries, read directly from the file) and afterwards
//! resolves any label with a short forward walk through the pool.

use crate::locks::LockTable;
use crate::page::{self, PAGE_HDR, PAGE_PAYLOAD, PAGE_SIZE};
use crate::pool::{BufferPool, PoolStats};
use crate::store::{read_meta_direct, resolve_pool_frames, wal_name, Meta, WEIGHTS_PER_PAGE};
use crate::vfs::{Result, StoreError, Vfs, VfsFile};
use crate::Store;
use qpwm_core::detect::AnswerServer;
use qpwm_structures::{Element, Weights};
use std::cell::RefCell;
use std::sync::Arc;

/// One label-offset checkpoint covers this many entries.
const LABEL_STRIDE: usize = 1024;

/// Sparse offsets into a run of length-prefixed strings: byte offset
/// (within the blob) of every `LABEL_STRIDE`-th entry.
#[derive(Debug, Clone, Default)]
struct StringIndex {
    checkpoints: Vec<u64>,
    count: usize,
}

/// A read-only, paged view of a store file.
pub struct ReadView {
    file: Box<dyn VfsFile>,
    pool: BufferPool,
    meta: Meta,
    locks: Option<Arc<LockTable>>,
    /// Epoch the pooled frames were read under (only with `locks`).
    cached_epoch: u64,
    labels: StringIndex,
    names: StringIndex,
    query_name: String,
}

impl ReadView {
    /// Opens a view on a quiescent store file. Fails if the store has a
    /// non-empty WAL — unapplied committed transactions mean the page
    /// file alone is stale; run recovery first by opening the store
    /// read-write ([`Store::open`]).
    pub fn open(vfs: &dyn Vfs, name: &str, pool_frames: Option<usize>) -> Result<ReadView> {
        if vfs.exists(&wal_name(name)) {
            let wal = vfs.open(&wal_name(name), false)?;
            if wal.size()? > 0 {
                return Err(StoreError::Invalid(format!(
                    "{name}: WAL holds unapplied records; open the store read-write to \
                     recover before serving read-only"
                )));
            }
        }
        let file = vfs.open(name, false)?;
        ReadView::build(file, pool_frames, None)
    }

    /// Opens a view sharing `store`'s lock table, so it can scan safely
    /// while the store commits (and checkpoints) from another thread.
    /// The store must have no buffered (group-pending) commits — those
    /// live only in its WAL and pool, invisible to the file.
    pub fn attach(
        store: &Store,
        vfs: &dyn Vfs,
        name: &str,
        pool_frames: Option<usize>,
    ) -> Result<ReadView> {
        if store.buffered_txns() > 0 {
            return Err(StoreError::Invalid(
                "store has buffered commits; group_commit before attaching a view".into(),
            ));
        }
        let file = vfs.open(name, false)?;
        ReadView::build(file, pool_frames, Some(store.lock_table()))
    }

    fn build(
        file: Box<dyn VfsFile>,
        pool_frames: Option<usize>,
        locks: Option<Arc<LockTable>>,
    ) -> Result<ReadView> {
        let meta = read_meta_direct(file.as_ref())?;
        let frames = resolve_pool_frames(pool_frames, meta.total_pages() as u64)?;
        let cached_epoch = locks.as_ref().map_or(0, |l| l.read_epoch());
        let mut view = ReadView {
            file,
            pool: BufferPool::new(frames),
            meta,
            locks,
            cached_epoch,
            labels: StringIndex::default(),
            names: StringIndex::default(),
            query_name: String::new(),
        };
        view.index_blob()?;
        Ok(view)
    }

    /// Number of parameters.
    pub fn n_params(&self) -> usize {
        self.meta.n_params as usize
    }

    /// Number of interned tuples.
    pub fn n_tuples(&self) -> usize {
        self.meta.n_tuples as usize
    }

    /// Output (tuple) arity.
    pub fn output_arity(&self) -> usize {
        self.meta.tuple_arity as usize
    }

    /// Parameter arity.
    pub fn param_arity(&self) -> usize {
        self.meta.param_arity as usize
    }

    /// Size of the active universe.
    pub fn universe_len(&self) -> usize {
        self.meta.n_universe as usize
    }

    /// Name of the registered query.
    pub fn query_name(&self) -> &str {
        &self.query_name
    }

    /// True when the store carries per-element display names.
    pub fn has_element_names(&self) -> bool {
        self.names.count > 0
    }

    /// Pool hit/miss/eviction counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Frames currently resident / configured capacity.
    pub fn pool_usage(&self) -> (usize, usize) {
        (self.pool.resident(), self.pool.capacity())
    }

    /// Frames currently pinned (0 whenever no read is in flight).
    pub fn pool_pinned(&self) -> usize {
        self.pool.pinned()
    }

    // -- logical reads ------------------------------------------------------

    /// The i-th parameter tuple.
    pub fn param_tuple(&mut self, i: usize) -> Result<Vec<Element>> {
        self.check_param(i)?;
        let pa = self.meta.param_arity as usize;
        self.consistent(|v| {
            let off = v.flat_bytes() + (i * pa * 4) as u64;
            let mut buf = vec![0u8; pa * 4];
            v.read_payload(1, off, &mut buf)?;
            Ok(le_u32s(&buf))
        })
    }

    /// The i-th parameter's display label.
    pub fn label(&mut self, i: usize) -> Result<String> {
        self.check_param(i)?;
        let start = self.labels.checkpoints[i / LABEL_STRIDE];
        self.consistent(|v| v.walk_strings(start, i % LABEL_STRIDE))
    }

    /// The display name of element `e`, if the store carries names.
    pub fn element_name(&mut self, e: Element) -> Result<Option<String>> {
        if (e as usize) >= self.names.count {
            return Ok(None);
        }
        let start = self.names.checkpoints[e as usize / LABEL_STRIDE];
        self.consistent(|v| v.walk_strings(start, e as usize % LABEL_STRIDE))
            .map(Some)
    }

    /// The sorted active-id set of parameter `i`.
    pub fn active_ids(&mut self, i: usize) -> Result<Vec<u32>> {
        self.check_param(i)?;
        self.consistent(|v| v.active_ids_inner(i))
    }

    /// The content of tuple `id`.
    pub fn tuple(&mut self, id: u32) -> Result<Vec<Element>> {
        self.check_tuple(id)?;
        let arity = self.meta.tuple_arity as usize;
        self.consistent(|v| {
            let mut buf = vec![0u8; arity * 4];
            v.read_payload(1, id as u64 * arity as u64 * 4, &mut buf)?;
            Ok(le_u32s(&buf))
        })
    }

    /// The `(base, delta)` weight entry of tuple `id`.
    pub fn weight_entry(&mut self, id: u32) -> Result<(i64, i64)> {
        self.check_tuple(id)?;
        self.consistent(|v| v.weight_entry_inner(id))
    }

    /// The published (marked) weight of tuple `id`: `base + delta`.
    pub fn marked_weight(&mut self, id: u32) -> Result<i64> {
        self.weight_entry(id).map(|(b, d)| b + d)
    }

    /// Parameter `i`'s full answer: `(tuple content, marked weight)` per
    /// active id — the paged equivalent of `AnswerServer::answer`.
    pub fn answer_pairs(&mut self, i: usize) -> Result<Vec<(Vec<Element>, i64)>> {
        self.check_param(i)?;
        let arity = self.meta.tuple_arity as usize;
        self.consistent(|v| {
            let ids = v.active_ids_inner(i)?;
            let mut out = Vec::with_capacity(ids.len());
            for id in ids {
                let mut buf = vec![0u8; arity * 4];
                v.read_payload(1, id as u64 * arity as u64 * 4, &mut buf)?;
                let (b, d) = v.weight_entry_inner(id)?;
                out.push((le_u32s(&buf), b + d));
            }
            Ok(out)
        })
    }

    /// The aggregate `f(ā)` of parameter `i`: sum of marked weights over
    /// its active set, computed through the pool.
    pub fn aggregate(&mut self, i: usize) -> Result<i64> {
        self.check_param(i)?;
        self.consistent(|v| {
            let ids = v.active_ids_inner(i)?;
            let mut sum = 0i64;
            for id in ids {
                let (b, d) = v.weight_entry_inner(id)?;
                sum += b + d;
            }
            Ok(sum)
        })
    }

    /// Materializes the owner's base weights (O(n) memory — the CLI-scale
    /// verify path; out-of-core detection supplies bases procedurally).
    pub fn base_weights(&mut self) -> Result<Weights> {
        let arity = self.meta.tuple_arity as usize;
        let n = self.meta.n_tuples;
        let mut w = Weights::new(arity);
        for id in 0..n {
            let t = self.tuple(id)?;
            let (b, _) = self.weight_entry(id)?;
            w.set(&t, b);
        }
        Ok(w)
    }

    // -- internals ----------------------------------------------------------

    fn check_param(&self, i: usize) -> Result<()> {
        if i >= self.meta.n_params as usize {
            return Err(StoreError::Invalid(format!(
                "parameter {i} out of range ({} params)",
                self.meta.n_params
            )));
        }
        Ok(())
    }

    fn check_tuple(&self, id: u32) -> Result<()> {
        if id >= self.meta.n_tuples {
            return Err(StoreError::Invalid(format!(
                "tuple {id} out of range ({} tuples)",
                self.meta.n_tuples
            )));
        }
        Ok(())
    }

    fn flat_bytes(&self) -> u64 {
        self.meta.n_tuples as u64 * self.meta.tuple_arity as u64 * 4
    }

    /// Runs one logical read under seqlock validation: if a checkpoint
    /// completed while it ran, cached frames may span two committed
    /// states — drop them, refresh the meta snapshot, and retry.
    fn consistent<T>(&mut self, op: impl Fn(&mut Self) -> Result<T>) -> Result<T> {
        let Some(locks) = self.locks.clone() else { return op(self) };
        loop {
            let epoch = locks.read_epoch();
            if epoch != self.cached_epoch {
                self.pool.clear();
                self.cached_epoch = epoch;
                self.meta = read_meta_direct(self.file.as_ref())?;
            }
            let out = op(self)?;
            if locks.epoch_unchanged(epoch) {
                return Ok(out);
            }
        }
    }

    /// Copies `out.len()` bytes starting at logical payload byte
    /// `byte_off` of the section beginning at `first_page`, each touched
    /// page read through the pool under its shared lock.
    fn read_payload(&mut self, first_page: u32, byte_off: u64, out: &mut [u8]) -> Result<()> {
        let mut copied = 0usize;
        while copied < out.len() {
            let logical = byte_off as usize + copied;
            let page_no = first_page + (logical / PAGE_PAYLOAD) as u32;
            let off = logical % PAGE_PAYLOAD;
            let take = (PAGE_PAYLOAD - off).min(out.len() - copied);
            let kind = self.meta.kind_of(page_no);
            let _s = self.locks.as_ref().map(|l| l.lock_shared(page_no));
            let bytes = self.pool.page(self.file.as_mut(), page_no, Some(kind))?;
            out[copied..copied + take]
                .copy_from_slice(&bytes[PAGE_HDR + off..PAGE_HDR + off + take]);
            copied += take;
        }
        Ok(())
    }

    fn active_ids_inner(&mut self, i: usize) -> Result<Vec<u32>> {
        let first = self.meta.answer_first();
        let mut two = [0u8; 8];
        self.read_payload(first, i as u64 * 4, &mut two)?;
        let lo = u32::from_le_bytes(two[0..4].try_into().expect("4")) as usize;
        let hi = u32::from_le_bytes(two[4..8].try_into().expect("4")) as usize;
        if lo > hi || hi > self.meta.n_ids as usize {
            return Err(StoreError::Corrupt(format!("CSR offsets {lo}..{hi} out of shape")));
        }
        let ids_base = (self.meta.n_params as u64 + 1) * 4;
        let mut buf = vec![0u8; (hi - lo) * 4];
        self.read_payload(first, ids_base + lo as u64 * 4, &mut buf)?;
        Ok(le_u32s(&buf))
    }

    fn weight_entry_inner(&mut self, id: u32) -> Result<(i64, i64)> {
        let page_no = self.meta.weight_first() + id / WEIGHTS_PER_PAGE as u32;
        let off = PAGE_HDR + (id as usize % WEIGHTS_PER_PAGE) * 16;
        let kind = self.meta.kind_of(page_no);
        let _s = self.locks.as_ref().map(|l| l.lock_shared(page_no));
        let bytes = self.pool.page(self.file.as_mut(), page_no, Some(kind))?;
        let base = i64::from_le_bytes(bytes[off..off + 8].try_into().expect("8"));
        let delta = i64::from_le_bytes(bytes[off + 8..off + 16].try_into().expect("8"));
        Ok((base, delta))
    }

    /// Skips `skip` length-prefixed strings starting at blob byte
    /// `start`, then reads and returns the next one.
    fn walk_strings(&mut self, start: u64, skip: usize) -> Result<String> {
        let mut off = start;
        for _ in 0..skip {
            off += 4 + self.string_len_at(off)? as u64;
        }
        let len = self.string_len_at(off)?;
        let mut raw = vec![0u8; len];
        self.read_payload(1, off + 4, &mut raw)?;
        String::from_utf8(raw).map_err(|_| StoreError::Corrupt("non-UTF-8 string".into()))
    }

    fn string_len_at(&mut self, off: u64) -> Result<usize> {
        let mut four = [0u8; 4];
        self.read_payload(1, off, &mut four)?;
        let len = u32::from_le_bytes(four) as usize;
        if len > 1 << 24 {
            return Err(StoreError::Corrupt(format!("implausible string length {len}")));
        }
        Ok(len)
    }

    /// One sequential pass over the blob's string region (immutable after
    /// create, so read directly from the file — no pool pollution):
    /// records sparse label/name offsets and the query name.
    fn index_blob(&mut self) -> Result<()> {
        let mut cursor = BlobCursor::new(
            self.file.as_ref(),
            self.meta,
            self.flat_bytes() + self.meta.n_params as u64 * self.meta.param_arity as u64 * 4,
        );
        let n_params = self.meta.n_params as usize;
        for i in 0..n_params {
            if i % LABEL_STRIDE == 0 {
                self.labels.checkpoints.push(cursor.off);
            }
            cursor.skip_string()?;
        }
        self.labels.count = n_params;
        let n_names = cursor.u32()? as usize;
        if n_names > 1 << 28 {
            return Err(StoreError::Corrupt(format!("implausible name count {n_names}")));
        }
        for e in 0..n_names {
            if e % LABEL_STRIDE == 0 {
                self.names.checkpoints.push(cursor.off);
            }
            cursor.skip_string()?;
        }
        self.names.count = n_names;
        self.query_name = cursor.string()?;
        Ok(())
    }
}

/// Sequential reader over the blob section, straight from the file.
struct BlobCursor<'a> {
    file: &'a dyn VfsFile,
    meta: Meta,
    off: u64,
    /// Currently buffered page (page_no, payload).
    page: Option<(u32, Vec<u8>)>,
}

impl<'a> BlobCursor<'a> {
    fn new(file: &'a dyn VfsFile, meta: Meta, off: u64) -> Self {
        BlobCursor { file, meta, off, page: None }
    }

    fn read(&mut self, out: &mut [u8]) -> Result<()> {
        let mut copied = 0usize;
        while copied < out.len() {
            let page_no = 1 + (self.off as usize / PAGE_PAYLOAD) as u32;
            if page_no > self.meta.blob_pages {
                return Err(StoreError::Corrupt("blob overrun".into()));
            }
            if self.page.as_ref().is_none_or(|(p, _)| *p != page_no) {
                let mut bytes = vec![0u8; PAGE_SIZE];
                self.file.read_at(&mut bytes, page_no as u64 * PAGE_SIZE as u64)?;
                page::verify(&bytes, page_no, Some(crate::page::kind::BLOB))?;
                self.page = Some((page_no, bytes));
            }
            let (_, bytes) = self.page.as_ref().expect("just set");
            let in_page = self.off as usize % PAGE_PAYLOAD;
            let take = (PAGE_PAYLOAD - in_page).min(out.len() - copied);
            out[copied..copied + take]
                .copy_from_slice(&bytes[PAGE_HDR + in_page..PAGE_HDR + in_page + take]);
            self.off += take as u64;
            copied += take;
        }
        Ok(())
    }

    fn u32(&mut self) -> Result<u32> {
        let mut four = [0u8; 4];
        self.read(&mut four)?;
        Ok(u32::from_le_bytes(four))
    }

    fn skip_string(&mut self) -> Result<()> {
        let len = self.u32()?;
        if len > 1 << 24 {
            return Err(StoreError::Corrupt(format!("implausible string length {len}")));
        }
        self.off += len as u64;
        Ok(())
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        if len > 1 << 24 {
            return Err(StoreError::Corrupt(format!("implausible string length {len}")));
        }
        let mut raw = vec![0u8; len];
        self.read(&mut raw)?;
        String::from_utf8(raw).map_err(|_| StoreError::Corrupt("non-UTF-8 string".into()))
    }
}

fn le_u32s(raw: &[u8]) -> Vec<u32> {
    raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4"))).collect()
}

/// [`AnswerServer`] over a [`ReadView`]: the detector's standard
/// `collect → extract` pipeline, with every answer read through the
/// buffer pool. I/O errors panic — detection runs after recovery, so a
/// failing read here means the file vanished mid-scan.
pub struct PagedServer {
    view: RefCell<ReadView>,
}

impl PagedServer {
    /// Wraps a view.
    pub fn new(view: ReadView) -> Self {
        PagedServer { view: RefCell::new(view) }
    }

    /// Unwraps the view (e.g. to read pool counters after a scan).
    pub fn into_inner(self) -> ReadView {
        self.view.into_inner()
    }
}

impl AnswerServer for PagedServer {
    fn num_parameters(&self) -> usize {
        self.view.borrow().n_params()
    }

    fn answer(&self, i: usize) -> Vec<(Vec<Element>, i64)> {
        self.view.borrow_mut().answer_pairs(i).expect("paged answer read")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Store, StoreContent, StoreOptions};
    use crate::vfs::SimVfs;
    use qpwm_core::detect::{HonestServer, ObservedWeights, Verdict, DEFAULT_DELTA};
    use qpwm_core::pairing::{Pair, PairMarking};

    /// `n_pairs` pair-marked unary tuples: parameter `[i]` activates
    /// `{2i, 2i+1}`; base weight `100 + e`, delta `+1` even / `-1` odd
    /// (the bit-1 marking of pair `([2i], [2i+1])`).
    fn content(n_pairs: usize) -> StoreContent {
        let n = 2 * n_pairs;
        let ids: Vec<u32> = (0..n as u32).collect();
        StoreContent {
            tuple_arity: 1,
            param_arity: 1,
            flat: ids.clone(),
            parameters: (0..n_pairs as u32).collect(),
            offsets: (0..=n_pairs as u32).map(|i| 2 * i).collect(),
            ids: ids.clone(),
            universe: ids,
            base: (0..n).map(|e| 100 + e as i64).collect(),
            delta: (0..n).map(|e| if e % 2 == 0 { 1 } else { -1 }).collect(),
            param_labels: (0..n_pairs).map(|i| format!("p{i}")).collect(),
            element_names: (0..n).map(|e| format!("n{e}")).collect(),
            query_name: "q".into(),
        }
    }

    fn tiny_pool() -> Option<usize> {
        Some(crate::store::MIN_POOL_FRAMES)
    }

    #[test]
    fn paged_reads_match_the_content() {
        let vfs = SimVfs::new();
        let c = content(600); // blob, weight and answer sections all span pages
        drop(Store::create(&vfs, "db", &c).expect("create"));
        let mut v = ReadView::open(&vfs, "db", tiny_pool()).expect("view");
        assert_eq!(v.n_params(), 600);
        assert_eq!(v.n_tuples(), 1200);
        assert_eq!(v.query_name(), "q");
        assert!(v.has_element_names());
        for i in [0usize, 7, 599] {
            assert_eq!(v.param_tuple(i).expect("param"), vec![i as u32]);
            assert_eq!(v.label(i).expect("label"), format!("p{i}"));
            assert_eq!(
                v.active_ids(i).expect("ids"),
                vec![2 * i as u32, 2 * i as u32 + 1]
            );
            let want: Vec<(Vec<u32>, i64)> = vec![
                (vec![2 * i as u32], 100 + 2 * i as i64 + 1),
                (vec![2 * i as u32 + 1], 100 + 2 * i as i64 + 1 - 1),
            ];
            assert_eq!(v.answer_pairs(i).expect("answer"), want);
            assert_eq!(v.aggregate(i).expect("agg"), want[0].1 + want[1].1);
        }
        assert_eq!(v.tuple(5).expect("tuple"), vec![5]);
        assert_eq!(v.weight_entry(5).expect("weight"), (105, -1));
        assert_eq!(v.element_name(3).expect("name"), Some("n3".into()));
        assert_eq!(v.element_name(99999).expect("none"), None);
        // a 4-frame pool over a ~20-page store must be evicting
        let s = v.pool_stats();
        assert!(s.misses > 0 && s.evictions > 0, "stats: {s:?}");
        let (resident, cap) = v.pool_usage();
        assert!(resident <= cap + 1, "paged reads must respect the tiny pool");
    }

    /// Satellite (c): a full detection pass through a 4-frame pool
    /// returns evidence byte-identical to the in-RAM path.
    #[test]
    fn paged_detection_is_byte_identical_to_in_ram() {
        let n_pairs = 300;
        let c = content(n_pairs);
        let vfs = SimVfs::new();
        drop(Store::create(&vfs, "db", &c).expect("create"));

        // in-RAM path: decode the store, serve from the family
        let mut store = Store::open(&vfs, "db").expect("open");
        let full = store.content().expect("content");
        let family = full.family().expect("family");
        let marked = full.marked_weights();
        let base = full.base_weights();
        drop(store);
        let in_ram = HonestServer::new(family, marked);

        // paged path: a 4-frame pool over the same file
        let paged =
            PagedServer::new(ReadView::open(&vfs, "db", tiny_pool()).expect("view"));

        let marking = PairMarking::new(
            (0..n_pairs as u32).map(|i| Pair { plus: vec![2 * i], minus: vec![2 * i + 1] }).collect(),
        );
        let expected = vec![true; n_pairs];

        let report_ram =
            marking.extract(&base, &ObservedWeights::collect(&in_ram));
        let report_paged =
            marking.extract(&base, &ObservedWeights::collect(&paged));
        assert_eq!(report_ram, report_paged, "detection reports must be identical");
        let check_ram = report_ram.claim_check(&expected, DEFAULT_DELTA);
        let check_paged = report_paged.claim_check(&expected, DEFAULT_DELTA);
        assert_eq!(check_ram, check_paged, "claim evidence must be identical");
        assert_eq!(check_ram.verdict, Verdict::MarkPresent);

        // and the pool really was the bottleneck resource
        let view = paged.into_inner();
        assert!(view.pool_stats().evictions > 0, "4 frames must evict on this store");
    }

    #[test]
    fn read_view_refuses_a_store_with_unapplied_wal() {
        let vfs = SimVfs::new();
        let c = content(8);
        let mut store = Store::create(&vfs, "db", &c).expect("create");
        let mut txn = store.begin();
        txn.set_delta(0, -1).expect("delta");
        txn.commit_no_checkpoint().expect("commit");
        drop(store);
        let err = ReadView::open(&vfs, "db", tiny_pool());
        assert!(err.is_err(), "unapplied WAL must refuse a read-only view");
        // recovery clears the WAL; the view then opens and sees the commit
        drop(Store::open(&vfs, "db").expect("recover"));
        let mut v = ReadView::open(&vfs, "db", tiny_pool()).expect("view");
        assert_eq!(v.weight_entry(0).expect("w"), (100, -1));
    }

    /// Reader threads scan while the writer re-marks and checkpoints:
    /// every answer must reflect exactly one committed state — all
    /// deltas flipped or none, never a half-checkpointed mix.
    #[test]
    fn attached_view_never_observes_a_torn_checkpoint() {
        let n_pairs = 400; // weight section spans several pages
        let vfs = SimVfs::new();
        let mut store =
            Store::create_with(&vfs, "db", &content(n_pairs), &StoreOptions::default())
                .expect("create");
        let view = ReadView::attach(&store, &vfs, "db", tiny_pool()).expect("attach");

        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let stop = std::sync::Arc::clone(&stop);
            let mut view = view;
            std::thread::spawn(move || {
                let mut scans = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    // one logical read spanning many weight pages
                    let mut seen = std::collections::HashSet::new();
                    for i in (0..n_pairs).step_by(37) {
                        let a = view.answer_pairs(i).expect("scan");
                        // bases inside a pair differ by 1, deltas by ±2,
                        // so a committed state shows a gap of exactly
                        // +1 (sign +1) or −3 (sign −1) — anything else
                        // is a torn mix of two checkpoints
                        let gap = a[0].1 - a[1].1;
                        assert!(
                            gap == 1 || gap == -3,
                            "gap {gap} is not a committed state"
                        );
                        seen.insert(gap < 0);
                    }
                    scans += 1;
                }
                scans
            })
        };

        for round in 0..40 {
            let mut txn = store.begin();
            let sign = if round % 2 == 0 { -1 } else { 1 };
            for e in 0..(2 * n_pairs as u32) {
                let d = if e % 2 == 0 { sign } else { -sign };
                txn.set_delta(e, d).expect("delta");
            }
            txn.commit().expect("commit");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let scans = reader.join().expect("reader");
        assert!(scans > 0, "reader must have scanned at least once");
    }
}
