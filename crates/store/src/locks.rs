//! Page-granular lock table and checkpoint epoch.
//!
//! The store is single-writer (transactions take `&mut Store`), so the
//! only concurrency hazard is between the writer's **checkpoint** — the
//! moment dirty frames are written back to the page file — and read-only
//! [`crate::ReadView`]s scanning that same file from other threads. Two
//! mechanisms close it:
//!
//! * a **page-granular shared/exclusive lock table**: the checkpoint
//!   takes an exclusive lock around each page write, readers take a
//!   shared lock around each page read, so no reader ever observes a
//!   half-written (torn) page;
//! * a **checkpoint epoch** (a seqlock): the writer bumps the epoch to
//!   an odd value before the first page of a checkpoint and to the next
//!   even value after the last, and a reader wraps any *multi-page*
//!   logical read in [`LockTable::read_epoch`] / validation. If the
//!   epoch moved, the scan may have mixed pre- and post-checkpoint
//!   pages and is retried — giving detection scans a consistent LSN
//!   without reader-side page versioning.
//!
//! Locks are striped: page numbers hash into a fixed set of stripes,
//! each a `Mutex<state> + Condvar`. False sharing between pages in one
//! stripe costs only a little extra blocking, never correctness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

const STRIPES: usize = 64;

#[derive(Default)]
struct StripeState {
    /// Shared holders per locked page in this stripe, keyed by page.
    readers: std::collections::HashMap<u32, u32>,
    /// Pages exclusively held in this stripe.
    writers: std::collections::HashSet<u32>,
}

struct Stripe {
    state: Mutex<StripeState>,
    cv: Condvar,
}

/// Page-granular shared/exclusive lock table shared between one writing
/// [`crate::Store`] and any number of [`crate::ReadView`]s.
pub struct LockTable {
    stripes: Vec<Stripe>,
    /// Checkpoint epoch: odd while a checkpoint is writing pages back.
    epoch: AtomicU64,
}

impl Default for LockTable {
    fn default() -> Self {
        Self::new()
    }
}

impl LockTable {
    /// An empty lock table (all pages unlocked, epoch 0).
    pub fn new() -> Self {
        LockTable {
            stripes: (0..STRIPES)
                .map(|_| Stripe { state: Mutex::new(StripeState::default()), cv: Condvar::new() })
                .collect(),
            epoch: AtomicU64::new(0),
        }
    }

    fn stripe(&self, page_no: u32) -> &Stripe {
        &self.stripes[page_no as usize % STRIPES]
    }

    /// Takes a shared lock on `page_no`, blocking while a writer holds it.
    pub fn lock_shared(&self, page_no: u32) -> SharedGuard<'_> {
        let stripe = self.stripe(page_no);
        let mut st = stripe.state.lock().expect("lock table poisoned");
        while st.writers.contains(&page_no) {
            st = stripe.cv.wait(st).expect("lock table poisoned");
        }
        *st.readers.entry(page_no).or_insert(0) += 1;
        SharedGuard { table: self, page_no }
    }

    /// Takes an exclusive lock on `page_no`, blocking while any reader or
    /// writer holds it.
    pub fn lock_exclusive(&self, page_no: u32) -> ExclusiveGuard<'_> {
        let stripe = self.stripe(page_no);
        let mut st = stripe.state.lock().expect("lock table poisoned");
        while st.writers.contains(&page_no) || st.readers.contains_key(&page_no) {
            st = stripe.cv.wait(st).expect("lock table poisoned");
        }
        st.writers.insert(page_no);
        ExclusiveGuard { table: self, page_no }
    }

    /// Current epoch, for seqlock validation. Spins past odd (checkpoint
    /// in progress) values so a validated scan always starts at rest.
    pub fn read_epoch(&self) -> u64 {
        loop {
            let e = self.epoch.load(Ordering::Acquire);
            if e.is_multiple_of(2) {
                return e;
            }
            std::thread::yield_now();
        }
    }

    /// True when the epoch is unchanged since `epoch` — the scan between
    /// the two observations saw no checkpoint and is consistent.
    pub fn epoch_unchanged(&self, epoch: u64) -> bool {
        self.epoch.load(Ordering::Acquire) == epoch
    }

    /// Writer side: marks a checkpoint as in progress (epoch becomes odd).
    pub fn begin_checkpoint(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Writer side: marks the checkpoint complete (epoch becomes even).
    pub fn end_checkpoint(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }
}

/// RAII shared lock on one page.
pub struct SharedGuard<'a> {
    table: &'a LockTable,
    page_no: u32,
}

impl Drop for SharedGuard<'_> {
    fn drop(&mut self) {
        let stripe = self.table.stripe(self.page_no);
        let mut st = stripe.state.lock().expect("lock table poisoned");
        match st.readers.get_mut(&self.page_no) {
            Some(n) if *n > 1 => *n -= 1,
            _ => {
                st.readers.remove(&self.page_no);
                stripe.cv.notify_all();
            }
        }
    }
}

/// RAII exclusive lock on one page.
pub struct ExclusiveGuard<'a> {
    table: &'a LockTable,
    page_no: u32,
}

impl Drop for ExclusiveGuard<'_> {
    fn drop(&mut self) {
        let stripe = self.table.stripe(self.page_no);
        let mut st = stripe.state.lock().expect("lock table poisoned");
        st.writers.remove(&self.page_no);
        stripe.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shared_locks_coexist_exclusive_excludes() {
        let table = LockTable::new();
        let a = table.lock_shared(7);
        let b = table.lock_shared(7);
        drop(a);
        drop(b);
        let x = table.lock_exclusive(7);
        // a different page is independent
        let _other = table.lock_shared(8);
        drop(x);
        let _again = table.lock_shared(7);
    }

    #[test]
    fn epoch_flags_concurrent_checkpoints() {
        let table = LockTable::new();
        let e = table.read_epoch();
        assert!(table.epoch_unchanged(e));
        table.begin_checkpoint();
        table.end_checkpoint();
        assert!(!table.epoch_unchanged(e));
        assert_eq!(table.read_epoch(), e + 2);
    }

    #[test]
    fn exclusive_blocks_until_readers_release() {
        let table = Arc::new(LockTable::new());
        let held = table.lock_shared(3);
        let t2 = Arc::clone(&table);
        let h = std::thread::spawn(move || {
            let _x = t2.lock_exclusive(3);
        });
        // give the writer a moment to start blocking, then release
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(held);
        h.join().expect("writer acquired after release");
    }
}
