//! Redo-only write-ahead log.
//!
//! Record format (all little-endian):
//!
//! ```text
//! [body_len u32 | body_crc u32 | body...]
//! body = [txn u64 | kind u8 | payload]
//! ```
//!
//! Kinds: page image (`payload = page_no u32 + PAGE_SIZE bytes`, the
//! full after-image of the page as sealed by the transaction) and commit
//! (empty payload). The per-record CRC is the torn-tail detector: a
//! crash mid-append leaves a final record whose length or checksum does
//! not parse; [`scan`] stops there and reports the tail as torn, and
//! every record *before* the tear is trusted. Uncommitted transactions
//! are simply never replayed — their page images sit in the log without
//! a commit record and are discarded.
//!
//! The log is truncated to empty after every checkpoint. Transaction ids
//! are globally monotonic (persisted in the meta page), which closes the
//! lost-truncate seam: if a crash loses the truncate, the stale records
//! still parse, but their txn ids are below the durable meta's
//! `next_txn` watermark and recovery skips them.

use crate::page::{crc32, PAGE_SIZE};
use crate::vfs::{Result, VfsFile};

const KIND_PAGE_IMAGE: u8 = 1;
const KIND_COMMIT: u8 = 2;

/// One parsed WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Full after-image of a page.
    PageImage {
        /// Transaction that sealed the image.
        txn: u64,
        /// Destination page number.
        page_no: u32,
        /// The sealed [`PAGE_SIZE`] bytes.
        bytes: Vec<u8>,
    },
    /// Transaction `txn` committed: everything it logged is durable in
    /// the WAL and must be replayed on recovery.
    Commit {
        /// The committing transaction.
        txn: u64,
    },
}

impl WalRecord {
    /// The transaction a record belongs to.
    pub fn txn(&self) -> u64 {
        match self {
            WalRecord::PageImage { txn, .. } | WalRecord::Commit { txn } => *txn,
        }
    }
}

/// Result of scanning a log from byte 0.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Records up to (not including) the first unparsable byte.
    pub records: Vec<WalRecord>,
    /// True when trailing bytes existed but did not parse — a torn
    /// append, truncated and ignored.
    pub torn_tail: bool,
}

/// Cumulative WAL activity counters — the
/// `qpwm_store_wal_{records,fsyncs,group_commits}` observability series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (page images + commits) this session.
    pub records: u64,
    /// `sync` calls issued this session.
    pub fsyncs: u64,
    /// Group commits: single fsyncs that made a whole batch of buffered
    /// transactions durable (counted by the store's group-commit path).
    pub group_commits: u64,
}

/// An open write-ahead log.
///
/// Appends accumulate in a process-local buffer and reach the file in
/// one sequential write at the next [`Wal::sync`] — so a group commit
/// of N buffered transactions costs one write and one fsync, and even
/// a plain commit folds its page images and commit record into a
/// single write. Durability semantics are unchanged: nothing is
/// promised until `sync` returns, and a crash before it loses the
/// buffered suffix (recovery then restores the committed prefix).
pub struct Wal {
    file: Box<dyn VfsFile>,
    /// Append offset (end of the last full record *written to the file*
    /// this session; buffered bytes sit past it).
    end: u64,
    /// Records appended but not yet written to the file.
    pending: Vec<u8>,
    stats: WalStats,
}

impl Wal {
    /// Wraps an open log file, appending after any existing bytes.
    pub fn new(file: Box<dyn VfsFile>) -> Result<Self> {
        let end = file.size()?;
        Ok(Wal { file, end, pending: Vec::new(), stats: WalStats::default() })
    }

    /// Activity counters since this handle was opened.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Records that one fsync committed a whole buffered batch.
    pub fn note_group_commit(&mut self) {
        self.stats.group_commits += 1;
    }

    fn append(&mut self, body: &[u8]) -> Result<()> {
        self.pending.reserve(8 + body.len());
        self.pending.extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.pending.extend_from_slice(&crc32(body).to_le_bytes());
        self.pending.extend_from_slice(body);
        self.stats.records += 1;
        Ok(())
    }

    /// Writes every buffered record to the file in one append. Called by
    /// [`Wal::sync`]; exposed separately so callers can push bytes to the
    /// OS without paying for durability yet.
    pub fn flush(&mut self) -> Result<()> {
        if !self.pending.is_empty() {
            self.file.write_at(&self.pending, self.end)?;
            self.end += self.pending.len() as u64;
            self.pending.clear();
        }
        Ok(())
    }

    /// Appends a page after-image for `txn`.
    pub fn append_page_image(&mut self, txn: u64, page_no: u32, page: &[u8]) -> Result<()> {
        debug_assert_eq!(page.len(), PAGE_SIZE);
        let mut body = Vec::with_capacity(9 + 4 + PAGE_SIZE);
        body.extend_from_slice(&txn.to_le_bytes());
        body.push(KIND_PAGE_IMAGE);
        body.extend_from_slice(&page_no.to_le_bytes());
        body.extend_from_slice(page);
        self.append(&body)
    }

    /// Appends the commit record for `txn`.
    pub fn append_commit(&mut self, txn: u64) -> Result<()> {
        let mut body = Vec::with_capacity(9);
        body.extend_from_slice(&txn.to_le_bytes());
        body.push(KIND_COMMIT);
        self.append(&body)
    }

    /// Forces every appended record to durable storage. A transaction is
    /// committed exactly when its commit record is durable here.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        self.stats.fsyncs += 1;
        self.file.sync()
    }

    /// Empties the log (after a checkpoint made its effects durable in
    /// the page file) and syncs the truncation. Buffered records are
    /// dropped too — the checkpoint already folded their effects into
    /// the page file.
    pub fn reset(&mut self) -> Result<()> {
        self.pending.clear();
        self.file.truncate(0)?;
        self.file.sync()?;
        self.end = 0;
        Ok(())
    }

    /// Bytes currently in the log (buffered records included).
    pub fn len(&self) -> u64 {
        self.end + self.pending.len() as u64
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scans the log from byte 0 (see [`scan`]). Flushes buffered
    /// records first so the scan sees every append.
    pub fn scan(&mut self) -> Result<WalScan> {
        self.flush()?;
        scan(self.file.as_ref())
    }
}

/// Parses a log from byte 0, stopping at the first record that does not
/// parse (short header, short body, bad CRC, unknown kind, bad payload
/// shape). Anything before the stop point is trusted — the CRC chain
/// means a corrupted *middle* record also stops the scan, and recovery
/// then replays only the prefix, which is safe because commit records
/// after the tear are unreachable and their transactions count as
/// uncommitted.
pub fn scan(file: &dyn VfsFile) -> Result<WalScan> {
    let len = file.size()?;
    let mut bytes = vec![0u8; len as usize];
    if len > 0 {
        file.read_at(&mut bytes, 0)?;
    }
    let mut out = WalScan::default();
    let mut off = 0usize;
    while off < bytes.len() {
        let Some(rec) = parse_record(&bytes[off..]) else {
            out.torn_tail = true;
            break;
        };
        let (record, used) = rec;
        out.records.push(record);
        off += used;
    }
    Ok(out)
}

/// Parses one record at the head of `bytes`; `None` on any malformation.
fn parse_record(bytes: &[u8]) -> Option<(WalRecord, usize)> {
    if bytes.len() < 8 {
        return None;
    }
    let body_len = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    let stored_crc = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if body_len < 9 || bytes.len() < 8 + body_len {
        return None;
    }
    let body = &bytes[8..8 + body_len];
    if crc32(body) != stored_crc {
        return None;
    }
    let txn = u64::from_le_bytes(body[0..8].try_into().ok()?);
    let record = match body[8] {
        KIND_COMMIT if body_len == 9 => WalRecord::Commit { txn },
        KIND_PAGE_IMAGE if body_len == 9 + 4 + PAGE_SIZE => {
            let page_no = u32::from_le_bytes(body[9..13].try_into().ok()?);
            WalRecord::PageImage { txn, page_no, bytes: body[13..].to_vec() }
        }
        _ => return None,
    };
    Some((record, 8 + body_len))
}

/// Validates that replaying `records` is well-formed and returns the set
/// of committed transaction ids, in first-commit order.
pub fn committed_txns(records: &[WalRecord]) -> Vec<u64> {
    let mut seen = std::collections::HashSet::new();
    let mut order = Vec::new();
    for r in records {
        if let WalRecord::Commit { txn } = r {
            if seen.insert(*txn) {
                order.push(*txn);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page;
    use crate::vfs::{SimVfs, Vfs};

    fn sealed_page(byte: u8, lsn: u64) -> Vec<u8> {
        let mut p = vec![0u8; PAGE_SIZE];
        p[page::PAGE_HDR] = byte;
        page::seal(&mut p, lsn, page::kind::WEIGHT);
        p
    }

    #[test]
    fn roundtrip_and_commit_order() {
        let vfs = SimVfs::new();
        let mut wal = Wal::new(vfs.open("wal", true).expect("open")).expect("wal");
        let p = sealed_page(7, 1);
        wal.append_page_image(1, 3, &p).expect("img");
        wal.append_commit(1).expect("commit");
        wal.append_page_image(2, 4, &p).expect("img");
        // txn 2 never commits
        wal.sync().expect("sync");
        let scan = wal.scan().expect("scan");
        assert!(!scan.torn_tail);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(committed_txns(&scan.records), vec![1]);
        match &scan.records[0] {
            WalRecord::PageImage { txn: 1, page_no: 3, bytes } => assert_eq!(bytes, &p),
            other => panic!("unexpected record {other:?}"),
        }
    }

    #[test]
    fn torn_tail_is_detected_and_prefix_survives() {
        let vfs = SimVfs::new();
        let mut wal = Wal::new(vfs.open("wal", true).expect("open")).expect("wal");
        wal.append_commit(5).expect("commit");
        wal.sync().expect("sync");
        let good_len = wal.len();
        // simulate a torn append: garbage half-record past the good prefix
        let mut f = vfs.open("wal", false).expect("open");
        f.write_at(&[0xAA; 11], good_len).expect("garbage");
        f.sync().expect("sync");
        let scan = scan(f.as_ref()).expect("scan");
        assert!(scan.torn_tail, "garbage tail must be flagged");
        assert_eq!(committed_txns(&scan.records), vec![5]);
    }

    #[test]
    fn corrupted_record_stops_the_scan() {
        let vfs = SimVfs::new();
        let mut wal = Wal::new(vfs.open("wal", true).expect("open")).expect("wal");
        wal.append_commit(1).expect("c1");
        let tamper_at = wal.len() + 9; // inside txn id of the second record
        wal.append_commit(2).expect("c2");
        wal.append_commit(3).expect("c3");
        wal.sync().expect("sync");
        let mut f = vfs.open("wal", false).expect("open");
        f.write_at(&[0xFF], tamper_at).expect("tamper");
        f.sync().expect("sync");
        let scan = scan_file(&vfs);
        assert!(scan.torn_tail);
        // only the prefix before the corruption is trusted — txn 3's
        // commit after the tear is unreachable by design
        assert_eq!(committed_txns(&scan.records), vec![1]);
    }

    fn scan_file(vfs: &SimVfs) -> WalScan {
        scan(vfs.open("wal", false).expect("open").as_ref()).expect("scan")
    }

    #[test]
    fn reset_empties_the_log() {
        let vfs = SimVfs::new();
        let mut wal = Wal::new(vfs.open("wal", true).expect("open")).expect("wal");
        wal.append_commit(9).expect("c");
        wal.sync().expect("sync");
        wal.reset().expect("reset");
        assert!(wal.is_empty());
        assert_eq!(scan_file(&vfs).records.len(), 0);
    }
}
