//! Crash-safe persistent store for marked answer families.
//!
//! `qpwm-store` persists the output of the watermarking pipeline — the
//! interned [`AnswerFamily`](qpwm_structures::AnswerFamily), the owner's
//! base weights, and the ±1 pair-marking deltas — in a single paged file
//! with a redo write-ahead log. The design goal is the robustness half
//! of the paper's story: the detector's differential read (original vs
//! published weights) must survive *any* crash, so after recovery the
//! store is always exactly the last committed state — never a
//! half-re-marked hybrid that would corrupt the binomial-tail
//! significance test.
//!
//! Modules:
//!
//! - [`vfs`] — file abstraction; [`vfs::DiskVfs`] for real files (with
//!   env-driven crash injection for process-level tests) and
//!   [`vfs::SimVfs`], a deterministic in-memory filesystem whose `sync`
//!   is the durability boundary and which can crash — cleanly or with
//!   torn writes — at any seeded operation index.
//! - [`page`] — 4 KiB checksummed pages.
//! - [`wal`] — redo log with per-record CRCs and torn-tail detection.
//! - [`pool`] — a no-steal clock buffer pool.
//! - [`locks`] — page-granular S/X lock table + checkpoint epoch, the
//!   seam that lets read-only views scan while the writer checkpoints.
//! - [`store`] — layout, recovery, and transactional updates
//!   (weight-only per Theorem 7, type-preserving per Theorem 8).
//! - [`stream`] — out-of-core store creation: spill finished runs to
//!   section files as produced, then splice into a store image without
//!   ever materializing the family in RAM.
//! - [`paged`] — read-only paged access ([`ReadView`]) and the
//!   out-of-core detection adapter ([`PagedServer`]).

pub mod locks;
pub mod page;
pub mod paged;
pub mod pool;
pub mod store;
pub mod stream;
pub mod vfs;
pub mod wal;

pub use locks::LockTable;
pub use paged::{PagedServer, ReadView};
pub use pool::PoolStats;
pub use store::{
    resolve_pool_frames, wal_name, CommitStats, RecoveryStats, Store, StoreContent, StoreOptions,
    StoreStat, Txn, DEFAULT_POOL_FRAMES, MIN_POOL_FRAMES, POOL_FRAMES_ENV,
};
pub use stream::{FamilyStreamSink, StoreStreamer};
pub use wal::WalStats;
pub use vfs::{
    CrashPolicy, DiskVfs, Result, SimVfs, StoreError, Vfs, VfsFile, CRASH_EXIT_CODE,
    CRASH_OP_ENV, CRASH_TORN_ENV,
};
