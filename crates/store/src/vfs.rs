//! Virtual file system with deterministic crash injection.
//!
//! The store never touches `std::fs` directly: every byte goes through a
//! [`Vfs`], so the exact same WAL/page-file code runs against the real
//! disk ([`DiskVfs`]) and against an in-memory simulator ([`SimVfs`])
//! whose [`CrashPolicy`] can kill the process model at *every* write,
//! sync, and truncate point — optionally leaving a torn (partial) write
//! behind, the way a real sector-interrupted crash would.
//!
//! The simulator's durability model is the pessimistic one: a write is
//! **pending** until the file is synced; a crash drops all pending bytes
//! (and may first apply a torn prefix of the crashing write). Reads see
//! pending bytes (read-your-writes), exactly like an OS page cache.
//! [`DiskVfs`] mirrors the same crash points via the
//! `QPWM_STORE_CRASH_OP` environment variable, but crashes by
//! `process::exit` — that is what the tier-1 smoke test kills and
//! recovers from with a real file system underneath.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Store-wide result type.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Errors surfaced by the store stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(String),
    /// On-disk state failed validation (bad magic, checksum, layout).
    Corrupt(String),
    /// Caller misuse (bad arity, out-of-range id, oversized content).
    Invalid(String),
    /// A [`CrashPolicy`] fired: the simulated process died at this op
    /// index. Everything pending and unsynced is lost.
    InjectedCrash(u64),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "io error: {m}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
            StoreError::Invalid(m) => write!(f, "invalid: {m}"),
            StoreError::InjectedCrash(op) => write!(f, "injected crash at op {op}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One open file. All offsets are absolute; reads are exact-length.
pub trait VfsFile: Send {
    /// Reads exactly `buf.len()` bytes at `off` (error on short read).
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()>;
    /// Writes `data` at `off`, extending the file if needed. Durable only
    /// after [`VfsFile::sync`].
    fn write_at(&mut self, data: &[u8], off: u64) -> Result<()>;
    /// Makes every prior write durable.
    fn sync(&mut self) -> Result<()>;
    /// Current file size in bytes (pending writes included).
    fn size(&self) -> Result<u64>;
    /// Truncates to `len` bytes. Durable only after [`VfsFile::sync`].
    fn truncate(&mut self, len: u64) -> Result<()>;
}

/// A namespace of openable files.
pub trait Vfs {
    /// Opens (optionally creating) a file by name.
    fn open(&self, name: &str, create: bool) -> Result<Box<dyn VfsFile>>;
    /// Does the file exist?
    fn exists(&self, name: &str) -> bool;
    /// Deletes a file; removing a missing file is not an error. Used for
    /// spill-file cleanup, so it is not a crash-injection point.
    fn remove(&self, name: &str) -> Result<()>;
}

// ---------------------------------------------------------------------------
// Disk implementation
// ---------------------------------------------------------------------------

/// Environment variable: op index at which [`DiskVfs`] kills the process.
pub const CRASH_OP_ENV: &str = "QPWM_STORE_CRASH_OP";
/// Environment variable: when set to `1`, the crashing write leaves a
/// torn (half-length) prefix behind before the process dies.
pub const CRASH_TORN_ENV: &str = "QPWM_STORE_CRASH_TORN";
/// Exit code of an injected [`DiskVfs`] crash — distinguishable from
/// panics and clean failures in the tier-1 smoke test.
pub const CRASH_EXIT_CODE: i32 = 86;

struct DiskCrash {
    at: u64,
    torn: bool,
    counter: AtomicU64,
}

/// Real files under a root directory, with optional env-driven crash
/// injection shared across every file opened from this instance.
pub struct DiskVfs {
    root: std::path::PathBuf,
    crash: Option<Arc<DiskCrash>>,
}

impl DiskVfs {
    /// A plain disk VFS (no crash injection).
    pub fn new(root: impl Into<std::path::PathBuf>) -> Self {
        DiskVfs { root: root.into(), crash: None }
    }

    /// A disk VFS that honors `QPWM_STORE_CRASH_OP` / `QPWM_STORE_CRASH_TORN`
    /// — the entry point the CLI uses so the tier-1 smoke can kill a live
    /// `store update` at a seeded write point.
    pub fn from_env(root: impl Into<std::path::PathBuf>) -> Self {
        let crash = std::env::var(CRASH_OP_ENV).ok().and_then(|v| v.parse::<u64>().ok()).map(
            |at| {
                let torn = std::env::var(CRASH_TORN_ENV).is_ok_and(|v| v == "1");
                Arc::new(DiskCrash { at, torn, counter: AtomicU64::new(0) })
            },
        );
        DiskVfs { root: root.into(), crash }
    }

    fn path(&self, name: &str) -> std::path::PathBuf {
        self.root.join(name)
    }
}

impl Vfs for DiskVfs {
    fn open(&self, name: &str, create: bool) -> Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(create)
            .open(self.path(name))
            .map_err(|e| StoreError::Io(format!("open {name}: {e}")))?;
        Ok(Box::new(DiskFile { file, crash: self.crash.clone() }))
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    fn remove(&self, name: &str) -> Result<()> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::Io(format!("remove {name}: {e}"))),
        }
    }
}

struct DiskFile {
    file: std::fs::File,
    crash: Option<Arc<DiskCrash>>,
}

impl DiskFile {
    /// Counts one mutating op; on the seeded op, optionally leaves a torn
    /// prefix of `data` behind and kills the process. This is a *real*
    /// crash as far as the store is concerned — no destructors, no
    /// further writes, only what the kernel already has.
    fn crash_point(&mut self, data: Option<(&[u8], u64)>) {
        let Some(crash) = &self.crash else { return };
        let op = crash.counter.fetch_add(1, Ordering::SeqCst);
        if op != crash.at {
            return;
        }
        if crash.torn {
            if let Some((data, off)) = data {
                use std::os::unix::fs::FileExt;
                let half = data.len() / 2;
                let _ = self.file.write_at(&data[..half], off);
            }
        }
        std::process::exit(CRASH_EXIT_CODE);
    }
}

impl VfsFile for DiskFile {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file
            .read_exact_at(buf, off)
            .map_err(|e| StoreError::Io(format!("read {} at {off}: {e}", buf.len())))
    }

    fn write_at(&mut self, data: &[u8], off: u64) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.crash_point(Some((data, off)));
        self.file
            .write_all_at(data, off)
            .map_err(|e| StoreError::Io(format!("write {} at {off}: {e}", data.len())))
    }

    fn sync(&mut self) -> Result<()> {
        self.crash_point(None);
        self.file.sync_data().map_err(|e| StoreError::Io(format!("sync: {e}")))
    }

    fn size(&self) -> Result<u64> {
        self.file
            .metadata()
            .map(|m| m.len())
            .map_err(|e| StoreError::Io(format!("metadata: {e}")))
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        self.crash_point(None);
        self.file.set_len(len).map_err(|e| StoreError::Io(format!("truncate to {len}: {e}")))
    }
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

/// When (and how) the simulated process dies: at global mutating-op index
/// `crash_op`; `torn` additionally makes a crashing *write* leave its
/// half-length prefix durable, and a crashing *sync* flush only the first
/// half of the pending queue — the torn-page / torn-tail cases the WAL's
/// record CRCs exist for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPolicy {
    /// Global index (across all files of the [`SimVfs`]) of the mutating
    /// op — write, sync, or truncate — that dies.
    pub crash_op: u64,
    /// Leave partial effects behind at the crash point.
    pub torn: bool,
}

enum PendingOp {
    Write { off: u64, data: Vec<u8> },
    Truncate { len: u64 },
}

fn apply_op(bytes: &mut Vec<u8>, op: &PendingOp) {
    match op {
        PendingOp::Write { off, data } => {
            let end = *off as usize + data.len();
            if bytes.len() < end {
                bytes.resize(end, 0);
            }
            bytes[*off as usize..end].copy_from_slice(data);
        }
        PendingOp::Truncate { len } => bytes.resize(*len as usize, 0),
    }
}

#[derive(Default)]
struct SimState {
    durable: HashMap<String, Vec<u8>>,
    pending: HashMap<String, Vec<PendingOp>>,
    ops: u64,
    policy: Option<CrashPolicy>,
    crashed: bool,
}

impl SimState {
    /// Counts one mutating op and fires the policy if this is the seeded
    /// one. Returns the op index when the caller should crash.
    fn tick(&mut self) -> std::result::Result<(), u64> {
        let op = self.ops;
        self.ops += 1;
        if self.policy.is_some_and(|p| p.crash_op == op) {
            self.crashed = true;
            return Err(op);
        }
        Ok(())
    }

    fn view(&self, name: &str) -> Vec<u8> {
        let mut bytes = self.durable.get(name).cloned().unwrap_or_default();
        if let Some(ops) = self.pending.get(name) {
            for op in ops {
                apply_op(&mut bytes, op);
            }
        }
        bytes
    }
}

/// In-memory VFS with deterministic crash injection. Clones share state:
/// open files from one instance, crash it, call [`SimVfs::restart`], and
/// reopen — only synced bytes survive, exactly like a process crash.
#[derive(Clone, Default)]
pub struct SimVfs {
    state: Arc<Mutex<SimState>>,
}

impl SimVfs {
    /// Fresh empty simulator.
    pub fn new() -> Self {
        SimVfs::default()
    }

    /// Arms (or disarms, with `None`) the crash policy.
    pub fn set_policy(&self, policy: Option<CrashPolicy>) {
        self.state.lock().expect("sim lock").policy = policy;
    }

    /// Mutating ops counted so far (the sweep range of a crash harness).
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("sim lock").ops
    }

    /// Resets the op counter (so a policy's `crash_op` indexes the ops of
    /// the *next* phase only).
    pub fn reset_ops(&self) {
        self.state.lock().expect("sim lock").ops = 0;
    }

    /// Simulated reboot: drops every pending (unsynced) byte, clears the
    /// crashed flag and the policy. Open handles from before the restart
    /// must be dropped — using them is a harness bug, and they would only
    /// see the post-restart durable state anyway.
    pub fn restart(&self) {
        let mut st = self.state.lock().expect("sim lock");
        st.pending.clear();
        st.crashed = false;
        st.policy = None;
    }

    /// The durable bytes of a file (what a post-crash open would read) —
    /// the byte-identical-recovery tests compare these directly.
    pub fn durable_bytes(&self, name: &str) -> Option<Vec<u8>> {
        self.state.lock().expect("sim lock").durable.get(name).cloned()
    }

    /// Full durable snapshot, for save/restore in sweep harnesses.
    pub fn snapshot(&self) -> Vec<(String, Vec<u8>)> {
        let st = self.state.lock().expect("sim lock");
        let mut files: Vec<(String, Vec<u8>)> =
            st.durable.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        files.sort_by(|a, b| a.0.cmp(&b.0));
        files
    }

    /// Restores a [`SimVfs::snapshot`], discarding everything since.
    pub fn restore(&self, snapshot: &[(String, Vec<u8>)]) {
        let mut st = self.state.lock().expect("sim lock");
        st.durable = snapshot.iter().cloned().collect();
        st.pending.clear();
        st.crashed = false;
        st.policy = None;
        st.ops = 0;
    }
}

impl Vfs for SimVfs {
    fn open(&self, name: &str, create: bool) -> Result<Box<dyn VfsFile>> {
        let mut st = self.state.lock().expect("sim lock");
        if st.crashed {
            return Err(StoreError::Io("simulated process is dead".into()));
        }
        if !st.durable.contains_key(name) && !st.pending.contains_key(name) {
            if !create {
                return Err(StoreError::Io(format!("open {name}: no such file")));
            }
            // File creation is modeled as immediately durable: the store's
            // create-crash safety rests on meta-page validation, not on
            // directory-entry durability.
            st.durable.insert(name.to_string(), Vec::new());
        }
        Ok(Box::new(SimFile { vfs: self.clone(), name: name.to_string() }))
    }

    fn exists(&self, name: &str) -> bool {
        let st = self.state.lock().expect("sim lock");
        st.durable.contains_key(name) || st.pending.contains_key(name)
    }

    fn remove(&self, name: &str) -> Result<()> {
        let mut st = self.state.lock().expect("sim lock");
        if st.crashed {
            return Err(StoreError::Io("simulated process is dead".into()));
        }
        st.durable.remove(name);
        st.pending.remove(name);
        Ok(())
    }
}

struct SimFile {
    vfs: SimVfs,
    name: String,
}

impl SimFile {
    fn with_state<T>(&self, f: impl FnOnce(&mut SimState) -> Result<T>) -> Result<T> {
        let mut st = self.vfs.state.lock().expect("sim lock");
        if st.crashed {
            return Err(StoreError::Io("simulated process is dead".into()));
        }
        f(&mut st)
    }
}

impl VfsFile for SimFile {
    fn read_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
        self.with_state(|st| {
            let bytes = st.view(&self.name);
            let end = off as usize + buf.len();
            if end > bytes.len() {
                return Err(StoreError::Io(format!(
                    "short read of {} at {off} in {} (len {})",
                    buf.len(),
                    self.name,
                    bytes.len()
                )));
            }
            buf.copy_from_slice(&bytes[off as usize..end]);
            Ok(())
        })
    }

    fn write_at(&mut self, data: &[u8], off: u64) -> Result<()> {
        self.with_state(|st| {
            if let Err(op) = st.tick() {
                // A torn crash makes a half-length prefix of the dying
                // write durable — modeling a sector-boundary interruption.
                if st.policy.is_some_and(|p| p.torn) && !data.is_empty() {
                    let half = data.len() / 2;
                    let durable = st.durable.entry(self.name.clone()).or_default();
                    apply_op(
                        durable,
                        &PendingOp::Write { off, data: data[..half].to_vec() },
                    );
                }
                return Err(StoreError::InjectedCrash(op));
            }
            st.pending
                .entry(self.name.clone())
                .or_default()
                .push(PendingOp::Write { off, data: data.to_vec() });
            Ok(())
        })
    }

    fn sync(&mut self) -> Result<()> {
        self.with_state(|st| {
            if let Err(op) = st.tick() {
                // A torn crash during sync flushes only a prefix of the
                // pending queue — the OS got partway through writeback.
                if st.policy.is_some_and(|p| p.torn) {
                    if let Some(ops) = st.pending.remove(&self.name) {
                        let durable = st.durable.entry(self.name.clone()).or_default();
                        for pending in ops.iter().take(ops.len() / 2) {
                            apply_op(durable, pending);
                        }
                    }
                }
                return Err(StoreError::InjectedCrash(op));
            }
            if let Some(ops) = st.pending.remove(&self.name) {
                let durable = st.durable.entry(self.name.clone()).or_default();
                for op in &ops {
                    apply_op(durable, op);
                }
            }
            Ok(())
        })
    }

    fn size(&self) -> Result<u64> {
        self.with_state(|st| Ok(st.view(&self.name).len() as u64))
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        self.with_state(|st| {
            if let Err(op) = st.tick() {
                return Err(StoreError::InjectedCrash(op));
            }
            st.pending
                .entry(self.name.clone())
                .or_default()
                .push(PendingOp::Truncate { len });
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_read_your_writes_but_crash_loses_unsynced() {
        let vfs = SimVfs::new();
        let mut f = vfs.open("a", true).expect("open");
        f.write_at(b"hello", 0).expect("write");
        let mut buf = [0u8; 5];
        f.read_at(&mut buf, 0).expect("read");
        assert_eq!(&buf, b"hello");
        // not yet durable
        assert_eq!(vfs.durable_bytes("a").expect("exists"), b"");
        drop(f);
        vfs.restart();
        let f2 = vfs.open("a", false).expect("reopen");
        assert_eq!(f2.size().expect("size"), 0, "unsynced bytes lost");
    }

    #[test]
    fn sim_sync_makes_writes_durable_in_order() {
        let vfs = SimVfs::new();
        let mut f = vfs.open("a", true).expect("open");
        f.write_at(b"aaaa", 0).expect("write");
        f.write_at(b"bb", 1).expect("overwrite");
        f.sync().expect("sync");
        assert_eq!(vfs.durable_bytes("a").expect("exists"), b"abba");
        f.truncate(2).expect("truncate");
        f.sync().expect("sync");
        assert_eq!(vfs.durable_bytes("a").expect("exists"), b"ab");
    }

    #[test]
    fn crash_policy_fires_at_the_seeded_op_and_poisons_the_handle() {
        let vfs = SimVfs::new();
        vfs.set_policy(Some(CrashPolicy { crash_op: 1, torn: false }));
        let mut f = vfs.open("a", true).expect("open");
        f.write_at(b"one", 0).expect("op 0 survives");
        assert_eq!(f.write_at(b"two", 3), Err(StoreError::InjectedCrash(1)));
        // dead process: every further op fails
        assert!(matches!(f.sync(), Err(StoreError::Io(_))));
        vfs.restart();
        let f2 = vfs.open("a", false).expect("reopen");
        assert_eq!(f2.size().expect("size"), 0, "nothing was synced");
    }

    #[test]
    fn torn_write_leaves_half_prefix_durable() {
        let vfs = SimVfs::new();
        vfs.set_policy(Some(CrashPolicy { crash_op: 0, torn: true }));
        let mut f = vfs.open("a", true).expect("open");
        assert_eq!(f.write_at(b"abcdef", 0), Err(StoreError::InjectedCrash(0)));
        vfs.restart();
        assert_eq!(vfs.durable_bytes("a").expect("exists"), b"abc");
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let vfs = SimVfs::new();
        let mut f = vfs.open("a", true).expect("open");
        f.write_at(b"xy", 0).expect("write");
        f.sync().expect("sync");
        let snap = vfs.snapshot();
        f.write_at(b"zz", 0).expect("write");
        f.sync().expect("sync");
        assert_eq!(vfs.durable_bytes("a").expect("exists"), b"zz");
        drop(f);
        vfs.restore(&snap);
        assert_eq!(vfs.durable_bytes("a").expect("exists"), b"xy");
        assert_eq!(vfs.ops(), 0, "restore resets the op counter");
    }
}
