//! Out-of-core store creation.
//!
//! [`Store::create`](crate::Store::create) materializes the whole
//! [`StoreContent`](crate::StoreContent) — flat tuple buffer, CSR arrays,
//! weight vectors — before writing a single page, so marking a 10^8-tuple
//! family needs O(family) RAM. [`StoreStreamer`] removes that wall: the
//! producer pushes tuples and parameters **in canonical order** as it
//! generates them, each push appends to a per-section spill file through
//! a small write buffer, and [`StoreStreamer::finish`] splices the spills
//! into a sealed page image. Peak memory is O(write buffers + an
//! active-id bitmap of `n/8` bytes), independent of family size.
//!
//! The emitted file is **byte-identical** to what `Store::create` writes
//! for the same content (a property test pins this): same section
//! layout, same page seals (LSN 1, the create transaction), same meta
//! (`next_txn = 2`). The meta page is written last, after a data sync —
//! a crash mid-finish leaves a file whose meta never validates, so it
//! can never open as a half-built store. The WAL is created empty, and
//! the spill files are removed on success.
//!
//! Canonical-order contract (checked, not trusted): tuples arrive in
//! strictly increasing lexicographic order (so tuple ids are canonical
//! by construction), each parameter's active ids arrive strictly
//! ascending, and every id must refer to a pushed tuple by finish time.
//! Element display names are not supported in streaming mode — the
//! name table would itself be O(universe).

use crate::page::{self, kind, PAGE_PAYLOAD, PAGE_SIZE};
use crate::store::{
    pages_for, pages_for_weights, push_str, wal_name, Meta, WEIGHTS_PER_PAGE,
};
use crate::vfs::{Result, StoreError, Vfs, VfsFile};

/// Spill write-buffer size. Big enough to amortize VFS calls, small
/// enough that six of them stay invisible next to the id bitmap.
const BUF: usize = 256 * 1024;

/// What [`StoreStreamer::finish`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Tuples interned (canonical ids `0..n_tuples`).
    pub n_tuples: usize,
    /// Parameters in the family.
    pub n_params: usize,
    /// Total active-set entries (CSR ids length).
    pub n_ids: u64,
    /// Distinct active tuples (universe size).
    pub n_universe: usize,
    /// Pages in the finished store file.
    pub pages: u32,
}

/// An append-only spill file with a write buffer and sequential
/// read-back for the splice pass.
struct Spill {
    file: Box<dyn VfsFile>,
    name: String,
    buf: Vec<u8>,
    len: u64,
}

impl Spill {
    fn create(vfs: &dyn Vfs, name: String) -> Result<Spill> {
        let mut file = vfs.open(&name, true)?;
        file.truncate(0)?;
        Ok(Spill { file, name, buf: Vec::with_capacity(BUF), len: 0 })
    }

    fn write(&mut self, bytes: &[u8]) -> Result<()> {
        self.buf.extend_from_slice(bytes);
        if self.buf.len() >= BUF {
            self.flush()?;
        }
        Ok(())
    }

    fn write_u32(&mut self, x: u32) -> Result<()> {
        self.write(&x.to_le_bytes())
    }

    fn flush(&mut self) -> Result<()> {
        if !self.buf.is_empty() {
            self.file.write_at(&self.buf, self.len)?;
            self.len += self.buf.len() as u64;
            self.buf.clear();
        }
        Ok(())
    }

    /// Streams the spilled bytes (after a flush) into `sink` in
    /// [`BUF`]-sized chunks.
    fn drain_into(&mut self, sink: &mut dyn FnMut(&[u8]) -> Result<()>) -> Result<()> {
        self.flush()?;
        let mut off = 0u64;
        let mut chunk = vec![0u8; BUF];
        while off < self.len {
            let take = ((self.len - off) as usize).min(BUF);
            self.file.read_at(&mut chunk[..take], off)?;
            sink(&chunk[..take])?;
            off += take as u64;
        }
        Ok(())
    }
}

/// Streams a marked family into a store file without holding it in RAM.
///
/// ```text
/// let mut s = StoreStreamer::new(&vfs, "db", 1, 1, "q")?;
/// for id in 0..n {                       // canonical (sorted) order
///     s.push_tuple(&[id], base(id), delta(id))?;
/// }
/// for p in 0..n_params {
///     s.push_param(&[p], &label(p), &active_ids(p))?;
/// }
/// let stats = s.finish()?;               // splice, seal, sync
/// ```
pub struct StoreStreamer {
    name: String,
    tuple_arity: usize,
    param_arity: usize,
    query_name: String,
    flat: Spill,
    weights: Spill,
    params: Spill,
    labels: Spill,
    ids: Spill,
    offsets: Spill,
    n_tuples: u64,
    n_params: u64,
    n_ids: u64,
    /// Last pushed tuple, for the canonical-order check.
    last_tuple: Vec<u32>,
    /// Bit per tuple id: appears in some active set.
    active: Vec<u64>,
    /// Highest id referenced by any active set, for the bounds check.
    max_id: Option<u32>,
}

impl StoreStreamer {
    /// Opens spill files next to the (future) store file `name`.
    pub fn new(
        vfs: &dyn Vfs,
        name: &str,
        tuple_arity: usize,
        param_arity: usize,
        query_name: &str,
    ) -> Result<StoreStreamer> {
        if tuple_arity == 0 {
            return Err(StoreError::Invalid("output arity must be >= 1".into()));
        }
        if param_arity == 0 {
            return Err(StoreError::Invalid("parameter arity must be >= 1".into()));
        }
        let spill = |section: &str| Spill::create(vfs, format!("{name}.spill.{section}"));
        let mut offsets = spill("offsets")?;
        offsets.write_u32(0)?; // CSR offsets always start at 0
        Ok(StoreStreamer {
            name: name.to_string(),
            tuple_arity,
            param_arity,
            query_name: query_name.to_string(),
            flat: spill("flat")?,
            weights: spill("weights")?,
            params: spill("params")?,
            labels: spill("labels")?,
            ids: spill("ids")?,
            offsets,
            n_tuples: 0,
            n_params: 0,
            n_ids: 0,
            last_tuple: Vec::new(),
            active: Vec::new(),
            max_id: None,
        })
    }

    /// Appends the next tuple in canonical order; its id is the push
    /// index. `base` is the owner's true weight, `delta` the mark
    /// distortion (published weight = `base + delta`).
    pub fn push_tuple(&mut self, tuple: &[u32], base: i64, delta: i64) -> Result<u32> {
        if tuple.len() != self.tuple_arity {
            return Err(StoreError::Invalid(format!(
                "tuple arity {} != {}",
                tuple.len(),
                self.tuple_arity
            )));
        }
        if self.n_tuples > 0 && tuple <= self.last_tuple.as_slice() {
            return Err(StoreError::Invalid(format!(
                "tuples must arrive in strictly increasing canonical order \
                 (tuple {} breaks it)",
                self.n_tuples
            )));
        }
        if self.n_tuples >= u32::MAX as u64 {
            return Err(StoreError::Invalid("too many tuples".into()));
        }
        for &e in tuple {
            self.flat.write_u32(e)?;
        }
        self.weights.write(&base.to_le_bytes())?;
        self.weights.write(&delta.to_le_bytes())?;
        self.last_tuple.clear();
        self.last_tuple.extend_from_slice(tuple);
        let id = self.n_tuples as u32;
        self.n_tuples += 1;
        Ok(id)
    }

    /// Appends the next parameter: its tuple, display label, and sorted
    /// active-id set.
    pub fn push_param(&mut self, param: &[u32], label: &str, active: &[u32]) -> Result<()> {
        if param.len() != self.param_arity {
            return Err(StoreError::Invalid(format!(
                "parameter arity {} != {}",
                param.len(),
                self.param_arity
            )));
        }
        if !active.windows(2).all(|w| w[0] < w[1]) {
            return Err(StoreError::Invalid(format!(
                "active ids of parameter {} must be strictly ascending",
                self.n_params
            )));
        }
        for &e in param {
            self.params.write_u32(e)?;
        }
        let mut rec = Vec::with_capacity(4 + label.len());
        push_str(&mut rec, label);
        self.labels.write(&rec)?;
        for &id in active {
            self.ids.write_u32(id)?;
            let (word, bit) = (id as usize / 64, id as usize % 64);
            if word >= self.active.len() {
                self.active.resize(word + 1, 0);
            }
            self.active[word] |= 1 << bit;
            self.max_id = Some(self.max_id.map_or(id, |m| m.max(id)));
        }
        self.n_ids += active.len() as u64;
        self.n_params += 1;
        if self.n_ids > u32::MAX as u64 || self.n_params > u32::MAX as u64 {
            return Err(StoreError::Invalid("family too large for the V1 layout".into()));
        }
        self.offsets.write_u32(self.n_ids as u32)?;
        Ok(())
    }

    /// Splices the spills into a sealed store image, creates the (empty)
    /// WAL, removes the spills, and returns the final shape. The result
    /// opens with [`Store::open`](crate::Store::open) or
    /// [`ReadView::open`](crate::ReadView::open) and is byte-identical to
    /// the `Store::create` image of the same content.
    pub fn finish(mut self, vfs: &dyn Vfs) -> Result<StreamStats> {
        if self.n_tuples == 0 {
            return Err(StoreError::Invalid("at least one tuple required".into()));
        }
        if self.n_params == 0 {
            return Err(StoreError::Invalid("at least one parameter required".into()));
        }
        if let Some(max) = self.max_id {
            if max as u64 >= self.n_tuples {
                return Err(StoreError::Invalid(format!(
                    "active id {max} out of range ({} tuples)",
                    self.n_tuples
                )));
            }
        }
        let n_universe: u64 = self.active.iter().map(|w| w.count_ones() as u64).sum();
        let blob_len = self.flat.len
            + self.flat.buf.len() as u64
            + self.params.len
            + self.params.buf.len() as u64
            + self.labels.len
            + self.labels.buf.len() as u64
            + 4 // element-name count (always 0 in streaming mode)
            + 4
            + self.query_name.len() as u64;
        let answer_len =
            4 * (self.n_params + 1 + self.n_ids + n_universe);
        let meta = Meta {
            tuple_arity: self.tuple_arity as u32,
            param_arity: self.param_arity as u32,
            n_tuples: self.n_tuples as u32,
            n_params: self.n_params as u32,
            n_ids: self.n_ids as u32,
            n_universe: n_universe as u32,
            blob_len,
            blob_pages: pages_for(blob_len as usize)?,
            weight_pages: pages_for_weights(self.n_tuples as usize)?,
            answer_pages: pages_for(answer_len as usize)?,
            // finish() plays the role of the create transaction (txn 1):
            // every page is sealed with LSN 1 and the durable watermark
            // advances past it, exactly like Store::create's commit.
            next_txn: 2,
        };

        let mut file = vfs.open(&self.name, true)?;
        file.truncate(0)?;

        // Blob section: flat ++ parameters ++ labels ++ name-count ++ query.
        let mut pager = Pager::new(file.as_mut(), 1, kind::BLOB);
        self.flat.drain_into(&mut |b| pager.write(b))?;
        self.params.drain_into(&mut |b| pager.write(b))?;
        self.labels.drain_into(&mut |b| pager.write(b))?;
        let mut tail = Vec::with_capacity(8 + self.query_name.len());
        tail.extend_from_slice(&0u32.to_le_bytes());
        push_str(&mut tail, &self.query_name);
        pager.write(&tail)?;
        pager.finish_region(1 + meta.blob_pages)?;

        // Weight section: 255 (base, delta) entries per page.
        pager.set_kind(kind::WEIGHT);
        self.weights.drain_into(&mut |b| pager.write_weights(b))?;
        pager.finish_weight_region(meta.weight_first() + meta.weight_pages)?;

        // Answer section: offsets ++ ids ++ universe.
        pager.set_kind(kind::ANSWER);
        self.offsets.drain_into(&mut |b| pager.write(b))?;
        self.ids.drain_into(&mut |b| pager.write(b))?;
        for (w, &word) in self.active.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros();
                pager.write(&((w as u32 * 64 + b).to_le_bytes()))?;
                bits &= bits - 1;
            }
        }
        pager.finish_region(meta.total_pages())?;
        drop(pager);

        // Data durable before the meta that makes the file valid.
        file.sync()?;
        let mut meta_page = vec![0u8; PAGE_SIZE];
        meta.encode(&mut meta_page[page::PAGE_HDR..]);
        page::seal(&mut meta_page, 1, kind::META);
        file.write_at(&meta_page, 0)?;
        file.sync()?;

        // A fresh (empty) WAL completes the store pair.
        let mut wal = vfs.open(&wal_name(&self.name), true)?;
        wal.truncate(0)?;
        wal.sync()?;

        for spill in [&self.flat, &self.weights, &self.params, &self.labels, &self.ids, &self.offsets]
        {
            vfs.remove(&spill.name)?;
        }
        Ok(StreamStats {
            n_tuples: self.n_tuples as usize,
            n_params: self.n_params as usize,
            n_ids: self.n_ids,
            n_universe: n_universe as usize,
            pages: meta.total_pages(),
        })
    }
}

/// Adapts a [`StoreStreamer`] to the engine's
/// [`FamilySink`](qpwm_structures::FamilySink), so
/// [`stream_family`](qpwm_structures::stream_family) can materialize an
/// [`AnswerSource`](qpwm_structures::AnswerSource) straight into a store
/// file. Weights and labels are supplied by closures — the family shape
/// flows from the source, the marking flows from the caller (typically
/// the pair-marking delta map evaluated per tuple).
pub struct FamilyStreamSink<'a, W, L> {
    streamer: &'a mut StoreStreamer,
    weight_of: W,
    label_of: L,
    n_params: usize,
}

impl<'a, W, L> FamilyStreamSink<'a, W, L>
where
    W: FnMut(&[u32]) -> (i64, i64),
    L: FnMut(&[u32], usize) -> String,
{
    /// Wraps `streamer`; `weight_of(tuple)` yields `(base, delta)`,
    /// `label_of(param, index)` the display label.
    pub fn new(streamer: &'a mut StoreStreamer, weight_of: W, label_of: L) -> Self {
        FamilyStreamSink { streamer, weight_of, label_of, n_params: 0 }
    }
}

impl<W, L> qpwm_structures::FamilySink for FamilyStreamSink<'_, W, L>
where
    W: FnMut(&[u32]) -> (i64, i64),
    L: FnMut(&[u32], usize) -> String,
{
    fn push_tuple(&mut self, tuple: &[u32]) -> std::result::Result<(), String> {
        let (base, delta) = (self.weight_of)(tuple);
        self.streamer.push_tuple(tuple, base, delta).map(|_| ()).map_err(|e| e.to_string())
    }

    fn push_param(&mut self, param: &[u32], active: &[u32]) -> std::result::Result<(), String> {
        let label = (self.label_of)(param, self.n_params);
        self.n_params += 1;
        self.streamer.push_param(param, &label, active).map_err(|e| e.to_string())
    }
}

/// Paginates a byte stream into consecutive sealed pages of one kind.
struct Pager<'a> {
    file: &'a mut dyn VfsFile,
    next_page: u32,
    kind: u8,
    payload: Vec<u8>,
}

impl<'a> Pager<'a> {
    fn new(file: &'a mut dyn VfsFile, first_page: u32, kind: u8) -> Self {
        Pager { file, next_page: first_page, kind, payload: Vec::with_capacity(PAGE_PAYLOAD) }
    }

    fn set_kind(&mut self, kind: u8) {
        debug_assert!(self.payload.is_empty(), "kind change mid-region");
        self.kind = kind;
    }

    fn write(&mut self, mut bytes: &[u8]) -> Result<()> {
        while !bytes.is_empty() {
            let room = PAGE_PAYLOAD - self.payload.len();
            let take = room.min(bytes.len());
            self.payload.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            if self.payload.len() == PAGE_PAYLOAD {
                self.flush_page()?;
            }
        }
        Ok(())
    }

    /// Weight entries are 16 bytes and [`WEIGHTS_PER_PAGE`] of them fill
    /// a page's payload exactly, so the plain byte path already aligns;
    /// this alias documents the intent.
    fn write_weights(&mut self, bytes: &[u8]) -> Result<()> {
        debug_assert_eq!(PAGE_PAYLOAD, WEIGHTS_PER_PAGE * 16);
        self.write(bytes)
    }

    fn flush_page(&mut self) -> Result<()> {
        let mut page = vec![0u8; PAGE_SIZE];
        page[page::PAGE_HDR..page::PAGE_HDR + self.payload.len()].copy_from_slice(&self.payload);
        page::seal(&mut page, 1, self.kind);
        self.file.write_at(&page, self.next_page as u64 * PAGE_SIZE as u64)?;
        self.next_page += 1;
        self.payload.clear();
        Ok(())
    }

    /// Flushes the partial tail page (zero-padded) and checks the region
    /// ended exactly at `end_page` — a mismatch means the section byte
    /// count and the meta disagree, which would corrupt every later
    /// region's addressing.
    fn finish_region(&mut self, end_page: u32) -> Result<()> {
        if !self.payload.is_empty() || self.next_page < end_page {
            self.flush_page()?;
        }
        // pages_for() floors every region at one page; emit the empty one.
        while self.next_page < end_page {
            self.flush_page()?;
        }
        if self.next_page != end_page {
            return Err(StoreError::Invalid(format!(
                "region overran its page budget: at {} expected {}",
                self.next_page, end_page
            )));
        }
        Ok(())
    }

    fn finish_weight_region(&mut self, end_page: u32) -> Result<()> {
        self.finish_region(end_page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Store, StoreContent};
    use crate::vfs::{SimVfs, Vfs};

    /// A small family in canonical order, mirrored as a StoreContent.
    fn content(n_pairs: usize) -> StoreContent {
        let n = 2 * n_pairs;
        let flat: Vec<u32> = (0..n as u32).collect();
        let parameters: Vec<u32> = (0..n_pairs as u32).collect();
        let offsets: Vec<u32> = (0..=n_pairs as u32).map(|i| 2 * i).collect();
        let ids: Vec<u32> = (0..n as u32).collect();
        StoreContent {
            tuple_arity: 1,
            param_arity: 1,
            flat,
            parameters,
            offsets,
            ids: ids.clone(),
            universe: ids,
            base: (0..n).map(|e| 100 + e as i64).collect(),
            delta: (0..n).map(|e| if e % 2 == 0 { 1 } else { -1 }).collect(),
            param_labels: (0..n_pairs).map(|i| format!("p{i}")).collect(),
            element_names: Vec::new(),
            query_name: "q".into(),
        }
    }

    fn stream_same(vfs: &SimVfs, name: &str, c: &StoreContent) -> StreamStats {
        let mut s = StoreStreamer::new(vfs, name, 1, 1, &c.query_name).expect("new");
        for (i, &e) in c.flat.iter().enumerate() {
            s.push_tuple(&[e], c.base[i], c.delta[i]).expect("tuple");
        }
        for p in 0..c.parameters.len() {
            let lo = c.offsets[p] as usize;
            let hi = c.offsets[p + 1] as usize;
            s.push_param(&[c.parameters[p]], &c.param_labels[p], &c.ids[lo..hi])
                .expect("param");
        }
        s.finish(vfs).expect("finish")
    }

    #[test]
    fn streamed_image_is_byte_identical_to_create() {
        let vfs = SimVfs::new();
        let c = content(700); // several pages in every section
        drop(Store::create(&vfs, "bulk", &c).expect("create"));
        let stats = stream_same(&vfs, "streamed", &c);
        assert_eq!(stats.n_tuples, 1400);
        assert_eq!(stats.n_universe, 1400);
        let read = |name: &str| {
            let f = vfs.open(name, false).expect("open");
            let mut all = vec![0u8; f.size().expect("size") as usize];
            f.read_at(&mut all, 0).expect("read");
            all
        };
        assert_eq!(read("bulk"), read("streamed"), "page images must match exactly");
        // spills are gone
        assert!(!vfs.exists("streamed.spill.flat"));
        assert!(!vfs.exists("streamed.spill.offsets"));
    }

    #[test]
    fn streamed_store_opens_and_round_trips() {
        let vfs = SimVfs::new();
        let c = content(40);
        stream_same(&vfs, "db", &c);
        let mut store = Store::open(&vfs, "db").expect("open");
        let got = store.content().expect("content");
        assert_eq!(got, c);
    }

    #[test]
    fn stream_family_through_the_sink_matches_the_in_ram_path() {
        use qpwm_structures::{stream_family, AnswerFamily, AnswerSource, Weights};

        /// parameter [i] activates {2i, 2i+1} — canonical generation order.
        struct PairSource;
        impl AnswerSource for PairSource {
            fn output_arity(&self) -> usize {
                1
            }
            fn for_each_answer(&self, param: &[u32], visit: &mut dyn FnMut(&[u32])) {
                visit(&[2 * param[0] + 1]); // out of order on purpose
                visit(&[2 * param[0]]);
            }
        }

        let n_pairs = 500u32;
        let domain: Vec<Vec<u32>> = (0..n_pairs).map(|i| vec![i]).collect();
        let weight_of = |t: &[u32]| {
            let e = t[0] as i64;
            (100 + e, if e % 2 == 0 { 1 } else { -1 })
        };

        // in-RAM: family + StoreContent + Store::create
        let family = AnswerFamily::from_source(&PairSource, domain.clone());
        let mut base = Weights::new(1);
        let mut marked = Weights::new(1);
        for &id in family.active_universe() {
            let t = family.tuple(id).to_vec();
            let (b, d) = weight_of(&t);
            base.set(&t, b);
            marked.set(&t, b + d);
        }
        let labels = (0..n_pairs).map(|i| format!("p{i}")).collect();
        let content = StoreContent::from_family(
            &family, &base, &marked, labels, Vec::new(), "q".into(),
        )
        .expect("content");
        let vfs = SimVfs::new();
        drop(Store::create(&vfs, "ram", &content).expect("create"));

        // out-of-core: the same source streamed through the sink
        let mut streamer = StoreStreamer::new(&vfs, "oo", 1, 1, "q").expect("streamer");
        let mut sink = FamilyStreamSink::new(
            &mut streamer,
            weight_of,
            |p: &[u32], _| format!("p{}", p[0]),
        );
        let summary =
            stream_family(&PairSource, domain, 8, &mut sink).expect("stream");
        assert_eq!(summary.n_tuples, 2 * n_pairs as usize);
        streamer.finish(&vfs).expect("finish");

        let read = |name: &str| {
            let f = vfs.open(name, false).expect("open");
            let mut all = vec![0u8; f.size().expect("size") as usize];
            f.read_at(&mut all, 0).expect("read");
            all
        };
        assert_eq!(read("ram"), read("oo"), "both paths must write the same image");
    }

    #[test]
    fn out_of_order_tuples_are_rejected() {
        let vfs = SimVfs::new();
        let mut s = StoreStreamer::new(&vfs, "db", 1, 1, "q").expect("new");
        s.push_tuple(&[5], 1, 0).expect("first");
        assert!(s.push_tuple(&[5], 1, 0).is_err(), "duplicate");
        assert!(s.push_tuple(&[4], 1, 0).is_err(), "regression");
    }

    #[test]
    fn unsorted_or_out_of_range_ids_are_rejected() {
        let vfs = SimVfs::new();
        let mut s = StoreStreamer::new(&vfs, "db", 1, 1, "q").expect("new");
        s.push_tuple(&[0], 1, 0).expect("t");
        assert!(s.push_param(&[0], "p", &[1, 0]).is_err(), "unsorted ids");
        let mut s = StoreStreamer::new(&vfs, "db2", 1, 1, "q").expect("new");
        s.push_tuple(&[0], 1, 0).expect("t");
        s.push_param(&[0], "p", &[7]).expect("push ok, checked at finish");
        assert!(s.finish(&vfs).is_err(), "id 7 exceeds 1 tuple");
    }
}
