//! Fixed-size checksummed pages.
//!
//! Every page is [`PAGE_SIZE`] bytes with a 16-byte header:
//!
//! ```text
//! [crc32 u32 | lsn u64 | kind u8 | pad u8;3]  then PAGE_PAYLOAD bytes
//! ```
//!
//! The CRC covers everything after the checksum field itself, so a torn
//! page write — some sectors new, some old — is detected on load. The
//! LSN is the id of the transaction that last sealed the page; recovery
//! never needs to compare LSNs (replay is whole-page redo), but the field
//! makes on-disk states auditable and keeps replay idempotent by
//! construction: replaying a page image reproduces the sealed bytes
//! exactly.

use crate::vfs::{Result, StoreError};

/// Size of every page, in bytes.
pub const PAGE_SIZE: usize = 4096;
/// Bytes reserved for the page header.
pub const PAGE_HDR: usize = 16;
/// Usable payload bytes per page.
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_HDR;

/// Page kinds (header byte 12).
pub mod kind {
    /// Page 0: store metadata.
    pub const META: u8 = 1;
    /// Immutable blob section (arena, parameters, labels).
    pub const BLOB: u8 = 2;
    /// Weight entries (base + mark delta per tuple).
    pub const WEIGHT: u8 = 3;
    /// CSR answer section (offsets, ids, universe).
    pub const ANSWER: u8 = 4;
}

// IEEE CRC-32 (reflected, polynomial 0xEDB88320), slice-by-8 tables
// built at compile time — the workspace is hermetic, so no crc crate.
// Every page seal/verify and every WAL record checksums 4 KiB through
// this, so the byte-at-a-time loop was a measurable slice of commit
// latency; slicing folds 8 input bytes per iteration instead.
const fn crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

/// IEEE CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for w in &mut chunks {
        let lo = u32::from_le_bytes([w[0], w[1], w[2], w[3]]) ^ c;
        let hi = u32::from_le_bytes([w[4], w[5], w[6], w[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Seals a page in place: writes `lsn` and `kind` into the header and
/// stamps the checksum over bytes `4..`.
pub fn seal(page: &mut [u8], lsn: u64, kind: u8) {
    debug_assert_eq!(page.len(), PAGE_SIZE);
    page[4..12].copy_from_slice(&lsn.to_le_bytes());
    page[12] = kind;
    page[13..16].fill(0);
    let crc = crc32(&page[4..]);
    page[0..4].copy_from_slice(&crc.to_le_bytes());
}

/// Verifies a page's checksum and (when `expect_kind` is given) its kind.
pub fn verify(page: &[u8], page_no: u32, expect_kind: Option<u8>) -> Result<()> {
    debug_assert_eq!(page.len(), PAGE_SIZE);
    let stored = u32::from_le_bytes(page[0..4].try_into().expect("4 bytes"));
    let actual = crc32(&page[4..]);
    if stored != actual {
        return Err(StoreError::Corrupt(format!(
            "page {page_no}: checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
        )));
    }
    if let Some(k) = expect_kind {
        if page[12] != k {
            return Err(StoreError::Corrupt(format!(
                "page {page_no}: kind {} where {k} expected",
                page[12]
            )));
        }
    }
    Ok(())
}

/// The LSN a sealed page carries.
pub fn lsn(page: &[u8]) -> u64 {
    u64::from_le_bytes(page[4..12].try_into().expect("8 bytes"))
}

/// The kind byte of a sealed page.
pub fn page_kind(page: &[u8]) -> u8 {
    page[12]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn seal_verify_roundtrip_and_tamper_detection() {
        let mut page = vec![0u8; PAGE_SIZE];
        page[PAGE_HDR] = 0xAB;
        seal(&mut page, 42, kind::WEIGHT);
        verify(&page, 7, Some(kind::WEIGHT)).expect("sealed page verifies");
        assert_eq!(lsn(&page), 42);
        assert_eq!(page_kind(&page), kind::WEIGHT);
        assert!(verify(&page, 7, Some(kind::META)).is_err(), "wrong kind");
        // Torn write: flip one payload byte without resealing.
        page[PAGE_SIZE - 1] ^= 1;
        assert!(matches!(verify(&page, 7, None), Err(StoreError::Corrupt(_))));
    }
}
