//! Buffer pool with a clock replacer.
//!
//! A small cache of page frames between the store and the page file.
//! Policy is **no-steal**: dirty frames are never evicted — a dirty page
//! reaches the file only through the commit protocol (WAL first, then
//! checkpoint), so the on-disk page file never contains effects of an
//! uncommitted transaction. When every frame is dirty the pool grows
//! instead of stealing; a transaction's working set therefore bounds
//! memory, not correctness.
//!
//! Eviction is the classic clock: each frame has a reference bit set on
//! access; the hand sweeps, clearing reference bits, and evicts the
//! first clean frame whose bit is already clear.

use crate::page::{self, PAGE_SIZE};
use crate::vfs::{Result, StoreError, VfsFile};
use std::collections::HashMap;

/// Hit/miss/eviction counters of one pool — the
/// `qpwm_store_pool_{hits,misses,evictions}` observability series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests answered from a resident frame.
    pub hits: u64,
    /// Page requests that had to read (or initialize) a frame.
    pub misses: u64,
    /// Clean frames evicted to make room.
    pub evictions: u64,
}

struct Frame {
    page_no: u32,
    data: Vec<u8>,
    dirty: bool,
    referenced: bool,
    /// The frame's current content has been appended to the WAL by a
    /// buffered (group-pending) commit — it is committed data that must
    /// survive a later transaction's abort.
    logged: bool,
}

/// A resident frame's captured pre-image — `Some((bytes, dirty,
/// logged))` — or `None` when the page was not in the pool.
pub type FrameState = Option<(Vec<u8>, bool, bool)>;

/// The pool. All I/O goes through the `file` handle passed per call —
/// the pool owns frames, not the file.
pub struct BufferPool {
    frames: Vec<Frame>,
    map: HashMap<u32, usize>,
    hand: usize,
    capacity: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool that prefers to stay at `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            frames: Vec::new(),
            map: HashMap::new(),
            hand: 0,
            capacity: capacity.max(1),
            stats: PoolStats::default(),
        }
    }

    /// Number of resident frames.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// The pool's preferred frame count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss/eviction counters since the pool was created.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of pinned (dirty, unevictable) frames — the
    /// `qpwm_store_pool_pinned` gauge.
    pub fn pinned(&self) -> usize {
        self.frames.iter().filter(|f| f.dirty).count()
    }

    /// Pins nothing (single-threaded store), just finds or loads a frame
    /// and returns its slot.
    fn slot(
        &mut self,
        file: &mut dyn VfsFile,
        page_no: u32,
        init: bool,
        expect_kind: Option<u8>,
    ) -> Result<usize> {
        if let Some(&slot) = self.map.get(&page_no) {
            self.frames[slot].referenced = true;
            self.stats.hits += 1;
            return Ok(slot);
        }
        self.stats.misses += 1;
        let mut data = vec![0u8; PAGE_SIZE];
        if !init {
            file.read_at(&mut data, page_no as u64 * PAGE_SIZE as u64)?;
            page::verify(&data, page_no, expect_kind)?;
        }
        let slot = self.free_slot()?;
        if let Some(f) = self.frames.get(slot) {
            self.map.remove(&f.page_no);
            self.stats.evictions += 1;
        }
        let frame = Frame { page_no, data, dirty: init, referenced: true, logged: false };
        if slot == self.frames.len() {
            self.frames.push(frame);
        } else {
            self.frames[slot] = frame;
        }
        self.map.insert(page_no, slot);
        Ok(slot)
    }

    /// Finds a reusable slot: an empty one below capacity, a clean clock
    /// victim, or (all frames dirty) a fresh slot beyond capacity.
    fn free_slot(&mut self) -> Result<usize> {
        if self.frames.len() < self.capacity {
            return Ok(self.frames.len());
        }
        // Two full sweeps: the first clears reference bits, the second is
        // then guaranteed to accept any clean frame.
        for _ in 0..2 * self.frames.len() {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let frame = &mut self.frames[i];
            if frame.dirty {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            return Ok(i);
        }
        // Every frame dirty: grow (no-steal).
        Ok(self.frames.len())
    }

    /// Read access to a page's bytes, loading (and checksum-verifying) it
    /// on miss.
    pub fn page(
        &mut self,
        file: &mut dyn VfsFile,
        page_no: u32,
        expect_kind: Option<u8>,
    ) -> Result<&[u8]> {
        let slot = self.slot(file, page_no, false, expect_kind)?;
        Ok(&self.frames[slot].data)
    }

    /// Write access to a page's bytes; the frame is marked dirty. With
    /// `init` the page is assumed fresh (no disk read, zeroed payload).
    pub fn page_mut(
        &mut self,
        file: &mut dyn VfsFile,
        page_no: u32,
        init: bool,
        expect_kind: Option<u8>,
    ) -> Result<&mut [u8]> {
        let slot = self.slot(file, page_no, init, expect_kind)?;
        self.frames[slot].dirty = true;
        // Re-modifying a page whose content was WAL-logged by a buffered
        // commit starts a fresh (unlogged) modification batch for it.
        self.frames[slot].logged = false;
        Ok(&mut self.frames[slot].data)
    }

    /// Dirty page numbers in ascending order (the deterministic WAL and
    /// checkpoint write order).
    pub fn dirty_pages(&self) -> Vec<u32> {
        let mut v: Vec<u32> =
            self.frames.iter().filter(|f| f.dirty).map(|f| f.page_no).collect();
        v.sort_unstable();
        v
    }

    /// Dirty pages whose current content has not yet been appended to the
    /// WAL (ascending) — the set a buffered commit must log.
    pub fn unlogged_dirty_pages(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .frames
            .iter()
            .filter(|f| f.dirty && !f.logged)
            .map(|f| f.page_no)
            .collect();
        v.sort_unstable();
        v
    }

    /// Marks a resident page's current content as WAL-logged.
    pub fn set_logged(&mut self, page_no: u32) {
        if let Some(&slot) = self.map.get(&page_no) {
            self.frames[slot].logged = true;
        }
    }

    /// Snapshot of a resident frame for transaction pre-image capture:
    /// `Some((bytes, dirty, logged))`, or `None` if the page is not
    /// resident (abort can simply drop the frame — no-steal guarantees
    /// the on-disk copy holds only committed data).
    pub fn frame_state(&self, page_no: u32) -> FrameState {
        self.map
            .get(&page_no)
            .map(|&slot| {
                let f = &self.frames[slot];
                (f.data.clone(), f.dirty, f.logged)
            })
    }

    /// Restores a frame to a captured pre-image (transaction abort with a
    /// group-commit batch pending, where committed-but-uncheckpointed
    /// frames must survive).
    pub fn restore_frame(&mut self, page_no: u32, data: Vec<u8>, dirty: bool, logged: bool) {
        if let Some(&slot) = self.map.get(&page_no) {
            let f = &mut self.frames[slot];
            f.data = data;
            f.dirty = dirty;
            f.logged = logged;
            return;
        }
        let frame = Frame { page_no, data, dirty, referenced: true, logged };
        // Insertion mirrors slot(): reuse a clean victim or grow.
        let slot = match self.free_slot() {
            Ok(s) => s,
            Err(_) => self.frames.len(),
        };
        if let Some(f) = self.frames.get(slot) {
            self.map.remove(&f.page_no);
            self.stats.evictions += 1;
        }
        if slot == self.frames.len() {
            self.frames.push(frame);
        } else {
            self.frames[slot] = frame;
        }
        self.map.insert(page_no, slot);
    }

    /// Forgets a single frame (abort of a page that did not exist before
    /// the transaction, e.g. answer-region growth).
    pub fn drop_frame(&mut self, page_no: u32) {
        if let Some(slot) = self.map.remove(&page_no) {
            // Swap-remove and fix the moved frame's map entry.
            let last = self.frames.len() - 1;
            self.frames.swap(slot, last);
            self.frames.pop();
            if slot < self.frames.len() {
                self.map.insert(self.frames[slot].page_no, slot);
            }
            self.hand = 0;
        }
    }

    /// Borrow a dirty (or clean) resident page's bytes without touching
    /// reference bits — used by the commit protocol after sealing.
    pub fn resident_page(&self, page_no: u32) -> Result<&[u8]> {
        let &slot = self
            .map
            .get(&page_no)
            .ok_or_else(|| StoreError::Invalid(format!("page {page_no} not resident")))?;
        Ok(&self.frames[slot].data)
    }

    /// Seals a resident page in place (LSN + kind + checksum) without
    /// touching its dirty or reference bits — the commit protocol's
    /// pre-WAL step.
    pub fn seal_resident(&mut self, page_no: u32, lsn: u64, kind: u8) -> Result<()> {
        let &slot = self
            .map
            .get(&page_no)
            .ok_or_else(|| StoreError::Invalid(format!("page {page_no} not resident")))?;
        page::seal(&mut self.frames[slot].data, lsn, kind);
        Ok(())
    }

    /// Marks every frame clean (after a successful checkpoint). Logged
    /// flags are cleared too — the page file now holds the content.
    pub fn mark_all_clean(&mut self) {
        for f in &mut self.frames {
            f.dirty = false;
            f.logged = false;
        }
    }

    /// Drops every dirty *unlogged* frame (transaction abort): the
    /// modified bytes are forgotten and the next access re-reads the
    /// committed page. Logged frames hold committed (WAL-durable but not
    /// yet checkpointed) content and are kept.
    pub fn discard_dirty(&mut self) {
        let mut kept = Vec::with_capacity(self.frames.len());
        self.map.clear();
        for f in std::mem::take(&mut self.frames) {
            if !f.dirty || f.logged {
                self.map.insert(f.page_no, kept.len());
                kept.push(f);
            }
        }
        self.frames = kept;
        self.hand = 0;
    }

    /// Drops every frame (tests and size accounting).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.map.clear();
        self.hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::kind;
    use crate::vfs::{SimVfs, Vfs};

    fn write_sealed(file: &mut dyn VfsFile, page_no: u32, byte: u8) {
        let mut p = vec![0u8; PAGE_SIZE];
        p[crate::page::PAGE_HDR] = byte;
        page::seal(&mut p, 0, kind::WEIGHT);
        file.write_at(&p, page_no as u64 * PAGE_SIZE as u64).expect("write");
        file.sync().expect("sync");
    }

    #[test]
    fn load_verifies_and_caches() {
        let vfs = SimVfs::new();
        let mut f = vfs.open("db", true).expect("open");
        write_sealed(f.as_mut(), 0, 0x11);
        let mut pool = BufferPool::new(4);
        let bytes = pool.page(f.as_mut(), 0, Some(kind::WEIGHT)).expect("load");
        assert_eq!(bytes[crate::page::PAGE_HDR], 0x11);
        assert_eq!(pool.resident(), 1);
        // kind mismatch on a fresh pool is a corruption error
        let mut pool2 = BufferPool::new(4);
        assert!(pool2.page(f.as_mut(), 0, Some(kind::META)).is_err());
    }

    #[test]
    fn clock_evicts_clean_grows_for_dirty() {
        let vfs = SimVfs::new();
        let mut f = vfs.open("db", true).expect("open");
        for p in 0..6u32 {
            write_sealed(f.as_mut(), p, p as u8);
        }
        let mut pool = BufferPool::new(2);
        pool.page(f.as_mut(), 0, None).expect("p0");
        pool.page(f.as_mut(), 1, None).expect("p1");
        pool.page(f.as_mut(), 2, None).expect("p2 evicts");
        assert_eq!(pool.resident(), 2, "clean frames are evicted at capacity");
        // dirty frames are never evicted: the pool grows instead
        pool.page_mut(f.as_mut(), 3, true, None).expect("d3");
        pool.page_mut(f.as_mut(), 4, true, None).expect("d4");
        pool.page(f.as_mut(), 5, None).expect("p5");
        assert!(pool.resident() >= 3);
        assert_eq!(pool.dirty_pages(), vec![3, 4]);
    }

    #[test]
    fn stats_count_hits_misses_evictions() {
        let vfs = SimVfs::new();
        let mut f = vfs.open("db", true).expect("open");
        for p in 0..3u32 {
            write_sealed(f.as_mut(), p, p as u8);
        }
        let mut pool = BufferPool::new(2);
        pool.page(f.as_mut(), 0, None).expect("p0");
        pool.page(f.as_mut(), 0, None).expect("p0 again");
        pool.page(f.as_mut(), 1, None).expect("p1");
        pool.page(f.as_mut(), 2, None).expect("p2 evicts");
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.evictions, 1);
        assert_eq!(pool.pinned(), 0);
        pool.page_mut(f.as_mut(), 1, false, None).expect("dirty p1");
        assert_eq!(pool.pinned(), 1);
    }

    #[test]
    fn restore_and_drop_frame_round_trip() {
        let vfs = SimVfs::new();
        let mut f = vfs.open("db", true).expect("open");
        write_sealed(f.as_mut(), 0, 0x21);
        let mut pool = BufferPool::new(4);
        let pre = pool.page(f.as_mut(), 0, None).expect("load").to_vec();
        let bytes = pool.page_mut(f.as_mut(), 0, false, None).expect("mut");
        bytes[crate::page::PAGE_HDR] = 0x77;
        pool.restore_frame(0, pre.clone(), false, false);
        assert_eq!(pool.resident_page(0).expect("resident"), &pre[..]);
        assert_eq!(pool.dirty_pages(), Vec::<u32>::new());
        // a fresh page dropped on abort disappears entirely
        pool.page_mut(f.as_mut(), 9, true, None).expect("fresh");
        pool.drop_frame(9);
        assert!(pool.resident_page(9).is_err());
    }

    #[test]
    fn logged_frames_survive_discard() {
        let vfs = SimVfs::new();
        let mut f = vfs.open("db", true).expect("open");
        write_sealed(f.as_mut(), 0, 0x01);
        write_sealed(f.as_mut(), 1, 0x02);
        let mut pool = BufferPool::new(4);
        pool.page_mut(f.as_mut(), 0, false, None).expect("a")[crate::page::PAGE_HDR] = 0xAA;
        pool.page_mut(f.as_mut(), 1, false, None).expect("b")[crate::page::PAGE_HDR] = 0xBB;
        pool.set_logged(0);
        assert_eq!(pool.unlogged_dirty_pages(), vec![1]);
        pool.discard_dirty();
        // page 0 (logged, committed content) kept; page 1 forgotten
        assert_eq!(pool.resident_page(0).expect("kept")[crate::page::PAGE_HDR], 0xAA);
        assert!(pool.resident_page(1).is_err());
        // re-modifying a logged frame clears its logged flag
        pool.page_mut(f.as_mut(), 0, false, None).expect("remod");
        assert_eq!(pool.unlogged_dirty_pages(), vec![0]);
    }

    #[test]
    fn discard_dirty_forgets_uncommitted_bytes() {
        let vfs = SimVfs::new();
        let mut f = vfs.open("db", true).expect("open");
        write_sealed(f.as_mut(), 0, 0x55);
        let mut pool = BufferPool::new(4);
        let bytes = pool.page_mut(f.as_mut(), 0, false, None).expect("load");
        bytes[crate::page::PAGE_HDR] = 0x99;
        pool.discard_dirty();
        let fresh = pool.page(f.as_mut(), 0, None).expect("reload");
        assert_eq!(fresh[crate::page::PAGE_HDR], 0x55, "abort restored the page");
    }
}
