//! The paged store: layout, recovery, and transactional updates.
//!
//! ## Layout
//!
//! ```text
//! page 0                                meta (magic, counts, next_txn)
//! pages 1 .. 1+BP                       blob: arena flat, parameters,
//!                                       labels, element names, query name
//! pages 1+BP .. 1+BP+WP                 weights: (base i64, delta i64)
//!                                       per tuple id, 255 entries/page
//! pages 1+BP+WP .. 1+BP+WP+AP           answers: CSR offsets ++ ids ++
//!                                       universe (u32 stream, growable)
//! ```
//!
//! The **marked** weight of tuple `t` is `base[t] + delta[t]`: the base
//! is the owner's true weight, the delta is the ±1 pair-marking
//! distortion. Splitting them on disk is what makes Theorem 7 updates
//! transactional and cheap — a weight-only update rewrites touched base
//! entries (and, with the key at hand, re-marks the touched pairs'
//! delta entries), never the whole table — and it means the detector's
//! reference ("original") weights are recoverable from the same file.
//!
//! ## Commit protocol (redo-only, no-steal/force)
//!
//! 1. every dirty page is sealed (LSN = txn id, CRC) and appended to the
//!    WAL as a full after-image, followed by a commit record;
//! 2. `wal.sync()` — **the commit point**;
//! 3. checkpoint: dirty non-meta pages are written to the page file and
//!    synced, then the meta page (carrying `next_txn = id + 1`) is
//!    written and synced, then the WAL is truncated and synced.
//!
//! A crash before step 2 loses the transaction entirely (no commit
//! record → recovery discards it). A crash after step 2 replays it from
//! the WAL. The meta-last checkpoint order plus the monotonic txn-id
//! watermark close the two classic seams: a torn meta write invalidates
//! the meta checksum, which recovery treats as "replay every committed
//! transaction" (safe — the WAL still holds them), and a lost WAL
//! truncate leaves stale records whose txn ids fall below the durable
//! watermark, so they are skipped.

use crate::page::{self, kind, PAGE_HDR, PAGE_PAYLOAD, PAGE_SIZE};
use crate::pool::BufferPool;
use crate::vfs::{Result, StoreError, Vfs, VfsFile};
use crate::wal::{self, Wal, WalRecord};
use qpwm_structures::{AnswerFamily, Weights};
use std::collections::HashSet;

/// `"qpwmstor"` little-endian.
const MAGIC: u64 = 0x726F_7473_6D77_7071;
const VERSION: u32 = 1;

/// Weight entries per page (16 bytes each).
const WEIGHTS_PER_PAGE: usize = PAGE_PAYLOAD / 16;

/// Default number of buffer-pool frames (~256 KiB resident).
pub const DEFAULT_POOL_FRAMES: usize = 64;

/// The WAL path of a store file.
pub fn wal_name(store_name: &str) -> String {
    format!("{store_name}.wal")
}

// ---------------------------------------------------------------------------
// Meta page
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Meta {
    tuple_arity: u32,
    param_arity: u32,
    n_tuples: u32,
    n_params: u32,
    n_ids: u32,
    n_universe: u32,
    blob_len: u64,
    blob_pages: u32,
    weight_pages: u32,
    answer_pages: u32,
    next_txn: u64,
}

impl Meta {
    fn encode(&self, payload: &mut [u8]) {
        payload.fill(0);
        payload[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        payload[8..12].copy_from_slice(&VERSION.to_le_bytes());
        let fields = [
            self.tuple_arity,
            self.param_arity,
            self.n_tuples,
            self.n_params,
            self.n_ids,
            self.n_universe,
            self.blob_pages,
            self.weight_pages,
            self.answer_pages,
        ];
        for (i, f) in fields.iter().enumerate() {
            payload[12 + 4 * i..16 + 4 * i].copy_from_slice(&f.to_le_bytes());
        }
        payload[48..56].copy_from_slice(&self.blob_len.to_le_bytes());
        payload[56..64].copy_from_slice(&self.next_txn.to_le_bytes());
    }

    fn decode(payload: &[u8]) -> Result<Meta> {
        let magic = u64::from_le_bytes(payload[0..8].try_into().expect("8"));
        if magic != MAGIC {
            return Err(StoreError::Corrupt(format!("bad magic {magic:#018x}")));
        }
        let version = u32::from_le_bytes(payload[8..12].try_into().expect("4"));
        if version != VERSION {
            return Err(StoreError::Corrupt(format!("unsupported version {version}")));
        }
        let f = |i: usize| {
            u32::from_le_bytes(payload[12 + 4 * i..16 + 4 * i].try_into().expect("4"))
        };
        Ok(Meta {
            tuple_arity: f(0),
            param_arity: f(1),
            n_tuples: f(2),
            n_params: f(3),
            n_ids: f(4),
            n_universe: f(5),
            blob_pages: f(6),
            weight_pages: f(7),
            answer_pages: f(8),
            blob_len: u64::from_le_bytes(payload[48..56].try_into().expect("8")),
            next_txn: u64::from_le_bytes(payload[56..64].try_into().expect("8")),
        })
    }

    fn weight_first(&self) -> u32 {
        1 + self.blob_pages
    }

    fn answer_first(&self) -> u32 {
        1 + self.blob_pages + self.weight_pages
    }

    fn total_pages(&self) -> u32 {
        1 + self.blob_pages + self.weight_pages + self.answer_pages
    }

    fn kind_of(&self, page_no: u32) -> u8 {
        if page_no == 0 {
            kind::META
        } else if page_no < self.weight_first() {
            kind::BLOB
        } else if page_no < self.answer_first() {
            kind::WEIGHT
        } else {
            kind::ANSWER
        }
    }

    /// Byte length of the answer stream (offsets ++ ids ++ universe).
    fn answer_len(&self) -> usize {
        4 * (self.n_params as usize + 1 + self.n_ids as usize + self.n_universe as usize)
    }
}

// ---------------------------------------------------------------------------
// Content (the typed view of the persisted family)
// ---------------------------------------------------------------------------

/// Everything a store file holds, decoded. Built from an
/// [`AnswerFamily`] + weights at init time and reconstructed (with full
/// canonical-invariant validation) on load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreContent {
    /// Output arity of the answer tuples.
    pub tuple_arity: u32,
    /// Arity of the parameter tuples.
    pub param_arity: u32,
    /// The arena's flat element buffer, canonical (lexicographic) order.
    pub flat: Vec<u32>,
    /// Flattened parameter domain (`n_params × param_arity`).
    pub parameters: Vec<u32>,
    /// CSR offsets (`n_params + 1`).
    pub offsets: Vec<u32>,
    /// Concatenated sorted active sets.
    pub ids: Vec<u32>,
    /// Memoized sorted universe.
    pub universe: Vec<u32>,
    /// Owner's true weight per tuple id.
    pub base: Vec<i64>,
    /// Mark distortion per tuple id (marked = base + delta).
    pub delta: Vec<i64>,
    /// Display label per parameter (the serve-tier URL keys).
    pub param_labels: Vec<String>,
    /// Element id → display name (empty when the instance is unnamed).
    pub element_names: Vec<String>,
    /// Name of the registered query.
    pub query_name: String,
}

impl StoreContent {
    /// Captures a family and its weight assignments for persistence.
    /// `base` are the owner's true weights, `marked` the published ones;
    /// the difference becomes the stored per-tuple mark delta.
    pub fn from_family(
        family: &AnswerFamily,
        base: &Weights,
        marked: &Weights,
        param_labels: Vec<String>,
        element_names: Vec<String>,
        query_name: String,
    ) -> Result<Self> {
        let arity = family.output_arity();
        if arity == 0 {
            return Err(StoreError::Invalid("output arity must be >= 1".into()));
        }
        if base.arity() != arity || marked.arity() != arity {
            return Err(StoreError::Invalid(format!(
                "weight arity {} / {} vs output arity {arity}",
                base.arity(),
                marked.arity()
            )));
        }
        if param_labels.len() != family.len() {
            return Err(StoreError::Invalid(format!(
                "{} labels for {} parameters",
                param_labels.len(),
                family.len()
            )));
        }
        let arena = family.arena();
        let mut flat = Vec::with_capacity(arena.len() * arity);
        let mut base_v = Vec::with_capacity(arena.len());
        let mut delta_v = Vec::with_capacity(arena.len());
        for (_, t) in arena.iter() {
            flat.extend_from_slice(t);
            let b = base.get(t);
            base_v.push(b);
            delta_v.push(marked.get(t) - b);
        }
        let param_arity = family.parameters().first().map_or(0, Vec::len);
        let mut parameters = Vec::with_capacity(family.len() * param_arity);
        for p in family.parameters() {
            if p.len() != param_arity {
                return Err(StoreError::Invalid("non-uniform parameter arity".into()));
            }
            parameters.extend_from_slice(p);
        }
        let mut offsets = Vec::with_capacity(family.len() + 1);
        offsets.push(0u32);
        let mut ids = Vec::new();
        for i in 0..family.len() {
            ids.extend_from_slice(family.active_ids(i));
            ids.len()
                .try_into()
                .ok()
                .map(|n: u32| offsets.push(n))
                .ok_or_else(|| StoreError::Invalid("family too large for u32 CSR".into()))?;
        }
        Ok(StoreContent {
            tuple_arity: arity as u32,
            param_arity: param_arity as u32,
            flat,
            parameters,
            offsets,
            ids,
            universe: family.active_universe().to_vec(),
            base: base_v,
            delta: delta_v,
            param_labels,
            element_names,
            query_name,
        })
    }

    /// Number of interned tuples.
    pub fn n_tuples(&self) -> usize {
        if self.tuple_arity == 0 {
            0
        } else {
            self.flat.len() / self.tuple_arity as usize
        }
    }

    /// Number of parameters.
    pub fn n_params(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Rebuilds the interned family, re-checking every canonical
    /// invariant (see `AnswerFamily::from_raw_parts`).
    pub fn family(&self) -> Result<AnswerFamily> {
        let params: Vec<Vec<u32>> = if self.param_arity == 0 {
            vec![Vec::new(); self.n_params()]
        } else {
            self.parameters.chunks(self.param_arity as usize).map(<[u32]>::to_vec).collect()
        };
        AnswerFamily::from_raw_parts(
            self.tuple_arity as usize,
            self.flat.clone(),
            params,
            self.offsets.clone(),
            self.ids.clone(),
            self.universe.clone(),
        )
        .map_err(StoreError::Corrupt)
    }

    /// The owner's true (pre-mark) weights.
    pub fn base_weights(&self) -> Weights {
        self.weights_from(|i| self.base[i])
    }

    /// The published marked weights (`base + delta`).
    pub fn marked_weights(&self) -> Weights {
        self.weights_from(|i| self.base[i] + self.delta[i])
    }

    fn weights_from(&self, f: impl Fn(usize) -> i64) -> Weights {
        let arity = self.tuple_arity as usize;
        let mut w = Weights::new(arity);
        for (i, t) in self.flat.chunks(arity).enumerate() {
            w.set(t, f(i));
        }
        w
    }

    /// Binary search for a tuple's id in the canonical flat buffer.
    pub fn lookup(&self, key: &[u32]) -> Option<u32> {
        let arity = self.tuple_arity as usize;
        if key.len() != arity || arity == 0 {
            return None;
        }
        let n = self.n_tuples();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.flat[mid * arity..(mid + 1) * arity].cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid as u32),
            }
        }
        None
    }

    fn validate(&self) -> Result<()> {
        if self.tuple_arity == 0 {
            return Err(StoreError::Invalid("tuple arity must be >= 1".into()));
        }
        if !self.flat.len().is_multiple_of(self.tuple_arity as usize) {
            return Err(StoreError::Invalid("flat length not a multiple of arity".into()));
        }
        let n = self.n_tuples();
        if self.base.len() != n || self.delta.len() != n {
            return Err(StoreError::Invalid(format!(
                "{} base / {} delta entries for {n} tuples",
                self.base.len(),
                self.delta.len()
            )));
        }
        if self.param_arity as usize * self.n_params() != self.parameters.len() {
            return Err(StoreError::Invalid("parameter buffer length mismatch".into()));
        }
        if self.param_labels.len() != self.n_params() {
            return Err(StoreError::Invalid("one label per parameter required".into()));
        }
        // The family constructor re-checks CSR + canonical invariants.
        self.family().map(|_| ())
    }

    fn encode_blob(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for &e in &self.flat {
            out.extend_from_slice(&e.to_le_bytes());
        }
        for &e in &self.parameters {
            out.extend_from_slice(&e.to_le_bytes());
        }
        for s in &self.param_labels {
            push_str(&mut out, s);
        }
        out.extend_from_slice(&(self.element_names.len() as u32).to_le_bytes());
        for s in &self.element_names {
            push_str(&mut out, s);
        }
        push_str(&mut out, &self.query_name);
        out
    }

    fn encode_answers(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(4 * (self.offsets.len() + self.ids.len() + self.universe.len()));
        for &x in self.offsets.iter().chain(&self.ids).chain(&self.universe) {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, off: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.off + n > self.bytes.len() {
            return Err(StoreError::Corrupt(format!(
                "blob truncated: need {n} at {} of {}",
                self.off,
                self.bytes.len()
            )));
        }
        let s = &self.bytes[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u32s(&mut self, n: usize) -> Result<Vec<u32>> {
        let raw = self.take(4 * n)?;
        Ok(raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4"))).collect())
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        if len > 1 << 24 {
            return Err(StoreError::Corrupt(format!("implausible string length {len}")));
        }
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| StoreError::Corrupt("non-UTF-8 string in blob".into()))
    }
}

// ---------------------------------------------------------------------------
// Recovery + commit statistics
// ---------------------------------------------------------------------------

/// What [`Store::open`] found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Parsed WAL records.
    pub wal_records: usize,
    /// The WAL ended in an unparsable (torn) tail that was discarded.
    pub torn_tail: bool,
    /// Committed transactions replayed into the page file.
    pub replayed_txns: usize,
    /// Page images written during replay.
    pub replayed_pages: usize,
    /// Transactions present in the WAL but not replayed (uncommitted, or
    /// stale records below the meta watermark after a lost truncate).
    pub discarded_txns: usize,
}

/// What one committed transaction wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitStats {
    /// The transaction id.
    pub txn: u64,
    /// Pages logged and checkpointed (including the meta page).
    pub pages: usize,
    /// WAL bytes appended.
    pub wal_bytes: u64,
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// An open store file: page file + WAL + buffer pool.
///
/// Single-writer by construction (`&mut self` transactions). A commit
/// that returns an error — in particular an injected crash — leaves the
/// in-memory state unusable; drop the store and reopen to recover.
pub struct Store {
    file: Box<dyn VfsFile>,
    wal: Wal,
    pool: BufferPool,
    meta: Meta,
    recovery: RecoveryStats,
}

impl Store {
    /// Creates a store file holding `content`, overwriting any previous
    /// file of the same name. The initial image is itself written as one
    /// committed transaction, so a crash mid-create leaves either a
    /// recoverable store or an invalid file — never a half-written one
    /// that opens.
    pub fn create(vfs: &dyn Vfs, name: &str, content: &StoreContent) -> Result<Store> {
        content.validate()?;
        let blob = content.encode_blob();
        let answers = content.encode_answers();
        let n = content.n_tuples();
        let meta = Meta {
            tuple_arity: content.tuple_arity,
            param_arity: content.param_arity,
            n_tuples: n as u32,
            n_params: content.n_params() as u32,
            n_ids: content.ids.len() as u32,
            n_universe: content.universe.len() as u32,
            blob_len: blob.len() as u64,
            blob_pages: pages_for(blob.len())?,
            weight_pages: pages_for_weights(n)?,
            answer_pages: pages_for(answers.len())?,
            next_txn: 1,
        };
        let mut file = vfs.open(name, true)?;
        file.truncate(0)?;
        let mut wal_file = vfs.open(&wal_name(name), true)?;
        wal_file.truncate(0)?;
        let mut store = Store {
            file,
            wal: Wal::new(wal_file)?,
            pool: BufferPool::new(DEFAULT_POOL_FRAMES),
            meta,
            recovery: RecoveryStats::default(),
        };
        store.write_stream(1, &blob)?;
        for (i, (&b, &d)) in content.base.iter().zip(&content.delta).enumerate() {
            store.write_weight_entry(i as u32, b, d, true)?;
        }
        store.write_stream(meta.answer_first(), &answers)?;
        let id = store.meta.next_txn;
        store.commit_txn(id, true)?;
        Ok(store)
    }

    /// Opens an existing store, running crash recovery first: committed
    /// WAL transactions at or above the meta watermark are replayed in
    /// log order, everything else is discarded, and the WAL is reset.
    /// After `open` returns, the detector's view (family, base, marked
    /// weights) is exactly the last committed state.
    pub fn open(vfs: &dyn Vfs, name: &str) -> Result<Store> {
        let mut file = vfs.open(name, false)?;
        let wal_file = vfs.open(&wal_name(name), true)?;
        let scan = wal::scan(wal_file.as_ref())?;
        let committed: HashSet<u64> = wal::committed_txns(&scan.records).into_iter().collect();

        // The durable meta decides the replay watermark. An unreadable
        // meta (torn checkpoint write) means "replay every committed
        // transaction" — the WAL is only truncated after the meta page is
        // durable, so those records necessarily include the meta image.
        let watermark = read_meta_direct(file.as_ref()).ok().map(|m| m.next_txn).unwrap_or(0);

        let mut stats = RecoveryStats {
            wal_records: scan.records.len(),
            torn_tail: scan.torn_tail,
            ..RecoveryStats::default()
        };
        let mut replayed: HashSet<u64> = HashSet::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut meta_images: Vec<&WalRecord> = Vec::new();
        // Replay order mirrors the checkpoint: data pages first (log
        // order), sync, then meta images, sync. Writing the meta image
        // before the data pages would move the txn watermark past
        // transactions whose pages are not yet durable — a torn meta
        // write can validate (the payload tail is zeros in old and new
        // alike), silently discarding a committed transaction.
        for record in &scan.records {
            seen.insert(record.txn());
            let WalRecord::PageImage { txn, page_no, bytes } = record else { continue };
            if !committed.contains(txn) || *txn < watermark {
                continue;
            }
            page::verify(bytes, *page_no, None)?;
            replayed.insert(*txn);
            if *page_no == 0 {
                meta_images.push(record);
                continue;
            }
            file.write_at(bytes, *page_no as u64 * PAGE_SIZE as u64)?;
            stats.replayed_pages += 1;
        }
        if stats.replayed_pages > 0 {
            file.sync()?;
        }
        for record in meta_images {
            let WalRecord::PageImage { bytes, .. } = record else { unreachable!() };
            file.write_at(bytes, 0)?;
            stats.replayed_pages += 1;
            file.sync()?;
        }
        stats.replayed_txns = replayed.len();
        stats.discarded_txns = seen.iter().filter(|t| !replayed.contains(t)).count();
        let mut wal = Wal::new(wal_file)?;
        if !wal.is_empty() {
            wal.reset()?;
        }

        let meta = read_meta_direct(file.as_ref())?;
        let need = meta.total_pages() as u64 * PAGE_SIZE as u64;
        if file.size()? < need {
            return Err(StoreError::Corrupt(format!(
                "file holds {} bytes, layout needs {need}",
                file.size()?
            )));
        }
        Ok(Store {
            file,
            wal,
            pool: BufferPool::new(DEFAULT_POOL_FRAMES),
            meta,
            recovery: stats,
        })
    }

    /// What recovery did when this store was opened.
    pub fn recovery(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// Number of persisted tuples.
    pub fn n_tuples(&self) -> usize {
        self.meta.n_tuples as usize
    }

    /// Number of persisted parameters.
    pub fn n_params(&self) -> usize {
        self.meta.n_params as usize
    }

    /// The next transaction id (the durability watermark).
    pub fn next_txn(&self) -> u64 {
        self.meta.next_txn
    }

    /// Decodes the full content: family components, weights, labels.
    pub fn content(&mut self) -> Result<StoreContent> {
        let meta = self.meta;
        let blob = self.read_stream(1, meta.blob_len as usize)?;
        let mut r = Reader::new(&blob);
        let flat = r.u32s(meta.n_tuples as usize * meta.tuple_arity as usize)?;
        let parameters = r.u32s(meta.n_params as usize * meta.param_arity as usize)?;
        let mut param_labels = Vec::with_capacity(meta.n_params as usize);
        for _ in 0..meta.n_params {
            param_labels.push(r.string()?);
        }
        let n_names = r.u32()? as usize;
        if n_names > 1 << 28 {
            return Err(StoreError::Corrupt(format!("implausible name count {n_names}")));
        }
        let mut element_names = Vec::with_capacity(n_names);
        for _ in 0..n_names {
            element_names.push(r.string()?);
        }
        let query_name = r.string()?;

        let answers = self.read_stream(meta.answer_first(), meta.answer_len())?;
        let mut a = Reader::new(&answers);
        let offsets = a.u32s(meta.n_params as usize + 1)?;
        let ids = a.u32s(meta.n_ids as usize)?;
        let universe = a.u32s(meta.n_universe as usize)?;

        let mut base = Vec::with_capacity(meta.n_tuples as usize);
        let mut delta = Vec::with_capacity(meta.n_tuples as usize);
        for i in 0..meta.n_tuples {
            let (b, d) = self.read_weight_entry(i)?;
            base.push(b);
            delta.push(d);
        }
        Ok(StoreContent {
            tuple_arity: meta.tuple_arity,
            param_arity: meta.param_arity,
            flat,
            parameters,
            offsets,
            ids,
            universe,
            base,
            delta,
            param_labels,
            element_names,
            query_name,
        })
    }

    /// The `(base, delta)` weight entry of one tuple.
    pub fn weight_entry(&mut self, tuple_id: u32) -> Result<(i64, i64)> {
        if tuple_id >= self.meta.n_tuples {
            return Err(StoreError::Invalid(format!(
                "tuple {tuple_id} out of range ({} tuples)",
                self.meta.n_tuples
            )));
        }
        self.read_weight_entry(tuple_id)
    }

    /// Starts a transaction. Dropping the returned handle without
    /// committing aborts it: dirty frames are discarded and the store
    /// rereads committed state on next access.
    pub fn begin(&mut self) -> Txn<'_> {
        let saved_meta = self.meta;
        let id = self.meta.next_txn;
        Txn { store: self, id, saved_meta, done: false }
    }

    // -- internals ---------------------------------------------------------

    fn read_weight_entry(&mut self, i: u32) -> Result<(i64, i64)> {
        let (page_no, off) = self.weight_slot(i);
        let kind = self.meta.kind_of(page_no);
        let page = self.pool.page(self.file.as_mut(), page_no, Some(kind))?;
        let base = i64::from_le_bytes(page[off..off + 8].try_into().expect("8"));
        let delta = i64::from_le_bytes(page[off + 8..off + 16].try_into().expect("8"));
        Ok((base, delta))
    }

    fn write_weight_entry(&mut self, i: u32, base: i64, delta: i64, init: bool) -> Result<()> {
        let (page_no, off) = self.weight_slot(i);
        let kind = self.meta.kind_of(page_no);
        let expect = if init { None } else { Some(kind) };
        let page = self.pool.page_mut(self.file.as_mut(), page_no, init, expect)?;
        page[off..off + 8].copy_from_slice(&base.to_le_bytes());
        page[off + 8..off + 16].copy_from_slice(&delta.to_le_bytes());
        Ok(())
    }

    fn weight_slot(&self, i: u32) -> (u32, usize) {
        let page_no = self.meta.weight_first() + i / WEIGHTS_PER_PAGE as u32;
        let off = PAGE_HDR + (i as usize % WEIGHTS_PER_PAGE) * 16;
        (page_no, off)
    }

    /// Writes a byte stream across consecutive pages, fully overwriting
    /// each touched page's payload (so no disk read is needed).
    fn write_stream(&mut self, first_page: u32, bytes: &[u8]) -> Result<()> {
        let pages = bytes.len().div_ceil(PAGE_PAYLOAD).max(1);
        for i in 0..pages {
            let chunk = &bytes[(i * PAGE_PAYLOAD).min(bytes.len())
                ..((i + 1) * PAGE_PAYLOAD).min(bytes.len())];
            let page_no = first_page + i as u32;
            let page = self.pool.page_mut(self.file.as_mut(), page_no, true, None)?;
            let payload = &mut page[PAGE_HDR..];
            payload[..chunk.len()].copy_from_slice(chunk);
            payload[chunk.len()..].fill(0);
        }
        Ok(())
    }

    fn read_stream(&mut self, first_page: u32, len: usize) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(len);
        let pages = len.div_ceil(PAGE_PAYLOAD);
        for i in 0..pages {
            let page_no = first_page + i as u32;
            let kind = self.meta.kind_of(page_no);
            let page = self.pool.page(self.file.as_mut(), page_no, Some(kind))?;
            let take = (len - out.len()).min(PAGE_PAYLOAD);
            out.extend_from_slice(&page[PAGE_HDR..PAGE_HDR + take]);
        }
        Ok(out)
    }

    fn write_meta_page(&mut self) -> Result<()> {
        let meta = self.meta;
        let page = self.pool.page_mut(self.file.as_mut(), 0, true, None)?;
        meta.encode(&mut page[PAGE_HDR..]);
        Ok(())
    }

    /// The commit protocol (see module docs). With `checkpoint = false`
    /// the transaction is durable in the WAL but the page file is left
    /// untouched — the state a crash-after-commit leaves behind, used by
    /// the recovery benchmarks and tests.
    fn commit_txn(&mut self, id: u64, checkpoint: bool) -> Result<CommitStats> {
        self.meta.next_txn = id + 1;
        self.write_meta_page()?;
        let dirty = self.pool.dirty_pages();
        let wal_before = self.wal.len();
        for &page_no in &dirty {
            let kind = self.meta.kind_of(page_no);
            self.pool.seal_resident(page_no, id, kind)?;
            let bytes = self.pool.resident_page(page_no)?;
            // borrow: copy out to appease the wal's &mut self
            let image = bytes.to_vec();
            self.wal.append_page_image(id, page_no, &image)?;
        }
        self.wal.append_commit(id)?;
        self.wal.sync()?; // ---- commit point ----
        let stats =
            CommitStats { txn: id, pages: dirty.len(), wal_bytes: self.wal.len() - wal_before };
        if !checkpoint {
            return Ok(stats);
        }
        // Checkpoint: data pages first, then meta, then WAL reset — each
        // step synced before the next (see module docs for why).
        for &page_no in dirty.iter().filter(|&&p| p != 0) {
            let image = self.pool.resident_page(page_no)?.to_vec();
            self.file.write_at(&image, page_no as u64 * PAGE_SIZE as u64)?;
        }
        self.file.sync()?;
        let meta_image = self.pool.resident_page(0)?.to_vec();
        self.file.write_at(&meta_image, 0)?;
        self.file.sync()?;
        self.wal.reset()?;
        self.pool.mark_all_clean();
        Ok(stats)
    }
}

fn pages_for(bytes: usize) -> Result<u32> {
    let pages = bytes.div_ceil(PAGE_PAYLOAD).max(1);
    u32::try_from(pages).map_err(|_| StoreError::Invalid("content too large".into()))
}

fn pages_for_weights(n_tuples: usize) -> Result<u32> {
    let pages = n_tuples.div_ceil(WEIGHTS_PER_PAGE).max(1);
    u32::try_from(pages).map_err(|_| StoreError::Invalid("too many tuples".into()))
}

/// Reads and validates the meta page straight from the file (bypassing
/// the pool — used before the layout is known).
fn read_meta_direct(file: &dyn VfsFile) -> Result<Meta> {
    if file.size()? < PAGE_SIZE as u64 {
        return Err(StoreError::Corrupt("file smaller than one page".into()));
    }
    let mut page = vec![0u8; PAGE_SIZE];
    file.read_at(&mut page, 0)?;
    page::verify(&page, 0, Some(kind::META))?;
    Meta::decode(&page[PAGE_HDR..])
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

/// An open transaction. All mutations stay in the buffer pool (no-steal)
/// until [`Txn::commit`]; dropping the handle aborts.
pub struct Txn<'a> {
    store: &'a mut Store,
    id: u64,
    saved_meta: Meta,
    done: bool,
}

impl Txn<'_> {
    /// This transaction's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Sets the base (true) weight of a tuple — the Theorem 7 weight-only
    /// update path. The mark delta is untouched, so the published weight
    /// moves with the base and the detector's differential read survives.
    pub fn set_base(&mut self, tuple_id: u32, value: i64) -> Result<()> {
        let (_, delta) = self.check_tuple(tuple_id)?;
        self.store.write_weight_entry(tuple_id, value, delta, false)
    }

    /// Sets the mark delta of a tuple — the re-marking path, fed by the
    /// sparse plans of `qpwm_core::incremental::remark_touched`.
    pub fn set_delta(&mut self, tuple_id: u32, value: i64) -> Result<()> {
        let (base, _) = self.check_tuple(tuple_id)?;
        self.store.write_weight_entry(tuple_id, base, value, false)
    }

    /// Replaces one parameter's active set — the Theorem 8
    /// type-preserving structural update. The CSR and universe are
    /// rewritten (the answer section grows if needed); tuple ids must
    /// already be interned.
    pub fn set_answer_ids(&mut self, param: usize, new_ids: &[u32]) -> Result<()> {
        let meta = self.store.meta;
        if param >= meta.n_params as usize {
            return Err(StoreError::Invalid(format!(
                "parameter {param} out of range ({} params)",
                meta.n_params
            )));
        }
        let mut set: Vec<u32> = new_ids.to_vec();
        set.sort_unstable();
        set.dedup();
        if set.last().is_some_and(|&m| m >= meta.n_tuples) {
            return Err(StoreError::Invalid("answer id out of range".into()));
        }
        let answers = self.store.read_stream(meta.answer_first(), meta.answer_len())?;
        let mut r = Reader::new(&answers);
        let offsets = r.u32s(meta.n_params as usize + 1)?;
        let ids = r.u32s(meta.n_ids as usize)?;

        let (lo, hi) = (offsets[param] as usize, offsets[param + 1] as usize);
        let mut new_ids_all = Vec::with_capacity(ids.len() - (hi - lo) + set.len());
        new_ids_all.extend_from_slice(&ids[..lo]);
        new_ids_all.extend_from_slice(&set);
        new_ids_all.extend_from_slice(&ids[hi..]);
        let shift = set.len() as i64 - (hi - lo) as i64;
        let mut new_offsets = offsets.clone();
        for o in new_offsets.iter_mut().skip(param + 1) {
            *o = (*o as i64 + shift) as u32;
        }
        let mut new_universe = new_ids_all.clone();
        new_universe.sort_unstable();
        new_universe.dedup();

        let mut bytes = Vec::with_capacity(
            4 * (new_offsets.len() + new_ids_all.len() + new_universe.len()),
        );
        for &x in new_offsets.iter().chain(&new_ids_all).chain(&new_universe) {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        let needed = pages_for(bytes.len())?;
        // The answer section is last, so growing it only appends pages.
        self.store.meta.n_ids = new_ids_all.len() as u32;
        self.store.meta.n_universe = new_universe.len() as u32;
        self.store.meta.answer_pages = meta.answer_pages.max(needed);
        self.store.write_stream(meta.answer_first(), &bytes)?;
        // Freshly-grown tail pages beyond the stream still need sealing;
        // write_stream only touched pages the stream reached.
        for p in meta.answer_first() + needed..meta.answer_first() + self.store.meta.answer_pages
        {
            let page = self.store.pool.page_mut(self.store.file.as_mut(), p, true, None)?;
            page[PAGE_HDR..].fill(0);
        }
        Ok(())
    }

    /// Commits: WAL append + fsync (the durability point), then
    /// checkpoint into the page file.
    pub fn commit(mut self) -> Result<CommitStats> {
        self.done = true;
        self.store.commit_txn(self.id, true)
    }

    /// Commits durably into the WAL but skips the checkpoint, leaving
    /// the page file stale — exactly the state a crash immediately after
    /// the commit point leaves behind. The next [`Store::open`] replays
    /// it. For recovery tests and benchmarks.
    pub fn commit_no_checkpoint(mut self) -> Result<CommitStats> {
        self.done = true;
        self.store.commit_txn(self.id, false)
    }

    fn check_tuple(&mut self, tuple_id: u32) -> Result<(i64, i64)> {
        if tuple_id >= self.store.meta.n_tuples {
            return Err(StoreError::Invalid(format!(
                "tuple {tuple_id} out of range ({} tuples)",
                self.store.meta.n_tuples
            )));
        }
        self.store.read_weight_entry(tuple_id)
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.store.pool.discard_dirty();
            self.store.meta = self.saved_meta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::SimVfs;
    use qpwm_structures::AnswerFamily;

    /// A small family: params [i] with sets {2i, 2i+1} over 1-ary tuples.
    fn sample_content(n_pairs: u32) -> StoreContent {
        let params: Vec<Vec<u32>> = (0..n_pairs).map(|i| vec![i]).collect();
        let sets: Vec<Vec<Vec<u32>>> =
            (0..n_pairs).map(|i| vec![vec![2 * i], vec![2 * i + 1]]).collect();
        let family = AnswerFamily::from_nested(params, &sets);
        let mut base = Weights::new(1);
        let mut marked = Weights::new(1);
        for e in 0..2 * n_pairs {
            base.set(&[e], 100 + e as i64);
            // mark: +1 on even, -1 on odd
            marked.set(&[e], 100 + e as i64 + if e % 2 == 0 { 1 } else { -1 });
        }
        let labels = (0..n_pairs).map(|i| format!("p{i}")).collect();
        let names = (0..2 * n_pairs).map(|e| format!("n{e}")).collect();
        StoreContent::from_family(&family, &base, &marked, labels, names, "q".into())
            .expect("content")
    }

    #[test]
    fn create_open_roundtrip_preserves_everything() {
        let vfs = SimVfs::new();
        let content = sample_content(8);
        Store::create(&vfs, "db", &content).expect("create");
        let mut store = Store::open(&vfs, "db").expect("open");
        assert_eq!(store.recovery().replayed_txns, 0, "clean open replays nothing");
        let back = store.content().expect("content");
        assert_eq!(back, content);
        let family = back.family().expect("family");
        assert_eq!(family.len(), 8);
        assert_eq!(back.marked_weights().get(&[0]), 101);
        assert_eq!(back.base_weights().get(&[0]), 100);
        assert_eq!(back.lookup(&[5]), Some(5));
        assert_eq!(back.lookup(&[99]), None);
    }

    #[test]
    fn weight_txn_commit_and_abort() {
        let vfs = SimVfs::new();
        Store::create(&vfs, "db", &sample_content(4)).expect("create");
        let mut store = Store::open(&vfs, "db").expect("open");
        // abort: drop without commit
        {
            let mut txn = store.begin();
            txn.set_base(0, 999).expect("set");
        }
        assert_eq!(store.weight_entry(0).expect("entry"), (100, 1), "abort rolled back");
        // commit
        let mut txn = store.begin();
        txn.set_base(0, 999).expect("set");
        txn.set_delta(1, -5).expect("set");
        let stats = txn.commit().expect("commit");
        assert!(stats.pages >= 2, "weight page + meta page");
        assert_eq!(store.weight_entry(0).expect("entry"), (999, 1));
        assert_eq!(store.weight_entry(1).expect("entry"), (101, -5));
        // durable across reopen
        drop(store);
        let mut store = Store::open(&vfs, "db").expect("reopen");
        assert_eq!(store.weight_entry(0).expect("entry"), (999, 1));
        assert_eq!(store.next_txn(), 3, "create was txn 1, update txn 2");
    }

    #[test]
    fn uncheckpointed_commit_is_recovered_from_the_wal() {
        let vfs = SimVfs::new();
        Store::create(&vfs, "db", &sample_content(4)).expect("create");
        let mut store = Store::open(&vfs, "db").expect("open");
        let mut txn = store.begin();
        txn.set_base(2, 777).expect("set");
        txn.commit_no_checkpoint().expect("commit");
        drop(store); // crash: page file never saw the txn
        let mut store = Store::open(&vfs, "db").expect("recover");
        assert_eq!(store.recovery().replayed_txns, 1);
        assert!(store.recovery().replayed_pages >= 2);
        assert_eq!(store.weight_entry(2).expect("entry"), (777, 1));
        // recovery checkpointed implicitly: a second open replays nothing
        drop(store);
        let store = Store::open(&vfs, "db").expect("reopen");
        assert_eq!(store.recovery().replayed_txns, 0);
        assert_eq!(store.recovery().wal_records, 0, "wal was reset");
    }

    #[test]
    fn type_preserving_update_rewrites_the_answer_section() {
        let vfs = SimVfs::new();
        Store::create(&vfs, "db", &sample_content(4)).expect("create");
        let mut store = Store::open(&vfs, "db").expect("open");
        let mut txn = store.begin();
        // param 1 now answers {0, 7} instead of {2, 3}
        txn.set_answer_ids(1, &[7, 0]).expect("set");
        txn.commit().expect("commit");
        drop(store);
        let mut store = Store::open(&vfs, "db").expect("reopen");
        let content = store.content().expect("content");
        let family = content.family().expect("family");
        assert_eq!(family.active_ids(1), &[0, 7]);
        assert_eq!(family.active_ids(0), &[0, 1], "other sets untouched");
        // universe recomputed: 2 and 3 dropped out
        assert!(!content.universe.contains(&2));
        assert!(!content.universe.contains(&3));
    }

    #[test]
    fn out_of_range_ops_are_rejected() {
        let vfs = SimVfs::new();
        Store::create(&vfs, "db", &sample_content(2)).expect("create");
        let mut store = Store::open(&vfs, "db").expect("open");
        let mut txn = store.begin();
        assert!(txn.set_base(999, 0).is_err());
        assert!(txn.set_answer_ids(99, &[0]).is_err());
        assert!(txn.set_answer_ids(0, &[999]).is_err());
    }

    #[test]
    fn open_rejects_garbage() {
        let vfs = SimVfs::new();
        let mut f = vfs.open("junk", true).expect("open");
        f.write_at(&[0xAB; 8192], 0).expect("write");
        f.sync().expect("sync");
        drop(f);
        assert!(matches!(Store::open(&vfs, "junk"), Err(StoreError::Corrupt(_))));
        assert!(Store::open(&vfs, "missing").is_err());
    }
}
