//! The paged store: layout, recovery, and transactional updates.
//!
//! ## Layout
//!
//! ```text
//! page 0                                meta (magic, counts, next_txn)
//! pages 1 .. 1+BP                       blob: arena flat, parameters,
//!                                       labels, element names, query name
//! pages 1+BP .. 1+BP+WP                 weights: (base i64, delta i64)
//!                                       per tuple id, 255 entries/page
//! pages 1+BP+WP .. 1+BP+WP+AP           answers: CSR offsets ++ ids ++
//!                                       universe (u32 stream, growable)
//! ```
//!
//! The **marked** weight of tuple `t` is `base[t] + delta[t]`: the base
//! is the owner's true weight, the delta is the ±1 pair-marking
//! distortion. Splitting them on disk is what makes Theorem 7 updates
//! transactional and cheap — a weight-only update rewrites touched base
//! entries (and, with the key at hand, re-marks the touched pairs'
//! delta entries), never the whole table — and it means the detector's
//! reference ("original") weights are recoverable from the same file.
//!
//! ## Commit protocol (redo-only, no-steal/force)
//!
//! 1. every dirty page is sealed (LSN = txn id, CRC) and appended to the
//!    WAL as a full after-image, followed by a commit record;
//! 2. `wal.sync()` — **the commit point**;
//! 3. checkpoint: dirty non-meta pages are written to the page file and
//!    synced, then the meta page (carrying `next_txn = id + 1`) is
//!    written and synced, then the WAL is truncated and synced.
//!
//! A crash before step 2 loses the transaction entirely (no commit
//! record → recovery discards it). A crash after step 2 replays it from
//! the WAL. The meta-last checkpoint order plus the monotonic txn-id
//! watermark close the two classic seams: a torn meta write invalidates
//! the meta checksum, which recovery treats as "replay every committed
//! transaction" (safe — the WAL still holds them), and a lost WAL
//! truncate leaves stale records whose txn ids fall below the durable
//! watermark, so they are skipped.

use crate::locks::LockTable;
use crate::page::{self, kind, PAGE_HDR, PAGE_PAYLOAD, PAGE_SIZE};
use crate::pool::{BufferPool, PoolStats};
use crate::vfs::{Result, StoreError, Vfs, VfsFile};
use crate::wal::{self, Wal, WalRecord, WalStats};
use qpwm_structures::{AnswerFamily, Weights};
use std::collections::HashSet;
use std::sync::Arc;

/// `"qpwmstor"` little-endian.
pub(crate) const MAGIC: u64 = 0x726F_7473_6D77_7071;
pub(crate) const VERSION: u32 = 1;

/// Weight entries per page (16 bytes each).
pub(crate) const WEIGHTS_PER_PAGE: usize = PAGE_PAYLOAD / 16;

/// Default number of buffer-pool frames (~256 KiB resident).
pub const DEFAULT_POOL_FRAMES: usize = 64;

/// Environment variable overriding the pool size when no explicit
/// `pool_frames` option (CLI `--pool-frames`) is given.
pub const POOL_FRAMES_ENV: &str = "QPWM_POOL_FRAMES";

/// Smallest accepted pool: meta + one page of each data kind.
pub const MIN_POOL_FRAMES: usize = 4;

/// Largest auto-scaled pool (explicit settings may exceed it).
const MAX_AUTO_POOL_FRAMES: usize = 4096;

/// Open/create tuning knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreOptions {
    /// Buffer-pool frame count. `None` falls back to the
    /// [`POOL_FRAMES_ENV`] environment variable, then to a default scaled
    /// to the store's size (1/8 of its pages, clamped to
    /// `[64, 4096]` frames ≈ 256 KiB – 16 MiB resident).
    pub pool_frames: Option<usize>,
}

/// Resolves the effective pool size: explicit setting, then environment,
/// then the size-scaled default. Anything below [`MIN_POOL_FRAMES`] is
/// rejected — a smaller pool cannot hold one page of each kind.
pub fn resolve_pool_frames(explicit: Option<usize>, total_pages: u64) -> Result<usize> {
    fn validated(frames: usize, origin: &str) -> Result<usize> {
        if frames < MIN_POOL_FRAMES {
            return Err(StoreError::Invalid(format!(
                "{origin}: pool needs at least {MIN_POOL_FRAMES} frames, got {frames}"
            )));
        }
        Ok(frames)
    }
    if let Some(frames) = explicit {
        return validated(frames, "pool-frames");
    }
    if let Ok(raw) = std::env::var(POOL_FRAMES_ENV) {
        let frames = raw.trim().parse::<usize>().map_err(|_| {
            StoreError::Invalid(format!("{POOL_FRAMES_ENV}={raw}: not a frame count"))
        })?;
        return validated(frames, POOL_FRAMES_ENV);
    }
    Ok(((total_pages / 8) as usize).clamp(DEFAULT_POOL_FRAMES, MAX_AUTO_POOL_FRAMES))
}

/// The WAL path of a store file.
pub fn wal_name(store_name: &str) -> String {
    format!("{store_name}.wal")
}

// ---------------------------------------------------------------------------
// Meta page
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Meta {
    pub(crate) tuple_arity: u32,
    pub(crate) param_arity: u32,
    pub(crate) n_tuples: u32,
    pub(crate) n_params: u32,
    pub(crate) n_ids: u32,
    pub(crate) n_universe: u32,
    pub(crate) blob_len: u64,
    pub(crate) blob_pages: u32,
    pub(crate) weight_pages: u32,
    pub(crate) answer_pages: u32,
    pub(crate) next_txn: u64,
}

impl Meta {
    pub(crate) fn encode(&self, payload: &mut [u8]) {
        payload.fill(0);
        payload[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        payload[8..12].copy_from_slice(&VERSION.to_le_bytes());
        let fields = [
            self.tuple_arity,
            self.param_arity,
            self.n_tuples,
            self.n_params,
            self.n_ids,
            self.n_universe,
            self.blob_pages,
            self.weight_pages,
            self.answer_pages,
        ];
        for (i, f) in fields.iter().enumerate() {
            payload[12 + 4 * i..16 + 4 * i].copy_from_slice(&f.to_le_bytes());
        }
        payload[48..56].copy_from_slice(&self.blob_len.to_le_bytes());
        payload[56..64].copy_from_slice(&self.next_txn.to_le_bytes());
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<Meta> {
        let magic = u64::from_le_bytes(payload[0..8].try_into().expect("8"));
        if magic != MAGIC {
            return Err(StoreError::Corrupt(format!("bad magic {magic:#018x}")));
        }
        let version = u32::from_le_bytes(payload[8..12].try_into().expect("4"));
        if version != VERSION {
            return Err(StoreError::Corrupt(format!("unsupported version {version}")));
        }
        let f = |i: usize| {
            u32::from_le_bytes(payload[12 + 4 * i..16 + 4 * i].try_into().expect("4"))
        };
        Ok(Meta {
            tuple_arity: f(0),
            param_arity: f(1),
            n_tuples: f(2),
            n_params: f(3),
            n_ids: f(4),
            n_universe: f(5),
            blob_pages: f(6),
            weight_pages: f(7),
            answer_pages: f(8),
            blob_len: u64::from_le_bytes(payload[48..56].try_into().expect("8")),
            next_txn: u64::from_le_bytes(payload[56..64].try_into().expect("8")),
        })
    }

    pub(crate) fn weight_first(&self) -> u32 {
        1 + self.blob_pages
    }

    pub(crate) fn answer_first(&self) -> u32 {
        1 + self.blob_pages + self.weight_pages
    }

    pub(crate) fn total_pages(&self) -> u32 {
        1 + self.blob_pages + self.weight_pages + self.answer_pages
    }

    pub(crate) fn kind_of(&self, page_no: u32) -> u8 {
        if page_no == 0 {
            kind::META
        } else if page_no < self.weight_first() {
            kind::BLOB
        } else if page_no < self.answer_first() {
            kind::WEIGHT
        } else {
            kind::ANSWER
        }
    }

    /// Byte length of the answer stream (offsets ++ ids ++ universe).
    pub(crate) fn answer_len(&self) -> usize {
        4 * (self.n_params as usize + 1 + self.n_ids as usize + self.n_universe as usize)
    }
}

// ---------------------------------------------------------------------------
// Content (the typed view of the persisted family)
// ---------------------------------------------------------------------------

/// Everything a store file holds, decoded. Built from an
/// [`AnswerFamily`] + weights at init time and reconstructed (with full
/// canonical-invariant validation) on load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreContent {
    /// Output arity of the answer tuples.
    pub tuple_arity: u32,
    /// Arity of the parameter tuples.
    pub param_arity: u32,
    /// The arena's flat element buffer, canonical (lexicographic) order.
    pub flat: Vec<u32>,
    /// Flattened parameter domain (`n_params × param_arity`).
    pub parameters: Vec<u32>,
    /// CSR offsets (`n_params + 1`).
    pub offsets: Vec<u32>,
    /// Concatenated sorted active sets.
    pub ids: Vec<u32>,
    /// Memoized sorted universe.
    pub universe: Vec<u32>,
    /// Owner's true weight per tuple id.
    pub base: Vec<i64>,
    /// Mark distortion per tuple id (marked = base + delta).
    pub delta: Vec<i64>,
    /// Display label per parameter (the serve-tier URL keys).
    pub param_labels: Vec<String>,
    /// Element id → display name (empty when the instance is unnamed).
    pub element_names: Vec<String>,
    /// Name of the registered query.
    pub query_name: String,
}

impl StoreContent {
    /// Captures a family and its weight assignments for persistence.
    /// `base` are the owner's true weights, `marked` the published ones;
    /// the difference becomes the stored per-tuple mark delta.
    pub fn from_family(
        family: &AnswerFamily,
        base: &Weights,
        marked: &Weights,
        param_labels: Vec<String>,
        element_names: Vec<String>,
        query_name: String,
    ) -> Result<Self> {
        let arity = family.output_arity();
        if arity == 0 {
            return Err(StoreError::Invalid("output arity must be >= 1".into()));
        }
        if base.arity() != arity || marked.arity() != arity {
            return Err(StoreError::Invalid(format!(
                "weight arity {} / {} vs output arity {arity}",
                base.arity(),
                marked.arity()
            )));
        }
        if param_labels.len() != family.len() {
            return Err(StoreError::Invalid(format!(
                "{} labels for {} parameters",
                param_labels.len(),
                family.len()
            )));
        }
        let arena = family.arena();
        let mut flat = Vec::with_capacity(arena.len() * arity);
        let mut base_v = Vec::with_capacity(arena.len());
        let mut delta_v = Vec::with_capacity(arena.len());
        for (_, t) in arena.iter() {
            flat.extend_from_slice(t);
            let b = base.get(t);
            base_v.push(b);
            delta_v.push(marked.get(t) - b);
        }
        let param_arity = family.parameters().first().map_or(0, Vec::len);
        let mut parameters = Vec::with_capacity(family.len() * param_arity);
        for p in family.parameters() {
            if p.len() != param_arity {
                return Err(StoreError::Invalid("non-uniform parameter arity".into()));
            }
            parameters.extend_from_slice(p);
        }
        let mut offsets = Vec::with_capacity(family.len() + 1);
        offsets.push(0u32);
        let mut ids = Vec::new();
        for i in 0..family.len() {
            ids.extend_from_slice(family.active_ids(i));
            ids.len()
                .try_into()
                .ok()
                .map(|n: u32| offsets.push(n))
                .ok_or_else(|| StoreError::Invalid("family too large for u32 CSR".into()))?;
        }
        Ok(StoreContent {
            tuple_arity: arity as u32,
            param_arity: param_arity as u32,
            flat,
            parameters,
            offsets,
            ids,
            universe: family.active_universe().to_vec(),
            base: base_v,
            delta: delta_v,
            param_labels,
            element_names,
            query_name,
        })
    }

    /// Number of interned tuples.
    pub fn n_tuples(&self) -> usize {
        if self.tuple_arity == 0 {
            0
        } else {
            self.flat.len() / self.tuple_arity as usize
        }
    }

    /// Number of parameters.
    pub fn n_params(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Rebuilds the interned family, re-checking every canonical
    /// invariant (see `AnswerFamily::from_raw_parts`).
    pub fn family(&self) -> Result<AnswerFamily> {
        let params: Vec<Vec<u32>> = if self.param_arity == 0 {
            vec![Vec::new(); self.n_params()]
        } else {
            self.parameters.chunks(self.param_arity as usize).map(<[u32]>::to_vec).collect()
        };
        AnswerFamily::from_raw_parts(
            self.tuple_arity as usize,
            self.flat.clone(),
            params,
            self.offsets.clone(),
            self.ids.clone(),
            self.universe.clone(),
        )
        .map_err(StoreError::Corrupt)
    }

    /// The owner's true (pre-mark) weights.
    pub fn base_weights(&self) -> Weights {
        self.weights_from(|i| self.base[i])
    }

    /// The published marked weights (`base + delta`).
    pub fn marked_weights(&self) -> Weights {
        self.weights_from(|i| self.base[i] + self.delta[i])
    }

    fn weights_from(&self, f: impl Fn(usize) -> i64) -> Weights {
        let arity = self.tuple_arity as usize;
        let mut w = Weights::new(arity);
        for (i, t) in self.flat.chunks(arity).enumerate() {
            w.set(t, f(i));
        }
        w
    }

    /// Binary search for a tuple's id in the canonical flat buffer.
    pub fn lookup(&self, key: &[u32]) -> Option<u32> {
        let arity = self.tuple_arity as usize;
        if key.len() != arity || arity == 0 {
            return None;
        }
        let n = self.n_tuples();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.flat[mid * arity..(mid + 1) * arity].cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid as u32),
            }
        }
        None
    }

    fn validate(&self) -> Result<()> {
        if self.tuple_arity == 0 {
            return Err(StoreError::Invalid("tuple arity must be >= 1".into()));
        }
        if !self.flat.len().is_multiple_of(self.tuple_arity as usize) {
            return Err(StoreError::Invalid("flat length not a multiple of arity".into()));
        }
        let n = self.n_tuples();
        if self.base.len() != n || self.delta.len() != n {
            return Err(StoreError::Invalid(format!(
                "{} base / {} delta entries for {n} tuples",
                self.base.len(),
                self.delta.len()
            )));
        }
        if self.param_arity as usize * self.n_params() != self.parameters.len() {
            return Err(StoreError::Invalid("parameter buffer length mismatch".into()));
        }
        if self.param_labels.len() != self.n_params() {
            return Err(StoreError::Invalid("one label per parameter required".into()));
        }
        // The family constructor re-checks CSR + canonical invariants.
        self.family().map(|_| ())
    }

    fn encode_blob(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for &e in &self.flat {
            out.extend_from_slice(&e.to_le_bytes());
        }
        for &e in &self.parameters {
            out.extend_from_slice(&e.to_le_bytes());
        }
        for s in &self.param_labels {
            push_str(&mut out, s);
        }
        out.extend_from_slice(&(self.element_names.len() as u32).to_le_bytes());
        for s in &self.element_names {
            push_str(&mut out, s);
        }
        push_str(&mut out, &self.query_name);
        out
    }

    fn encode_answers(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(4 * (self.offsets.len() + self.ids.len() + self.universe.len()));
        for &x in self.offsets.iter().chain(&self.ids).chain(&self.universe) {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }
}

pub(crate) fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, off: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.off + n > self.bytes.len() {
            return Err(StoreError::Corrupt(format!(
                "blob truncated: need {n} at {} of {}",
                self.off,
                self.bytes.len()
            )));
        }
        let s = &self.bytes[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub(crate) fn u32s(&mut self, n: usize) -> Result<Vec<u32>> {
        let raw = self.take(4 * n)?;
        Ok(raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4"))).collect())
    }

    pub(crate) fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        if len > 1 << 24 {
            return Err(StoreError::Corrupt(format!("implausible string length {len}")));
        }
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| StoreError::Corrupt("non-UTF-8 string in blob".into()))
    }
}

// ---------------------------------------------------------------------------
// Recovery + commit statistics
// ---------------------------------------------------------------------------

/// What [`Store::open`] found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Parsed WAL records.
    pub wal_records: usize,
    /// The WAL ended in an unparsable (torn) tail that was discarded.
    pub torn_tail: bool,
    /// Committed transactions replayed into the page file.
    pub replayed_txns: usize,
    /// Page images written during replay.
    pub replayed_pages: usize,
    /// Committed page images *skipped* because the on-disk page already
    /// carried them (LSN at or above the record's txn) — replay is
    /// idempotent, a reopen or a crash mid-recovery never rewrites
    /// already-checkpointed pages.
    pub skipped_pages: usize,
    /// Transactions present in the WAL but not replayed (uncommitted, or
    /// stale records below the meta watermark after a lost truncate).
    pub discarded_txns: usize,
}

/// What one committed transaction wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitStats {
    /// The transaction id.
    pub txn: u64,
    /// Pages logged and checkpointed (including the meta page).
    pub pages: usize,
    /// WAL bytes appended.
    pub wal_bytes: u64,
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// An open store file: page file + WAL + buffer pool.
///
/// Single-writer by construction (`&mut self` transactions). A commit
/// that returns an error — in particular an injected crash — leaves the
/// in-memory state unusable; drop the store and reopen to recover.
pub struct Store {
    file: Box<dyn VfsFile>,
    wal: Wal,
    pool: BufferPool,
    meta: Meta,
    recovery: RecoveryStats,
    /// Page lock table + checkpoint epoch, shared with [`crate::ReadView`]s
    /// opened against this store.
    locks: Arc<LockTable>,
    /// Commits appended to the WAL but not yet fsynced — awaiting
    /// [`Store::group_commit`].
    buffered: u64,
}

impl Store {
    /// Creates a store file holding `content`, overwriting any previous
    /// file of the same name. The initial image is itself written as one
    /// committed transaction, so a crash mid-create leaves either a
    /// recoverable store or an invalid file — never a half-written one
    /// that opens.
    pub fn create(vfs: &dyn Vfs, name: &str, content: &StoreContent) -> Result<Store> {
        Store::create_with(vfs, name, content, &StoreOptions::default())
    }

    /// [`Store::create`] with explicit options.
    pub fn create_with(
        vfs: &dyn Vfs,
        name: &str,
        content: &StoreContent,
        opts: &StoreOptions,
    ) -> Result<Store> {
        content.validate()?;
        let blob = content.encode_blob();
        let answers = content.encode_answers();
        let n = content.n_tuples();
        let meta = Meta {
            tuple_arity: content.tuple_arity,
            param_arity: content.param_arity,
            n_tuples: n as u32,
            n_params: content.n_params() as u32,
            n_ids: content.ids.len() as u32,
            n_universe: content.universe.len() as u32,
            blob_len: blob.len() as u64,
            blob_pages: pages_for(blob.len())?,
            weight_pages: pages_for_weights(n)?,
            answer_pages: pages_for(answers.len())?,
            next_txn: 1,
        };
        let frames = resolve_pool_frames(opts.pool_frames, meta.total_pages() as u64)?;
        let mut file = vfs.open(name, true)?;
        file.truncate(0)?;
        let mut wal_file = vfs.open(&wal_name(name), true)?;
        wal_file.truncate(0)?;
        let mut store = Store {
            file,
            wal: Wal::new(wal_file)?,
            pool: BufferPool::new(frames),
            meta,
            recovery: RecoveryStats::default(),
            locks: Arc::new(LockTable::new()),
            buffered: 0,
        };
        store.write_stream(1, &blob)?;
        for (i, (&b, &d)) in content.base.iter().zip(&content.delta).enumerate() {
            store.write_weight_entry(i as u32, b, d, true)?;
        }
        store.write_stream(meta.answer_first(), &answers)?;
        let id = store.meta.next_txn;
        store.commit_txn(id, true)?;
        Ok(store)
    }

    /// Opens an existing store, running crash recovery first: committed
    /// WAL transactions at or above the meta watermark are replayed in
    /// log order, everything else is discarded, and the WAL is reset.
    /// After `open` returns, the detector's view (family, base, marked
    /// weights) is exactly the last committed state.
    pub fn open(vfs: &dyn Vfs, name: &str) -> Result<Store> {
        Store::open_with(vfs, name, &StoreOptions::default())
    }

    /// [`Store::open`] with explicit options.
    pub fn open_with(vfs: &dyn Vfs, name: &str, opts: &StoreOptions) -> Result<Store> {
        let mut file = vfs.open(name, false)?;
        let wal_file = vfs.open(&wal_name(name), true)?;
        let scan = wal::scan(wal_file.as_ref())?;
        let committed: HashSet<u64> = wal::committed_txns(&scan.records).into_iter().collect();

        // The durable meta decides the replay watermark. An unreadable
        // meta (torn checkpoint write) means "replay every committed
        // transaction" — the WAL is only truncated after the meta page is
        // durable, so those records necessarily include the meta image.
        let watermark = read_meta_direct(file.as_ref()).ok().map(|m| m.next_txn).unwrap_or(0);

        let mut stats = RecoveryStats {
            wal_records: scan.records.len(),
            torn_tail: scan.torn_tail,
            ..RecoveryStats::default()
        };
        let mut replayed: HashSet<u64> = HashSet::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut meta_images: Vec<&WalRecord> = Vec::new();
        // Replay order mirrors the checkpoint: data pages first (log
        // order), sync, then meta images, sync. Writing the meta image
        // before the data pages would move the txn watermark past
        // transactions whose pages are not yet durable — a torn meta
        // write can validate (the payload tail is zeros in old and new
        // alike), silently discarding a committed transaction.
        for record in &scan.records {
            seen.insert(record.txn());
            let WalRecord::PageImage { txn, page_no, bytes } = record else { continue };
            if !committed.contains(txn) || *txn < watermark {
                continue;
            }
            page::verify(bytes, *page_no, None)?;
            replayed.insert(*txn);
            if *page_no == 0 {
                meta_images.push(record);
                continue;
            }
            // Idempotent replay: a page whose durable copy already carries
            // this transaction's effects (LSN at or above the record's
            // txn) was checkpointed before the crash — or by a previous
            // recovery — and must not be written twice.
            if disk_page_current(file.as_ref(), *page_no, *txn) {
                stats.skipped_pages += 1;
                continue;
            }
            file.write_at(bytes, *page_no as u64 * PAGE_SIZE as u64)?;
            stats.replayed_pages += 1;
        }
        if stats.replayed_pages > 0 {
            file.sync()?;
        }
        for record in meta_images {
            let WalRecord::PageImage { txn, bytes, .. } = record else { unreachable!() };
            if disk_page_current(file.as_ref(), 0, *txn) {
                stats.skipped_pages += 1;
                continue;
            }
            file.write_at(bytes, 0)?;
            stats.replayed_pages += 1;
            file.sync()?;
        }
        stats.replayed_txns = replayed.len();
        stats.discarded_txns = seen.iter().filter(|t| !replayed.contains(t)).count();
        let mut wal = Wal::new(wal_file)?;
        if !wal.is_empty() {
            wal.reset()?;
        }

        let meta = read_meta_direct(file.as_ref())?;
        let need = meta.total_pages() as u64 * PAGE_SIZE as u64;
        if file.size()? < need {
            return Err(StoreError::Corrupt(format!(
                "file holds {} bytes, layout needs {need}",
                file.size()?
            )));
        }
        let frames = resolve_pool_frames(opts.pool_frames, meta.total_pages() as u64)?;
        Ok(Store {
            file,
            wal,
            pool: BufferPool::new(frames),
            meta,
            recovery: stats,
            locks: Arc::new(LockTable::new()),
            buffered: 0,
        })
    }

    /// The page lock table + checkpoint epoch shared with
    /// [`crate::ReadView`]s opened via [`crate::ReadView::attach`].
    pub fn lock_table(&self) -> Arc<LockTable> {
        Arc::clone(&self.locks)
    }

    /// Commits buffered (WAL-appended) but not yet made durable by a
    /// [`Store::group_commit`].
    pub fn buffered_txns(&self) -> u64 {
        self.buffered
    }

    /// One fsync makes every buffered commit durable — the group-commit
    /// point — then a checkpoint folds the batch into the page file.
    /// Returns the number of transactions committed by the batch.
    pub fn group_commit(&mut self) -> Result<usize> {
        let n = self.group_commit_no_checkpoint()?;
        if n > 0 {
            self.checkpoint()?;
        }
        Ok(n)
    }

    /// [`Store::group_commit`] without the checkpoint: the batch is
    /// durable in the WAL, the page file is left stale (recovery replays
    /// it). This is the path whose fsync count the group-commit benchmark
    /// compares against per-transaction commits.
    pub fn group_commit_no_checkpoint(&mut self) -> Result<usize> {
        if self.buffered == 0 {
            return Ok(0);
        }
        self.wal.sync()?; // ---- group commit point ----
        self.wal.note_group_commit();
        let n = self.buffered as usize;
        self.buffered = 0;
        Ok(n)
    }

    /// Operational snapshot: layout counts, pool counters, WAL counters.
    pub fn stat(&self) -> StoreStat {
        StoreStat {
            n_tuples: self.meta.n_tuples as usize,
            n_params: self.meta.n_params as usize,
            next_txn: self.meta.next_txn,
            total_pages: self.meta.total_pages() as u64,
            pool_capacity: self.pool.capacity(),
            pool_resident: self.pool.resident(),
            pool_pinned: self.pool.pinned(),
            pool: self.pool.stats(),
            wal: self.wal.stats(),
            wal_len: self.wal.len(),
            buffered_txns: self.buffered,
        }
    }

    /// What recovery did when this store was opened.
    pub fn recovery(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// Number of persisted tuples.
    pub fn n_tuples(&self) -> usize {
        self.meta.n_tuples as usize
    }

    /// Number of persisted parameters.
    pub fn n_params(&self) -> usize {
        self.meta.n_params as usize
    }

    /// The next transaction id (the durability watermark).
    pub fn next_txn(&self) -> u64 {
        self.meta.next_txn
    }

    /// Decodes the full content: family components, weights, labels.
    pub fn content(&mut self) -> Result<StoreContent> {
        let meta = self.meta;
        let blob = self.read_stream(1, meta.blob_len as usize)?;
        let mut r = Reader::new(&blob);
        let flat = r.u32s(meta.n_tuples as usize * meta.tuple_arity as usize)?;
        let parameters = r.u32s(meta.n_params as usize * meta.param_arity as usize)?;
        let mut param_labels = Vec::with_capacity(meta.n_params as usize);
        for _ in 0..meta.n_params {
            param_labels.push(r.string()?);
        }
        let n_names = r.u32()? as usize;
        if n_names > 1 << 28 {
            return Err(StoreError::Corrupt(format!("implausible name count {n_names}")));
        }
        let mut element_names = Vec::with_capacity(n_names);
        for _ in 0..n_names {
            element_names.push(r.string()?);
        }
        let query_name = r.string()?;

        let answers = self.read_stream(meta.answer_first(), meta.answer_len())?;
        let mut a = Reader::new(&answers);
        let offsets = a.u32s(meta.n_params as usize + 1)?;
        let ids = a.u32s(meta.n_ids as usize)?;
        let universe = a.u32s(meta.n_universe as usize)?;

        let mut base = Vec::with_capacity(meta.n_tuples as usize);
        let mut delta = Vec::with_capacity(meta.n_tuples as usize);
        for i in 0..meta.n_tuples {
            let (b, d) = self.read_weight_entry(i)?;
            base.push(b);
            delta.push(d);
        }
        Ok(StoreContent {
            tuple_arity: meta.tuple_arity,
            param_arity: meta.param_arity,
            flat,
            parameters,
            offsets,
            ids,
            universe,
            base,
            delta,
            param_labels,
            element_names,
            query_name,
        })
    }

    /// The `(base, delta)` weight entry of one tuple.
    pub fn weight_entry(&mut self, tuple_id: u32) -> Result<(i64, i64)> {
        if tuple_id >= self.meta.n_tuples {
            return Err(StoreError::Invalid(format!(
                "tuple {tuple_id} out of range ({} tuples)",
                self.meta.n_tuples
            )));
        }
        self.read_weight_entry(tuple_id)
    }

    /// Starts a transaction. Dropping the returned handle without
    /// committing aborts it: dirty frames are discarded (or, with a
    /// group-commit batch pending, restored to their pre-transaction
    /// images) and the store rereads committed state on next access.
    pub fn begin(&mut self) -> Txn<'_> {
        let saved_meta = self.meta;
        let id = self.meta.next_txn;
        // With buffered commits in flight, dirty frames hold *committed*
        // content that a plain discard would lose — capture pre-images of
        // every page this transaction touches instead.
        let capture = self.buffered > 0;
        Txn { store: self, id, saved_meta, done: false, capture, pre: Vec::new() }
    }

    // -- internals ---------------------------------------------------------

    fn read_weight_entry(&mut self, i: u32) -> Result<(i64, i64)> {
        let (page_no, off) = self.weight_slot(i);
        let kind = self.meta.kind_of(page_no);
        let page = self.pool.page(self.file.as_mut(), page_no, Some(kind))?;
        let base = i64::from_le_bytes(page[off..off + 8].try_into().expect("8"));
        let delta = i64::from_le_bytes(page[off + 8..off + 16].try_into().expect("8"));
        Ok((base, delta))
    }

    fn write_weight_entry(&mut self, i: u32, base: i64, delta: i64, init: bool) -> Result<()> {
        let (page_no, off) = self.weight_slot(i);
        let kind = self.meta.kind_of(page_no);
        let expect = if init { None } else { Some(kind) };
        let page = self.pool.page_mut(self.file.as_mut(), page_no, init, expect)?;
        page[off..off + 8].copy_from_slice(&base.to_le_bytes());
        page[off + 8..off + 16].copy_from_slice(&delta.to_le_bytes());
        Ok(())
    }

    fn weight_slot(&self, i: u32) -> (u32, usize) {
        let page_no = self.meta.weight_first() + i / WEIGHTS_PER_PAGE as u32;
        let off = PAGE_HDR + (i as usize % WEIGHTS_PER_PAGE) * 16;
        (page_no, off)
    }

    /// Writes a byte stream across consecutive pages, fully overwriting
    /// each touched page's payload (so no disk read is needed).
    fn write_stream(&mut self, first_page: u32, bytes: &[u8]) -> Result<()> {
        let pages = bytes.len().div_ceil(PAGE_PAYLOAD).max(1);
        for i in 0..pages {
            let chunk = &bytes[(i * PAGE_PAYLOAD).min(bytes.len())
                ..((i + 1) * PAGE_PAYLOAD).min(bytes.len())];
            let page_no = first_page + i as u32;
            let page = self.pool.page_mut(self.file.as_mut(), page_no, true, None)?;
            let payload = &mut page[PAGE_HDR..];
            payload[..chunk.len()].copy_from_slice(chunk);
            payload[chunk.len()..].fill(0);
        }
        Ok(())
    }

    fn read_stream(&mut self, first_page: u32, len: usize) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(len);
        let pages = len.div_ceil(PAGE_PAYLOAD);
        for i in 0..pages {
            let page_no = first_page + i as u32;
            let kind = self.meta.kind_of(page_no);
            let page = self.pool.page(self.file.as_mut(), page_no, Some(kind))?;
            let take = (len - out.len()).min(PAGE_PAYLOAD);
            out.extend_from_slice(&page[PAGE_HDR..PAGE_HDR + take]);
        }
        Ok(out)
    }

    fn write_meta_page(&mut self) -> Result<()> {
        let meta = self.meta;
        let page = self.pool.page_mut(self.file.as_mut(), 0, true, None)?;
        meta.encode(&mut page[PAGE_HDR..]);
        Ok(())
    }

    /// The commit protocol (see module docs). With `checkpoint = false`
    /// the transaction is durable in the WAL but the page file is left
    /// untouched — the state a crash-after-commit leaves behind, used by
    /// the recovery benchmarks and tests.
    fn commit_txn(&mut self, id: u64, checkpoint: bool) -> Result<CommitStats> {
        let stats = self.log_commit(id)?;
        self.wal.sync()?; // ---- commit point ----
        if checkpoint {
            self.checkpoint()?;
        }
        Ok(stats)
    }

    /// Seals this transaction's (not-yet-logged) dirty pages, appends
    /// their after-images plus a commit record to the WAL — without any
    /// fsync. Durability comes from the caller: a `wal.sync()` right
    /// after (plain commit) or a later group commit covering the batch.
    fn log_commit(&mut self, id: u64) -> Result<CommitStats> {
        self.meta.next_txn = id + 1;
        self.write_meta_page()?;
        let to_log = self.pool.unlogged_dirty_pages();
        let wal_before = self.wal.len();
        for &page_no in &to_log {
            let kind = self.meta.kind_of(page_no);
            self.pool.seal_resident(page_no, id, kind)?;
            let bytes = self.pool.resident_page(page_no)?;
            // borrow: copy out to appease the wal's &mut self
            let image = bytes.to_vec();
            self.wal.append_page_image(id, page_no, &image)?;
            self.pool.set_logged(page_no);
        }
        self.wal.append_commit(id)?;
        Ok(CommitStats { txn: id, pages: to_log.len(), wal_bytes: self.wal.len() - wal_before })
    }

    /// Checkpoint: data pages first, then meta, then WAL reset — each
    /// step synced before the next (see module docs for why). Page writes
    /// take exclusive locks and the whole window is bracketed by the
    /// checkpoint epoch, so concurrent [`crate::ReadView`]s never observe
    /// a half-applied checkpoint.
    fn checkpoint(&mut self) -> Result<()> {
        let locks = Arc::clone(&self.locks);
        let dirty = self.pool.dirty_pages();
        locks.begin_checkpoint();
        let result = self.checkpoint_writeback(&locks, &dirty);
        locks.end_checkpoint();
        result?;
        self.pool.mark_all_clean();
        Ok(())
    }

    fn checkpoint_writeback(&mut self, locks: &LockTable, dirty: &[u32]) -> Result<()> {
        for &page_no in dirty.iter().filter(|&&p| p != 0) {
            let image = self.pool.resident_page(page_no)?.to_vec();
            let _x = locks.lock_exclusive(page_no);
            self.file.write_at(&image, page_no as u64 * PAGE_SIZE as u64)?;
        }
        self.file.sync()?;
        if dirty.contains(&0) {
            let meta_image = self.pool.resident_page(0)?.to_vec();
            let _x = locks.lock_exclusive(0);
            self.file.write_at(&meta_image, 0)?;
        }
        self.file.sync()?;
        self.wal.reset()?;
        Ok(())
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Buffered commits are only waiting on their group fsync; flush
        // them best-effort so a clean shutdown never loses an
        // acknowledged-to-the-batch transaction. (A crash instead leaves
        // recovery to replay whatever the WAL kept.)
        if self.buffered > 0 {
            let _ = self.wal.sync();
        }
    }
}

/// Operational snapshot of an open store — `qpwm store stat` and the
/// serve tier's `/metrics` render exactly these numbers.
#[derive(Debug, Clone, Copy)]
pub struct StoreStat {
    /// Persisted tuples.
    pub n_tuples: usize,
    /// Persisted parameters.
    pub n_params: usize,
    /// Next transaction id (durability watermark).
    pub next_txn: u64,
    /// Pages in the store layout (meta + blob + weights + answers).
    pub total_pages: u64,
    /// Configured pool frame count.
    pub pool_capacity: usize,
    /// Frames currently resident.
    pub pool_resident: usize,
    /// Dirty (pinned, unevictable) frames.
    pub pool_pinned: usize,
    /// Pool hit/miss/eviction counters.
    pub pool: PoolStats,
    /// WAL record/fsync/group-commit counters.
    pub wal: WalStats,
    /// Bytes currently in the WAL.
    pub wal_len: u64,
    /// Commits awaiting a group fsync.
    pub buffered_txns: u64,
}

/// True when the durable copy of `page_no` verifies and already carries
/// txn `txn`'s effects (its LSN is at or above `txn`).
fn disk_page_current(file: &dyn VfsFile, page_no: u32, txn: u64) -> bool {
    let off = page_no as u64 * PAGE_SIZE as u64;
    let Ok(size) = file.size() else { return false };
    if off + PAGE_SIZE as u64 > size {
        return false;
    }
    let mut buf = vec![0u8; PAGE_SIZE];
    if file.read_at(&mut buf, off).is_err() {
        return false;
    }
    page::verify(&buf, page_no, None).is_ok() && page::lsn(&buf) >= txn
}

pub(crate) fn pages_for(bytes: usize) -> Result<u32> {
    let pages = bytes.div_ceil(PAGE_PAYLOAD).max(1);
    u32::try_from(pages).map_err(|_| StoreError::Invalid("content too large".into()))
}

pub(crate) fn pages_for_weights(n_tuples: usize) -> Result<u32> {
    let pages = n_tuples.div_ceil(WEIGHTS_PER_PAGE).max(1);
    u32::try_from(pages).map_err(|_| StoreError::Invalid("too many tuples".into()))
}

/// Reads and validates the meta page straight from the file (bypassing
/// the pool — used before the layout is known).
pub(crate) fn read_meta_direct(file: &dyn VfsFile) -> Result<Meta> {
    if file.size()? < PAGE_SIZE as u64 {
        return Err(StoreError::Corrupt("file smaller than one page".into()));
    }
    let mut page = vec![0u8; PAGE_SIZE];
    file.read_at(&mut page, 0)?;
    page::verify(&page, 0, Some(kind::META))?;
    Meta::decode(&page[PAGE_HDR..])
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

/// An open transaction. All mutations stay in the buffer pool (no-steal)
/// until [`Txn::commit`]; dropping the handle aborts.
pub struct Txn<'a> {
    store: &'a mut Store,
    id: u64,
    saved_meta: Meta,
    done: bool,
    /// Pre-image capture is active (a group-commit batch was pending when
    /// this transaction began).
    capture: bool,
    /// First-touch pre-images: `None` means the page was not resident
    /// (abort drops the frame; the disk copy is the committed one).
    pre: Vec<(u32, crate::pool::FrameState)>,
}

impl Txn<'_> {
    /// This transaction's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Records a page's pre-image before this transaction first touches
    /// it (no-op unless a buffered batch made capture necessary).
    fn capture_page(&mut self, page_no: u32) {
        if !self.capture || self.pre.iter().any(|(p, _)| *p == page_no) {
            return;
        }
        self.pre.push((page_no, self.store.pool.frame_state(page_no)));
    }

    /// Sets the base (true) weight of a tuple — the Theorem 7 weight-only
    /// update path. The mark delta is untouched, so the published weight
    /// moves with the base and the detector's differential read survives.
    pub fn set_base(&mut self, tuple_id: u32, value: i64) -> Result<()> {
        let (_, delta) = self.check_tuple(tuple_id)?;
        self.capture_page(self.store.weight_slot(tuple_id).0);
        self.store.write_weight_entry(tuple_id, value, delta, false)
    }

    /// Sets the mark delta of a tuple — the re-marking path, fed by the
    /// sparse plans of `qpwm_core::incremental::remark_touched`.
    pub fn set_delta(&mut self, tuple_id: u32, value: i64) -> Result<()> {
        let (base, _) = self.check_tuple(tuple_id)?;
        self.capture_page(self.store.weight_slot(tuple_id).0);
        self.store.write_weight_entry(tuple_id, base, value, false)
    }

    /// Replaces one parameter's active set — the Theorem 8
    /// type-preserving structural update. The CSR and universe are
    /// rewritten (the answer section grows if needed); tuple ids must
    /// already be interned.
    pub fn set_answer_ids(&mut self, param: usize, new_ids: &[u32]) -> Result<()> {
        let meta = self.store.meta;
        if param >= meta.n_params as usize {
            return Err(StoreError::Invalid(format!(
                "parameter {param} out of range ({} params)",
                meta.n_params
            )));
        }
        let mut set: Vec<u32> = new_ids.to_vec();
        set.sort_unstable();
        set.dedup();
        if set.last().is_some_and(|&m| m >= meta.n_tuples) {
            return Err(StoreError::Invalid("answer id out of range".into()));
        }
        let answers = self.store.read_stream(meta.answer_first(), meta.answer_len())?;
        let mut r = Reader::new(&answers);
        let offsets = r.u32s(meta.n_params as usize + 1)?;
        let ids = r.u32s(meta.n_ids as usize)?;

        let (lo, hi) = (offsets[param] as usize, offsets[param + 1] as usize);
        let mut new_ids_all = Vec::with_capacity(ids.len() - (hi - lo) + set.len());
        new_ids_all.extend_from_slice(&ids[..lo]);
        new_ids_all.extend_from_slice(&set);
        new_ids_all.extend_from_slice(&ids[hi..]);
        let shift = set.len() as i64 - (hi - lo) as i64;
        let mut new_offsets = offsets.clone();
        for o in new_offsets.iter_mut().skip(param + 1) {
            *o = (*o as i64 + shift) as u32;
        }
        let mut new_universe = new_ids_all.clone();
        new_universe.sort_unstable();
        new_universe.dedup();

        let mut bytes = Vec::with_capacity(
            4 * (new_offsets.len() + new_ids_all.len() + new_universe.len()),
        );
        for &x in new_offsets.iter().chain(&new_ids_all).chain(&new_universe) {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        let needed = pages_for(bytes.len())?;
        for p in meta.answer_first()..meta.answer_first() + meta.answer_pages.max(needed) {
            self.capture_page(p);
        }
        // The answer section is last, so growing it only appends pages.
        self.store.meta.n_ids = new_ids_all.len() as u32;
        self.store.meta.n_universe = new_universe.len() as u32;
        self.store.meta.answer_pages = meta.answer_pages.max(needed);
        self.store.write_stream(meta.answer_first(), &bytes)?;
        // Freshly-grown tail pages beyond the stream still need sealing;
        // write_stream only touched pages the stream reached.
        for p in meta.answer_first() + needed..meta.answer_first() + self.store.meta.answer_pages
        {
            let page = self.store.pool.page_mut(self.store.file.as_mut(), p, true, None)?;
            page[PAGE_HDR..].fill(0);
        }
        Ok(())
    }

    /// Commits: WAL append + fsync (the durability point), then
    /// checkpoint into the page file.
    pub fn commit(mut self) -> Result<CommitStats> {
        self.done = true;
        self.store.commit_txn(self.id, true)
    }

    /// Commits durably into the WAL but skips the checkpoint, leaving
    /// the page file stale — exactly the state a crash immediately after
    /// the commit point leaves behind. The next [`Store::open`] replays
    /// it. For recovery tests and benchmarks.
    pub fn commit_no_checkpoint(mut self) -> Result<CommitStats> {
        self.done = true;
        self.store.commit_txn(self.id, false)
    }

    /// Appends this transaction's images and commit record to the WAL
    /// **without fsync**: it becomes durable — atomically with every
    /// other buffered commit — at the next [`Store::group_commit`]. A
    /// crash before that loses the whole suffix of the batch after the
    /// last record the OS happened to flush; recovery restores a clean
    /// prefix of the batch, never a mix.
    pub fn commit_buffered(mut self) -> Result<CommitStats> {
        self.done = true;
        let stats = self.store.log_commit(self.id)?;
        self.store.buffered += 1;
        Ok(stats)
    }

    fn check_tuple(&mut self, tuple_id: u32) -> Result<(i64, i64)> {
        if tuple_id >= self.store.meta.n_tuples {
            return Err(StoreError::Invalid(format!(
                "tuple {tuple_id} out of range ({} tuples)",
                self.store.meta.n_tuples
            )));
        }
        self.store.read_weight_entry(tuple_id)
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        if !self.done {
            if self.capture {
                // Committed-but-uncheckpointed frames from the pending
                // batch must survive: restore exactly the pages this
                // transaction touched to their pre-images.
                for (page_no, pre) in std::mem::take(&mut self.pre) {
                    match pre {
                        Some((data, dirty, logged)) => {
                            self.store.pool.restore_frame(page_no, data, dirty, logged);
                        }
                        None => self.store.pool.drop_frame(page_no),
                    }
                }
            } else {
                self.store.pool.discard_dirty();
            }
            self.store.meta = self.saved_meta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::SimVfs;
    use qpwm_structures::AnswerFamily;

    /// A small family: params [i] with sets {2i, 2i+1} over 1-ary tuples.
    fn sample_content(n_pairs: u32) -> StoreContent {
        let params: Vec<Vec<u32>> = (0..n_pairs).map(|i| vec![i]).collect();
        let sets: Vec<Vec<Vec<u32>>> =
            (0..n_pairs).map(|i| vec![vec![2 * i], vec![2 * i + 1]]).collect();
        let family = AnswerFamily::from_nested(params, &sets);
        let mut base = Weights::new(1);
        let mut marked = Weights::new(1);
        for e in 0..2 * n_pairs {
            base.set(&[e], 100 + e as i64);
            // mark: +1 on even, -1 on odd
            marked.set(&[e], 100 + e as i64 + if e % 2 == 0 { 1 } else { -1 });
        }
        let labels = (0..n_pairs).map(|i| format!("p{i}")).collect();
        let names = (0..2 * n_pairs).map(|e| format!("n{e}")).collect();
        StoreContent::from_family(&family, &base, &marked, labels, names, "q".into())
            .expect("content")
    }

    #[test]
    fn create_open_roundtrip_preserves_everything() {
        let vfs = SimVfs::new();
        let content = sample_content(8);
        Store::create(&vfs, "db", &content).expect("create");
        let mut store = Store::open(&vfs, "db").expect("open");
        assert_eq!(store.recovery().replayed_txns, 0, "clean open replays nothing");
        let back = store.content().expect("content");
        assert_eq!(back, content);
        let family = back.family().expect("family");
        assert_eq!(family.len(), 8);
        assert_eq!(back.marked_weights().get(&[0]), 101);
        assert_eq!(back.base_weights().get(&[0]), 100);
        assert_eq!(back.lookup(&[5]), Some(5));
        assert_eq!(back.lookup(&[99]), None);
    }

    #[test]
    fn weight_txn_commit_and_abort() {
        let vfs = SimVfs::new();
        Store::create(&vfs, "db", &sample_content(4)).expect("create");
        let mut store = Store::open(&vfs, "db").expect("open");
        // abort: drop without commit
        {
            let mut txn = store.begin();
            txn.set_base(0, 999).expect("set");
        }
        assert_eq!(store.weight_entry(0).expect("entry"), (100, 1), "abort rolled back");
        // commit
        let mut txn = store.begin();
        txn.set_base(0, 999).expect("set");
        txn.set_delta(1, -5).expect("set");
        let stats = txn.commit().expect("commit");
        assert!(stats.pages >= 2, "weight page + meta page");
        assert_eq!(store.weight_entry(0).expect("entry"), (999, 1));
        assert_eq!(store.weight_entry(1).expect("entry"), (101, -5));
        // durable across reopen
        drop(store);
        let mut store = Store::open(&vfs, "db").expect("reopen");
        assert_eq!(store.weight_entry(0).expect("entry"), (999, 1));
        assert_eq!(store.next_txn(), 3, "create was txn 1, update txn 2");
    }

    #[test]
    fn uncheckpointed_commit_is_recovered_from_the_wal() {
        let vfs = SimVfs::new();
        Store::create(&vfs, "db", &sample_content(4)).expect("create");
        let mut store = Store::open(&vfs, "db").expect("open");
        let mut txn = store.begin();
        txn.set_base(2, 777).expect("set");
        txn.commit_no_checkpoint().expect("commit");
        drop(store); // crash: page file never saw the txn
        let mut store = Store::open(&vfs, "db").expect("recover");
        assert_eq!(store.recovery().replayed_txns, 1);
        assert!(store.recovery().replayed_pages >= 2);
        assert_eq!(store.weight_entry(2).expect("entry"), (777, 1));
        // recovery checkpointed implicitly: a second open replays nothing
        drop(store);
        let store = Store::open(&vfs, "db").expect("reopen");
        assert_eq!(store.recovery().replayed_txns, 0);
        assert_eq!(store.recovery().wal_records, 0, "wal was reset");
    }

    #[test]
    fn type_preserving_update_rewrites_the_answer_section() {
        let vfs = SimVfs::new();
        Store::create(&vfs, "db", &sample_content(4)).expect("create");
        let mut store = Store::open(&vfs, "db").expect("open");
        let mut txn = store.begin();
        // param 1 now answers {0, 7} instead of {2, 3}
        txn.set_answer_ids(1, &[7, 0]).expect("set");
        txn.commit().expect("commit");
        drop(store);
        let mut store = Store::open(&vfs, "db").expect("reopen");
        let content = store.content().expect("content");
        let family = content.family().expect("family");
        assert_eq!(family.active_ids(1), &[0, 7]);
        assert_eq!(family.active_ids(0), &[0, 1], "other sets untouched");
        // universe recomputed: 2 and 3 dropped out
        assert!(!content.universe.contains(&2));
        assert!(!content.universe.contains(&3));
    }

    #[test]
    fn out_of_range_ops_are_rejected() {
        let vfs = SimVfs::new();
        Store::create(&vfs, "db", &sample_content(2)).expect("create");
        let mut store = Store::open(&vfs, "db").expect("open");
        let mut txn = store.begin();
        assert!(txn.set_base(999, 0).is_err());
        assert!(txn.set_answer_ids(99, &[0]).is_err());
        assert!(txn.set_answer_ids(0, &[999]).is_err());
    }

    #[test]
    fn open_rejects_garbage() {
        let vfs = SimVfs::new();
        let mut f = vfs.open("junk", true).expect("open");
        f.write_at(&[0xAB; 8192], 0).expect("write");
        f.sync().expect("sync");
        drop(f);
        assert!(matches!(Store::open(&vfs, "junk"), Err(StoreError::Corrupt(_))));
        assert!(Store::open(&vfs, "missing").is_err());
    }
}
