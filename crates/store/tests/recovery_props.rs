//! Property-style recovery tests: replay idempotence across randomized
//! workloads (the hermetic stand-in for a proptest suite, driven by the
//! in-tree `qpwm-rng`) and bit-for-bit thread-count invariance.

use qpwm_rng::Rng;
use qpwm_store::vfs::{CrashPolicy, SimVfs};
use qpwm_store::{Store, StoreContent};
use qpwm_structures::{AnswerFamily, Weights};

fn random_content(rng: &mut Rng) -> StoreContent {
    let n_params = rng.gen_range(2u32..10);
    let params: Vec<Vec<u32>> = (0..n_params).map(|i| vec![i]).collect();
    let sets: Vec<Vec<Vec<u32>>> = (0..n_params)
        .map(|i| {
            let k = rng.gen_range(1u32..5);
            (0..k).map(|j| vec![(i * 7 + j * 3) % (2 * n_params)]).collect()
        })
        .collect();
    let family = AnswerFamily::from_nested(params, &sets);
    let mut base = Weights::new(1);
    let mut marked = Weights::new(1);
    for (_, t) in family.arena().iter() {
        let w = rng.gen_range(-500i64..500);
        base.set(t, w);
        marked.set(t, w + rng.gen_range(-1i64..2));
    }
    let labels = (0..n_params).map(|i| format!("p{i}")).collect();
    StoreContent::from_family(&family, &base, &marked, labels, Vec::new(), "q".into())
        .expect("content")
}

/// Runs a randomized sequence of transactions (committed, WAL-only, and
/// aborted), then crashes at a random op during one more update.
fn random_workload(vfs: &SimVfs, rng: &mut Rng) {
    let content = random_content(rng);
    Store::create(vfs, "db", &content).expect("create");
    let mut store = Store::open(vfs, "db").expect("open");
    let n = store.n_tuples() as u32;
    for _ in 0..rng.gen_range(1u32..4) {
        let mut txn = store.begin();
        for _ in 0..rng.gen_range(1u32..6) {
            let id = rng.gen_range(0u32..n);
            txn.set_base(id, rng.gen_range(-1000i64..1000)).expect("set");
        }
        match rng.gen_range(0u32..3) {
            0 => drop(txn), // abort
            1 => {
                txn.commit().expect("commit");
            }
            _ => {
                txn.commit_no_checkpoint().expect("commit");
            }
        }
    }
    // One final update that dies at a random mutating op.
    vfs.reset_ops();
    let before = vfs.ops();
    let doomed = (|| -> qpwm_store::Result<()> {
        let mut txn = store.begin();
        let id = rng.gen_range(0u32..n);
        txn.set_base(id, -7777)?;
        txn.commit()?;
        Ok(())
    })();
    doomed.expect("no policy yet, must succeed");
    let total = vfs.ops() - before;
    let crash_op = rng.gen_range(0u64..total);
    // Re-arm and crash a fresh copy of the same logical update.
    drop(store);
    vfs.reset_ops();
    vfs.set_policy(Some(CrashPolicy { crash_op, torn: rng.gen_bool(0.5) }));
    let _ = (|| -> qpwm_store::Result<()> {
        let mut store = Store::open(vfs, "db")?;
        let mut txn = store.begin();
        let id = rng.gen_range(0u32..n);
        txn.set_base(id, 4242)?;
        txn.commit()?;
        Ok(())
    })();
    vfs.restart();
}

#[test]
fn wal_replay_is_idempotent_across_random_workloads() {
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0x5EED_0000 + seed);
        let vfs = SimVfs::new();
        random_workload(&vfs, &mut rng);

        // Recover once.
        let mut store = Store::open(&vfs, "db")
            .unwrap_or_else(|e| panic!("seed {seed}: first recovery failed: {e}"));
        let once = store.content().expect("content");
        drop(store);
        let bytes_once = vfs.durable_bytes("db").expect("file");

        // Recover twice: the second pass must be a no-op on both the
        // decoded content and the raw durable bytes.
        let mut store = Store::open(&vfs, "db")
            .unwrap_or_else(|e| panic!("seed {seed}: second recovery failed: {e}"));
        let twice = store.content().expect("content");
        assert_eq!(store.recovery().replayed_txns, 0, "seed {seed}: second pass replayed");
        drop(store);
        let bytes_twice = vfs.durable_bytes("db").expect("file");

        assert_eq!(once, twice, "seed {seed}: content drifted across recoveries");
        assert_eq!(bytes_once, bytes_twice, "seed {seed}: bytes drifted across recoveries");
    }
}

#[test]
fn recovery_bytes_are_identical_across_thread_counts() {
    let mut reference: Option<(Vec<u8>, StoreContent)> = None;
    for threads in [1usize, 2, 4] {
        qpwm_par::set_threads(threads);
        let mut rng = Rng::seed_from_u64(0xD17E_0001);
        let vfs = SimVfs::new();
        random_workload(&vfs, &mut rng);
        let mut store = Store::open(&vfs, "db").expect("recover");
        let content = store.content().expect("content");
        drop(store);
        let bytes = vfs.durable_bytes("db").expect("file");
        match &reference {
            None => reference = Some((bytes, content)),
            Some((b, c)) => {
                assert_eq!(&bytes, b, "{threads} threads: recovered bytes differ");
                assert_eq!(&content, c, "{threads} threads: recovered content differs");
            }
        }
    }
    qpwm_par::set_threads(1);
}
