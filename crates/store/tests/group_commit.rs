//! Group-commit semantics: batched durability, prefix-consistent crash
//! recovery across batch boundaries, abort isolation inside a pending
//! batch, and idempotent (LSN-gated) replay across reopens.

use qpwm_store::vfs::{CrashPolicy, SimVfs};
use qpwm_store::{Store, StoreContent, StoreOptions};

const N: u32 = 64; // tuples

/// One parameter per tuple pair, unary tuples `[e]`, base `10 + e`.
fn content() -> StoreContent {
    let ids: Vec<u32> = (0..N).collect();
    StoreContent {
        tuple_arity: 1,
        param_arity: 1,
        flat: ids.clone(),
        parameters: (0..N / 2).collect(),
        offsets: (0..=N / 2).map(|i| 2 * i).collect(),
        ids: ids.clone(),
        universe: ids,
        base: (0..N).map(|e| 10 + e as i64).collect(),
        delta: vec![0; N as usize],
        param_labels: (0..N / 2).map(|i| format!("p{i}")).collect(),
        element_names: Vec::new(),
        query_name: "q".into(),
    }
}

/// Batch txn `k` (1-based) sets `delta[k-1] = 100 + k`.
fn apply_batch_txn(store: &mut Store, k: u32) -> qpwm_store::Result<()> {
    let mut txn = store.begin();
    txn.set_delta(k - 1, 100 + k as i64)?;
    txn.commit_buffered().map(|_| ())
}

/// The delta vector after the first `k` batch txns.
fn deltas_after(store: &mut Store) -> Vec<i64> {
    store.content().expect("content").delta
}

fn expected_deltas(k: usize) -> Vec<i64> {
    let mut d = vec![0i64; N as usize];
    for (i, slot) in d.iter_mut().take(k).enumerate() {
        *slot = 100 + (i as i64 + 1);
    }
    d
}

#[test]
fn group_commit_makes_the_whole_batch_durable_with_one_wal_fsync() {
    let vfs = SimVfs::new();
    let mut store = Store::create(&vfs, "db", &content()).expect("create");
    let fsyncs_before = store.stat().wal.fsyncs;
    const BATCH: u32 = 16;
    for k in 1..=BATCH {
        apply_batch_txn(&mut store, k).expect("buffered");
    }
    assert_eq!(store.buffered_txns(), BATCH as u64);
    let n = store.group_commit_no_checkpoint().expect("group commit");
    assert_eq!(n, BATCH as usize);
    assert_eq!(store.buffered_txns(), 0);
    let stats = store.stat();
    assert_eq!(
        stats.wal.fsyncs - fsyncs_before,
        1,
        "a 16-txn batch must cost exactly one WAL fsync"
    );
    assert_eq!(stats.wal.group_commits, 1);
    drop(store);

    // the batch survives a crash (pending bytes are lost, synced stay)
    vfs.restart();
    let mut store = Store::open(&vfs, "db").expect("recover");
    assert!(store.recovery().replayed_txns >= 1, "batch replays from the WAL");
    assert_eq!(deltas_after(&mut store), expected_deltas(BATCH as usize));
}

#[test]
fn crash_inside_a_batch_recovers_a_txn_prefix() {
    const BATCH: u32 = 6;
    let vfs = SimVfs::new();
    drop(Store::create(&vfs, "db", &content()).expect("create"));
    let base_snapshot = vfs.snapshot();

    // dry run to count the mutating ops of batch + group commit
    vfs.reset_ops();
    {
        let mut store = Store::open(&vfs, "db").expect("open");
        for k in 1..=BATCH {
            apply_batch_txn(&mut store, k).expect("buffered");
        }
        store.group_commit().expect("group commit");
    }
    let total_ops = vfs.ops();
    assert!(total_ops > 0);

    let allowed: Vec<Vec<i64>> = (0..=BATCH as usize).map(expected_deltas).collect();
    let mut seen_rollback = false;
    let mut seen_full_batch = false;
    for torn in [false, true] {
        for op in 0..total_ops {
            vfs.restore(&base_snapshot);
            vfs.set_policy(Some(CrashPolicy { crash_op: op, torn }));
            let died = (|| -> qpwm_store::Result<()> {
                let mut store = Store::open(&vfs, "db")?;
                for k in 1..=BATCH {
                    apply_batch_txn(&mut store, k)?;
                }
                store.group_commit().map(|_| ())
            })();
            assert!(died.is_err(), "op {op} torn={torn}: must crash");
            vfs.restart();
            let mut store = Store::open(&vfs, "db")
                .unwrap_or_else(|e| panic!("op {op} torn={torn}: recovery failed: {e}"));
            let got = deltas_after(&mut store);
            let Some(k) = allowed.iter().position(|want| *want == got) else {
                panic!("op {op} torn={torn}: recovered deltas are not a batch prefix: {got:?}");
            };
            // group commit is the only durability point in this run, so
            // a clean crash recovers all txns or none; a torn sync may
            // surface any prefix of the WAL — all are committed states
            // of the batch, never an interleaving.
            if !torn {
                assert!(
                    k == 0 || k == BATCH as usize,
                    "op {op}: clean crash must be all-or-nothing, got prefix {k}"
                );
            }
            seen_rollback |= k == 0;
            seen_full_batch |= k == BATCH as usize;
        }
    }
    assert!(seen_rollback, "some crash point must roll the whole batch back");
    assert!(seen_full_batch, "some crash point must land after the group commit");
}

#[test]
fn abort_inside_a_pending_batch_keeps_buffered_commits() {
    let vfs = SimVfs::new();
    let mut store = Store::create(&vfs, "db", &content()).expect("create");
    apply_batch_txn(&mut store, 1).expect("buffered");
    apply_batch_txn(&mut store, 2).expect("buffered");
    {
        // this txn touches the same weight page as the buffered commits,
        // then aborts — the pre-image capture must restore the buffered
        // content, not the on-disk (stale) page
        let mut txn = store.begin();
        txn.set_delta(0, -777).expect("delta");
        txn.set_delta(40, -888).expect("delta");
        // dropped without commit => abort
    }
    store.group_commit().expect("group commit");
    drop(store);
    let mut store = Store::open(&vfs, "db").expect("reopen");
    assert_eq!(
        deltas_after(&mut store),
        expected_deltas(2),
        "abort must erase only its own effects"
    );
}

#[test]
fn replay_is_idempotent_across_interrupted_recoveries() {
    let vfs = SimVfs::new();
    drop(Store::create(&vfs, "db", &content()).expect("create"));

    // leave a committed-but-uncheckpointed txn in the WAL
    {
        let mut store = Store::open(&vfs, "db").expect("open");
        let mut txn = store.begin();
        for e in 0..N {
            txn.set_delta(e, 7).expect("delta");
        }
        txn.commit_no_checkpoint().expect("commit");
    }
    vfs.restart();
    let wal_state = vfs.snapshot();

    // dry run: count recovery's ops and capture the recovered state
    vfs.reset_ops();
    let want = {
        let mut store = Store::open(&vfs, "db").expect("recover");
        assert!(store.recovery().replayed_pages > 0, "dry run must replay");
        assert_eq!(store.recovery().skipped_pages, 0, "first recovery skips nothing");
        deltas_after(&mut store)
    };
    let recover_ops = vfs.ops();

    // crash recovery at every op; the re-recovery must reach the same
    // state, and at least one crash point (after the data-page sync)
    // must exercise the LSN gate instead of rewriting pages
    let mut saw_skip = false;
    for op in 0..recover_ops {
        vfs.restore(&wal_state);
        vfs.set_policy(Some(CrashPolicy { crash_op: op, torn: false }));
        assert!(Store::open(&vfs, "db").is_err(), "op {op}: recovery should crash");
        vfs.restart();
        let mut store = Store::open(&vfs, "db")
            .unwrap_or_else(|e| panic!("op {op}: re-recovery failed: {e}"));
        assert_eq!(deltas_after(&mut store), want, "op {op}: state drifted");
        saw_skip |= store.recovery().skipped_pages > 0;
    }
    assert!(saw_skip, "no re-recovery exercised the idempotent-replay (LSN skip) path");
}

#[test]
fn open_serves_without_a_prior_checkpoint_and_without_double_replay() {
    let vfs = SimVfs::new();
    drop(Store::create(&vfs, "db", &content()).expect("create"));
    {
        let mut store = Store::open(&vfs, "db").expect("open");
        let mut txn = store.begin();
        txn.set_delta(3, 42).expect("delta");
        txn.commit_no_checkpoint().expect("commit");
    }
    vfs.restart();

    // first open recovers and resets the WAL...
    {
        let mut store = Store::open(&vfs, "db").expect("recover");
        assert_eq!(store.recovery().replayed_txns, 1);
        assert_eq!(deltas_after(&mut store)[3], 42);
        // ...and serves immediately: no checkpoint call needed before use
        let mut txn = store.begin();
        txn.set_delta(4, 43).expect("delta");
        txn.commit().expect("commit");
    }
    // second open finds nothing left to replay
    let mut store = Store::open(&vfs, "db").expect("reopen");
    assert_eq!(store.recovery().replayed_txns, 0, "no double replay after recovery");
    assert_eq!(store.recovery().replayed_pages, 0);
    let d = deltas_after(&mut store);
    assert_eq!((d[3], d[4]), (42, 43));
}

#[test]
fn pool_frames_option_bounds_the_working_set() {
    let vfs = SimVfs::new();
    let opts = StoreOptions { pool_frames: Some(4) };
    let mut store = Store::create_with(&vfs, "db", &content(), &opts).expect("create");
    let stat = store.stat();
    assert_eq!(stat.pool_capacity, 4);
    // a full content read with 4 frames must evict
    drop(store.content().expect("content"));
    assert!(store.stat().pool.misses > 0);
    drop(store);
    // below the floor is a configuration error
    let bad = StoreOptions { pool_frames: Some(1) };
    assert!(Store::open_with(&vfs, "db", &bad).is_err(), "pool-frames 1 must be rejected");
}
