//! Seeded crash-injection sweep.
//!
//! The store's contract: after a crash at *any* mutating-op index —
//! including torn writes and torn syncs — recovery restores exactly one
//! of the committed states that bracket the interrupted transaction, and
//! the detector's claim check over the recovered store gives the same
//! verdict and significance as it gave over that committed state before
//! the crash. The sweep kills the store at every write/sync/truncate a
//! re-marking update performs, both cleanly and torn, and asserts the
//! invariant each time.

use qpwm_core::detect::{ClaimCheck, Verdict, DEFAULT_DELTA};
use qpwm_core::incremental::remark_touched;
use qpwm_core::{HonestServer, ObservedWeights, Pair, PairMarking};
use qpwm_store::vfs::{CrashPolicy, SimVfs};
use qpwm_store::{Store, StoreContent, StoreError};
use qpwm_structures::{AnswerFamily, WeightKey, Weights};
use std::collections::HashSet;

const N_PARAMS: u32 = 24;
const MESSAGE: [bool; 24] = [
    true, false, true, true, false, false, true, false, true, true, false, true, false, true,
    true, false, true, false, false, true, true, false, false, true,
];

/// Family: parameter `i` answers `{2i, 2i+1}` (1-ary tuples), so the
/// pair `(2i, 2i+1)` is separated by no set — the zero-distortion pairs
/// of Proposition 1 — and each carries one message bit.
fn fixture() -> (AnswerFamily, Weights, PairMarking) {
    let params: Vec<Vec<u32>> = (0..N_PARAMS).map(|i| vec![i]).collect();
    let sets: Vec<Vec<Vec<u32>>> =
        (0..N_PARAMS).map(|i| vec![vec![2 * i], vec![2 * i + 1]]).collect();
    let family = AnswerFamily::from_nested(params, &sets);
    let mut base = Weights::new(1);
    for e in 0..2 * N_PARAMS {
        base.set(&[e], 1000 + 7 * e as i64);
    }
    let pairs = (0..N_PARAMS)
        .map(|i| Pair { plus: vec![2 * i], minus: vec![2 * i + 1] })
        .collect();
    (family, base, PairMarking::new(pairs))
}

fn content_for(family: &AnswerFamily, base: &Weights, marking: &PairMarking) -> StoreContent {
    let marked = marking.apply(base, &MESSAGE);
    let labels = (0..N_PARAMS).map(|i| format!("p{i}")).collect();
    StoreContent::from_family(family, base, &marked, labels, Vec::new(), "q".into())
        .expect("content")
}

/// The detector's end-to-end read over a store state: rebuild the
/// family, serve the marked weights, extract against the base weights,
/// and score the claimed message.
fn claim_check_of(content: &StoreContent, marking: &PairMarking) -> ClaimCheck {
    let family = content.family().expect("family");
    let server = HonestServer::new(family, content.marked_weights());
    let observed = ObservedWeights::collect(&server);
    marking.extract(&content.base_weights(), &observed).claim_check_effective(
        &MESSAGE,
        DEFAULT_DELTA,
    )
}

/// The Theorem 7 update under test: bump a few base weights, then
/// re-mark only the touched pairs' neighborhoods via the sparse plan.
fn apply_update(store: &mut Store, marking: &PairMarking, checkpoint: bool) -> qpwm_store::Result<()> {
    let content = store.content()?;
    let updates: [(u32, i64); 3] = [(0, 5000), (5, 5001), (13, 5002)];
    let touched: HashSet<WeightKey> =
        updates.iter().map(|&(e, _)| vec![e] as WeightKey).collect();
    let plan = remark_touched(marking, &MESSAGE, &touched);
    let mut txn = store.begin();
    for &(e, w) in &updates {
        let id = content.lookup(&[e]).expect("tuple interned");
        txn.set_base(id, w)?;
    }
    for (key, delta) in &plan {
        let id = content.lookup(key).expect("tuple interned");
        txn.set_delta(id, *delta)?;
    }
    if checkpoint {
        txn.commit()?;
    } else {
        txn.commit_no_checkpoint()?;
    }
    Ok(())
}

struct SweepEnv {
    vfs: SimVfs,
    snapshot: Vec<(String, Vec<u8>)>,
    marking: PairMarking,
    old_content: StoreContent,
    new_content: StoreContent,
    old_check: ClaimCheck,
    new_check: ClaimCheck,
    update_ops: u64,
}

fn sweep_env() -> SweepEnv {
    let (family, base, marking) = fixture();
    let content = content_for(&family, &base, &marking);
    let vfs = SimVfs::new();
    {
        let store = Store::create(&vfs, "db", &content).expect("create");
        drop(store);
    }
    let snapshot = vfs.snapshot();

    // Dry run: measure the op count of the full update and capture the
    // post-update committed state.
    vfs.reset_ops();
    let mut store = Store::open(&vfs, "db").expect("open");
    let old_content = store.content().expect("content");
    apply_update(&mut store, &marking, true).expect("update");
    let update_ops = vfs.ops();
    let new_content = store.content().expect("content");
    drop(store);
    assert!(update_ops > 0, "the update must perform mutating ops");
    assert_ne!(old_content, new_content);

    let old_check = claim_check_of(&old_content, &marking);
    let new_check = claim_check_of(&new_content, &marking);
    assert_eq!(old_check.verdict, Verdict::MarkPresent);
    assert_eq!(new_check.verdict, Verdict::MarkPresent);

    vfs.restore(&snapshot);
    SweepEnv { vfs, snapshot, marking, old_content, new_content, old_check, new_check, update_ops }
}

/// Crash at one op index, then recover and check the invariant. Returns
/// true when the recovered state was the *new* (post-update) one.
fn crash_and_check(env: &SweepEnv, crash_op: u64, torn: bool) -> bool {
    let SweepEnv { vfs, snapshot, marking, .. } = env;
    vfs.restore(snapshot);
    vfs.set_policy(Some(CrashPolicy { crash_op, torn }));

    let crashed = (|| -> qpwm_store::Result<()> {
        let mut store = Store::open(vfs, "db")?;
        apply_update(&mut store, marking, true)
    })();
    assert!(
        matches!(crashed, Err(StoreError::InjectedCrash(_)) | Err(StoreError::Io(_))),
        "op {crash_op} torn={torn}: update must die at the seeded point, got {crashed:?}"
    );

    vfs.restart();
    let mut store = Store::open(vfs, "db")
        .unwrap_or_else(|e| panic!("op {crash_op} torn={torn}: recovery failed: {e}"));
    let recovered = store.content().expect("content");

    let (which, expect_check) = if recovered == env.new_content {
        ("new", &env.new_check)
    } else if recovered == env.old_content {
        ("old", &env.old_check)
    } else {
        panic!("op {crash_op} torn={torn}: recovered state is neither committed state");
    };
    let check = claim_check_of(&recovered, marking);
    assert_eq!(
        (check.verdict, check.significance),
        (expect_check.verdict, expect_check.significance),
        "op {crash_op} torn={torn}: claim check drifted from the {which} committed state"
    );
    which == "new"
}

#[test]
fn crash_sweep_over_every_write_point() {
    let env = sweep_env();
    let mut recovered_new = 0usize;
    let mut recovered_old = 0usize;
    for torn in [false, true] {
        for op in 0..env.update_ops {
            if crash_and_check(&env, op, torn) {
                recovered_new += 1;
            } else {
                recovered_old += 1;
            }
        }
    }
    // Sanity on the sweep itself: crashes before the commit point roll
    // back, crashes after it roll forward — both sides must be exercised.
    assert!(recovered_old > 0, "no crash point rolled back");
    assert!(recovered_new > 0, "no crash point rolled forward");
}

#[test]
fn crash_during_recovery_is_itself_recoverable() {
    let env = sweep_env();
    // Leave a committed-but-uncheckpointed txn in the WAL...
    env.vfs.restore(&env.snapshot);
    {
        let mut store = Store::open(&env.vfs, "db").expect("open");
        apply_update(&mut store, &env.marking, false).expect("update");
    }
    env.vfs.restart();
    let wal_snapshot = env.vfs.snapshot();

    // ...then kill recovery at every op it performs, torn and clean.
    env.vfs.reset_ops();
    Store::open(&env.vfs, "db").expect("recovery dry run");
    let recover_ops = env.vfs.ops();
    assert!(recover_ops > 0, "recovery must replay");
    for torn in [false, true] {
        for op in 0..recover_ops {
            env.vfs.restore(&wal_snapshot);
            env.vfs.set_policy(Some(CrashPolicy { crash_op: op, torn }));
            let died = Store::open(&env.vfs, "db");
            assert!(died.is_err(), "op {op} torn={torn}: recovery should crash");
            env.vfs.restart();
            let mut store = Store::open(&env.vfs, "db")
                .unwrap_or_else(|e| panic!("op {op} torn={torn}: re-recovery failed: {e}"));
            let recovered = store.content().expect("content");
            assert_eq!(
                recovered, env.new_content,
                "op {op} torn={torn}: committed txn lost by interrupted recovery"
            );
        }
    }
}

#[test]
fn torn_wal_tail_from_mid_append_crash_is_discarded() {
    let env = sweep_env();
    // The txn's WAL records — meta image, dirty pages, commit — reach
    // the file as ONE coalesced append, and the fsync right after it is
    // the commit point. Sweep torn crashes over the whole update and
    // pick out the ones whose tear recovery actually saw: a torn tail
    // *before* the commit record means the half-appended txn must be
    // discarded and the old state restored. (A torn tail can also show
    // up with the new state — a tear in the post-checkpoint WAL
    // truncate leaves stale bytes behind fully durable pages — so the
    // rollback assertion keys on which state came back.)
    let mut saw_discarded_tear = false;
    for op in 0..env.update_ops {
        env.vfs.restore(&env.snapshot);
        env.vfs.set_policy(Some(CrashPolicy { crash_op: op, torn: true }));
        let _ = (|| -> qpwm_store::Result<()> {
            let mut store = Store::open(&env.vfs, "db")?;
            apply_update(&mut store, &env.marking, true)
        })();
        env.vfs.restart();
        let mut store = Store::open(&env.vfs, "db").expect("recover");
        let torn = store.recovery().torn_tail;
        let recovered = store.content().expect("content");
        if torn && recovered != env.new_content {
            assert_eq!(
                recovered, env.old_content,
                "op {op}: a txn torn before its commit record must roll back"
            );
            saw_discarded_tear = true;
        }
    }
    assert!(saw_discarded_tear, "no crash point tore the WAL append mid-record");
}
