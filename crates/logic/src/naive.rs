//! A reference FO evaluator for differential testing.
//!
//! [`crate::Evaluator`] threads a mutable environment through the
//! formula; this module evaluates by *syntactic substitution* instead —
//! quantifiers are expanded into explicit disjunctions/conjunctions over
//! ground instantiations and only ground atoms ever touch the structure.
//! It is exponentially slower but so simple it serves as ground truth:
//! the property suite checks both evaluators agree on random formulas.

use crate::fo::{Formula, Var};
use qpwm_structures::{Element, Structure};
use std::collections::HashMap;

/// Evaluates `formula` under `assignment` by substitution.
///
/// # Panics
/// Panics if a free variable lacks an assignment.
pub fn eval_by_substitution(
    structure: &Structure,
    formula: &Formula,
    assignment: &HashMap<Var, Element>,
) -> bool {
    match formula {
        Formula::Atom { rel, args } => {
            let tuple: Vec<Element> = args
                .iter()
                .map(|v| *assignment.get(v).expect("free variable unassigned"))
                .collect();
            structure.contains(*rel, &tuple)
        }
        Formula::Eq(x, y) => {
            assignment.get(x).expect("unassigned") == assignment.get(y).expect("unassigned")
        }
        Formula::Not(f) => !eval_by_substitution(structure, f, assignment),
        Formula::And(fs) => fs.iter().all(|f| eval_by_substitution(structure, f, assignment)),
        Formula::Or(fs) => fs.iter().any(|f| eval_by_substitution(structure, f, assignment)),
        Formula::Exists(v, f) => structure.universe().any(|e| {
            let mut inner = assignment.clone();
            inner.insert(*v, e);
            eval_by_substitution(structure, f, &inner)
        }),
        Formula::Forall(v, f) => structure.universe().all(|e| {
            let mut inner = assignment.clone();
            inner.insert(*v, e);
            eval_by_substitution(structure, f, &inner)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluator;
    use qpwm_structures::{Schema, StructureBuilder};
    use std::sync::Arc;

    fn triangle() -> Structure {
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 3);
        b.add(0, &[0, 1]).add(0, &[1, 2]).add(0, &[2, 0]);
        b.build()
    }

    #[test]
    fn agrees_with_fast_evaluator_on_fixed_formulas() {
        let s = triangle();
        let formulas = [
            Formula::atom(0, &[0, 1]),
            Formula::exists(1, Formula::atom(0, &[0, 1])),
            Formula::forall(1, Formula::atom(0, &[0, 1]).or(Formula::eq(0, 1))),
            Formula::exists(
                2,
                Formula::atom(0, &[0, 2]).and(Formula::atom(0, &[2, 1])),
            ),
        ];
        for f in &formulas {
            let free: Vec<_> = f.free_vars().into_iter().collect();
            let mut fast = Evaluator::new(&s, f.max_var());
            // try every assignment of the free variables
            let mut values = vec![0u32; free.len()];
            'assignments: loop {
                let pairs: Vec<(u32, u32)> =
                    free.iter().copied().zip(values.iter().copied()).collect();
                let map: HashMap<u32, u32> = pairs.iter().copied().collect();
                assert_eq!(
                    fast.eval(f, &pairs),
                    eval_by_substitution(&s, f, &map),
                    "{f} under {pairs:?}"
                );
                let mut i = values.len();
                loop {
                    if i == 0 {
                        break 'assignments;
                    }
                    i -= 1;
                    values[i] += 1;
                    if values[i] < 3 {
                        break;
                    }
                    values[i] = 0;
                }
            }
        }
    }
}
