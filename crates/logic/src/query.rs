//! Parametric queries `ψ(ū; v̄)` and their active-weight machinery.
//!
//! A [`ParametricQuery`] designates parameter variables `ū` (supplied by
//! final users, arity `r`) and output variables `v̄` (arity `s`, the weight
//! arity). Materialization goes through the interned answer-set engine:
//! [`QueryAnswers`] (an alias of [`qpwm_structures::AnswerFamily`]) holds,
//! for every parameter tuple, the set `W_ā = ψ(ā, G)` as a slice of dense
//! tuple ids over one shared arena, plus the memoized active union `W` and
//! the aggregates `f(ā)` — everything Definition 2's marker and detector
//! consume, without nested per-set vectors.

use crate::cq::CqPlan;
use crate::eval::Evaluator;
use crate::fo::{Formula, Var};
use qpwm_structures::{AnswerSource, Element, Structure};
use std::collections::BTreeSet;

/// Materialized query answers: the interned family `{W_ā : ā ∈ domain}`.
pub use qpwm_structures::AnswerFamily as QueryAnswers;

/// A formula with distinguished parameter and output variables.
///
/// Construction compiles a conjunctive-query join plan
/// ([`crate::cq::CqPlan`]) when the formula has CQ shape; evaluation
/// then runs the join instead of enumerating `|U|^s` candidates.
#[derive(Debug, Clone)]
pub struct ParametricQuery {
    formula: Formula,
    params: Vec<Var>,
    outputs: Vec<Var>,
    plan: Option<CqPlan>,
}

impl ParametricQuery {
    /// Creates a parametric query.
    ///
    /// # Panics
    /// Panics if a variable is listed twice, or if the formula has a free
    /// variable that is neither a parameter nor an output — such a query
    /// has no well-defined answer sets.
    pub fn new(formula: Formula, params: Vec<Var>, outputs: Vec<Var>) -> Self {
        let mut seen = BTreeSet::new();
        for v in params.iter().chain(&outputs) {
            assert!(seen.insert(*v), "variable x{v} listed twice");
        }
        for v in formula.free_vars() {
            assert!(
                seen.contains(&v),
                "free variable x{v} is neither parameter nor output"
            );
        }
        let plan = CqPlan::compile(&formula, &params, &outputs);
        ParametricQuery { formula, params, outputs, plan }
    }

    /// Does evaluation use the conjunctive-query join plan?
    pub fn has_cq_plan(&self) -> bool {
        self.plan.is_some()
    }

    /// The underlying formula.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// Parameter variables `ū` (arity `r`).
    pub fn params(&self) -> &[Var] {
        &self.params
    }

    /// Output variables `v̄` (arity `s`).
    pub fn outputs(&self) -> &[Var] {
        &self.outputs
    }

    /// Parameter arity `r`.
    pub fn r(&self) -> usize {
        self.params.len()
    }

    /// Output arity `s`.
    pub fn s(&self) -> usize {
        self.outputs.len()
    }

    /// Streams every output tuple of `ψ(a, G)` to `visit`. The plan path
    /// may repeat tuples (one per existential witness); the generic path
    /// visits each satisfying tuple once, in ascending order. Callers that
    /// need a sorted deduped set use [`Self::answer_set`] or materialize
    /// through the engine, which canonicalizes either way.
    pub fn for_each_answer(
        &self,
        structure: &Structure,
        a: &[Element],
        visit: &mut dyn FnMut(&[Element]),
    ) {
        assert_eq!(a.len(), self.params.len(), "parameter arity mismatch");
        if let Some(plan) = &self.plan {
            plan.for_each_answer(structure, &self.params, a, visit);
            return;
        }
        let mut ev = Evaluator::new(structure, self.formula.max_var());
        let mut assignment: Vec<(Var, Element)> = self
            .params
            .iter()
            .copied()
            .zip(a.iter().copied())
            .collect();
        let base = assignment.len();
        for v in &self.outputs {
            assignment.push((*v, 0));
        }
        let mut b = vec![0u32; self.outputs.len()];
        let n = structure.universe_size();
        if n == 0 {
            return;
        }
        loop {
            for (i, &e) in b.iter().enumerate() {
                assignment[base + i].1 = e;
            }
            if ev.eval(&self.formula, &assignment) {
                visit(&b);
            }
            // odometer over U^s
            let mut i = b.len();
            loop {
                if i == 0 {
                    return;
                }
                i -= 1;
                b[i] += 1;
                if b[i] < n {
                    break;
                }
                b[i] = 0;
            }
        }
    }

    /// Evaluates `ψ(ā, G)`: the set of output tuples `b̄` with
    /// `G ⊨ ψ(ā, b̄)`, sorted and deduped.
    pub fn answer_set(&self, structure: &Structure, a: &[Element]) -> Vec<Vec<Element>> {
        let mut out: Vec<Vec<Element>> = Vec::new();
        self.for_each_answer(structure, a, &mut |b| out.push(b.to_vec()));
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Binds the query to a structure as an [`AnswerSource`] — the FO
    /// evaluation face of the engine (uses the CQ join plan when one
    /// compiled).
    pub fn bind<'a>(&'a self, structure: &'a Structure) -> BoundQuery<'a> {
        BoundQuery { query: self, structure }
    }

    /// Materializes answers over the full parameter domain `U^r` into an
    /// interned family.
    pub fn answers(&self, structure: &Structure) -> QueryAnswers {
        let domain = qpwm_structures::types::all_tuples(structure, self.params.len());
        self.answers_over(structure, domain)
    }

    /// Materializes answers over an explicit parameter domain (use when the
    /// meaningful parameters are a strict subset of `U^r`, e.g. only
    /// travel names). Answers stream straight into the arena — no nested
    /// intermediate vectors. Per-parameter evaluation fans out over
    /// [`qpwm_par::thread_count`] workers; the result is id-for-id
    /// identical to the sequential path for any thread count.
    pub fn answers_over(
        &self,
        structure: &Structure,
        domain: Vec<Vec<Element>>,
    ) -> QueryAnswers {
        QueryAnswers::from_source_par(&self.bind(structure), domain)
    }

    /// Pre-engine materialization: per-parameter nested `Vec`s. Kept only
    /// as the reference implementation for the differential test.
    #[cfg(test)]
    fn answers_nested(
        &self,
        structure: &Structure,
        domain: &[Vec<Element>],
    ) -> Vec<Vec<Vec<Element>>> {
        domain.iter().map(|a| self.answer_set(structure, a)).collect()
    }
}

/// A [`ParametricQuery`] bound to a structure — FO evaluation as an
/// [`AnswerSource`].
#[derive(Debug, Clone, Copy)]
pub struct BoundQuery<'a> {
    query: &'a ParametricQuery,
    structure: &'a Structure,
}

impl AnswerSource for BoundQuery<'_> {
    fn output_arity(&self) -> usize {
        self.query.outputs.len()
    }

    fn for_each_answer(&self, param: &[Element], visit: &mut dyn FnMut(&[Element])) {
        self.query.for_each_answer(self.structure, param, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpwm_structures::{figure1_instance, Schema, StructureBuilder, Weights};
    use std::sync::Arc;

    /// ψ(u, v) ≡ E(u, v): the paper's running example query.
    fn edge_query() -> ParametricQuery {
        ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1])
    }

    fn set_of(ans: &QueryAnswers, a: &[Element]) -> Vec<Vec<Element>> {
        let i = ans.position_of(a).expect("parameter in domain");
        ans.materialize_set(i)
    }

    #[test]
    fn figure2_active_sets() {
        let s = figure1_instance();
        let q = edge_query();
        let ans = q.answers(&s);
        assert_eq!(set_of(&ans, &[0]), vec![vec![3], vec![4]]);
        assert_eq!(set_of(&ans, &[1]), vec![vec![3], vec![4]]);
        assert_eq!(set_of(&ans, &[2]), vec![vec![3]]);
        assert_eq!(set_of(&ans, &[5]), vec![vec![4]]);
        assert_eq!(set_of(&ans, &[3]), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(set_of(&ans, &[4]), vec![vec![0], vec![1], vec![5]]);
    }

    #[test]
    fn active_universe_is_everything_in_figure1() {
        let s = figure1_instance();
        let ans = edge_query().answers(&s);
        // every element has an incident edge, so W = U.
        assert_eq!(ans.active_universe().len(), 6);
    }

    #[test]
    fn inactive_elements_are_excluded() {
        // G13-style element: a vertex with no incident tuples is inactive.
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 3);
        b.add(0, &[0, 1]);
        let s = b.build();
        let ans = edge_query().answers(&s);
        let universe: Vec<Vec<Element>> =
            ans.universe_tuples().map(<[Element]>::to_vec).collect();
        assert_eq!(universe, vec![vec![1]]);
    }

    #[test]
    fn distinct_queries_counts_set_values() {
        let s = figure1_instance();
        let ans = edge_query().answers(&s);
        // W_a = W_b, others distinct: 6 parameters, 5 distinct sets.
        assert_eq!(ans.len(), 6);
        assert_eq!(ans.distinct_queries(), 5);
    }

    #[test]
    fn f_values_match_hand_computation() {
        let s = figure1_instance();
        let ans = edge_query().answers(&s);
        let mut w = Weights::new(1);
        for (e, val) in [(0u32, 1i64), (1, 2), (2, 4), (3, 8), (4, 16), (5, 32)] {
            w.set(&[e], val);
        }
        // f(a) = W(d)+W(e) = 24, f(c) = 8, f(d) = W(a)+W(b)+W(c) = 7.
        assert_eq!(ans.f(&w, 0), 24);
        assert_eq!(ans.f(&w, 2), 8);
        assert_eq!(ans.f(&w, 3), 7);
    }

    #[test]
    fn global_distortion_of_figure3_mark() {
        // Figure 3: mark d:+1, e:−1. Distortion 0 on a,b,d,e; +1 on c; −1
        // on f (we report absolute value, so max 1 and it is attained).
        let s = figure1_instance();
        let ans = edge_query().answers(&s);
        let before = Weights::new(1);
        let mut after = Weights::new(1);
        after.set(&[3], 1);
        after.set(&[4], -1);
        let deltas: Vec<i64> = (0..ans.len())
            .map(|i| ans.f(&before, i) - ans.f(&after, i))
            .collect();
        assert_eq!(deltas, vec![0, 0, -1, 0, 0, 1]);
        assert_eq!(ans.max_global_distortion(&before, &after), 1);
    }

    #[test]
    fn answers_over_custom_domain() {
        let s = figure1_instance();
        let q = edge_query();
        let ans = q.answers_over(&s, vec![vec![0], vec![2]]);
        assert_eq!(ans.len(), 2);
        assert!(ans.ids_of(&[1]).is_none());
    }

    #[test]
    fn exists_query_two_hop() {
        // ψ(u, v) ≡ ∃z E(u,z) ∧ E(z,v): two-hop reachability on fig. 1.
        let s = figure1_instance();
        let f = Formula::exists(
            2,
            Formula::atom(0, &[0, 2]).and(Formula::atom(0, &[2, 1])),
        );
        let q = ParametricQuery::new(f, vec![0], vec![1]);
        let from_c = q.answer_set(&s, &[2]); // c -> d -> {a,b,c}
        assert_eq!(from_c, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    #[should_panic(expected = "neither parameter nor output")]
    fn dangling_free_variable_rejected() {
        let _ = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![]);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_role_rejected() {
        let _ = ParametricQuery::new(Formula::atom(0, &[0, 0]), vec![0], vec![0]);
    }

    // ---- differential test: interned engine vs nested path vs ground truth

    use crate::naive::eval_by_substitution;
    use qpwm_rng::Rng;
    use std::collections::HashMap;

    fn random_graph(rng: &mut Rng, n: u32, edges: u32) -> Structure {
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, n);
        for _ in 0..edges {
            b.add(0, &[rng.gen_range(0..n), rng.gen_range(0..n)]);
        }
        b.build()
    }

    fn random_weights(rng: &mut Rng, n: u32) -> Weights {
        let mut w = Weights::new(1);
        for e in 0..n {
            w.set(&[e], rng.gen_range(-50i64..50));
        }
        w
    }

    /// The queries exercised: a bare atom (CQ single-atom), a two-hop
    /// join with a filter (CQ with existential + negation), and a
    /// disjunction the planner rejects (generic odometer path).
    fn differential_queries() -> Vec<ParametricQuery> {
        let two_hop = Formula::exists(
            2,
            Formula::atom(0, &[0, 2])
                .and(Formula::atom(0, &[2, 1]))
                .and(Formula::eq(0, 1).not()),
        );
        let either_dir = Formula::atom(0, &[0, 1]).or(Formula::atom(0, &[1, 0]));
        vec![
            ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]),
            ParametricQuery::new(two_hop, vec![0], vec![1]),
            ParametricQuery::new(either_dir, vec![0], vec![1]),
        ]
    }

    #[test]
    fn differential_parallel_vs_sequential_materialization() {
        let mut rng = Rng::seed_from_u64(0x9A21);
        for round in 0..8u64 {
            let n = 4 + (round % 4) as u32;
            let s = random_graph(&mut rng, n, n * 3);
            for (qi, q) in differential_queries().iter().enumerate() {
                let domain = qpwm_structures::types::all_tuples(&s, q.r());
                let bound = q.bind(&s);
                let sequential = QueryAnswers::from_source(&bound, domain.clone());
                for threads in [1usize, 2, 3, 5] {
                    let parallel =
                        QueryAnswers::from_source_par_with(threads, &bound, domain.clone());
                    assert_eq!(
                        parallel.parameters(),
                        sequential.parameters(),
                        "round {round} query {qi} threads {threads}"
                    );
                    assert_eq!(
                        parallel.active_universe(),
                        sequential.active_universe(),
                        "round {round} query {qi} threads {threads}"
                    );
                    for i in 0..sequential.len() {
                        assert_eq!(
                            parallel.active_ids(i),
                            sequential.active_ids(i),
                            "round {round} query {qi} threads {threads} set {i}"
                        );
                    }
                    let seq_arena: Vec<(u32, Vec<Element>)> = sequential
                        .arena()
                        .iter()
                        .map(|(id, t)| (id, t.to_vec()))
                        .collect();
                    let par_arena: Vec<(u32, Vec<Element>)> = parallel
                        .arena()
                        .iter()
                        .map(|(id, t)| (id, t.to_vec()))
                        .collect();
                    assert_eq!(
                        par_arena, seq_arena,
                        "round {round} query {qi} threads {threads}: arenas id-for-id"
                    );
                }
            }
        }
    }

    #[test]
    fn differential_interned_vs_nested_vs_ground_truth() {
        let mut rng = Rng::seed_from_u64(0xE16E);
        for round in 0..12u64 {
            let n = 3 + (round % 5) as u32;
            let s = random_graph(&mut rng, n, n * 2);
            let before = random_weights(&mut rng, n);
            let after = random_weights(&mut rng, n);
            for (qi, q) in differential_queries().iter().enumerate() {
                let domain = qpwm_structures::types::all_tuples(&s, q.r());
                let family = q.answers_over(&s, domain.clone());
                let nested = q.answers_nested(&s, &domain);

                // identical active sets, parameter by parameter
                assert_eq!(family.len(), nested.len());
                for (i, set) in nested.iter().enumerate() {
                    assert_eq!(
                        &family.materialize_set(i),
                        set,
                        "round {round} query {qi} parameter {i}"
                    );
                }

                // identical aggregates f(ā) and max-global-distortion
                for (i, set) in nested.iter().enumerate() {
                    let nested_f: i64 = set.iter().map(|b| before.get(b)).sum();
                    assert_eq!(family.f(&before, i), nested_f);
                }
                let nested_report =
                    qpwm_structures::global_distortion(&before, &after, &nested);
                assert_eq!(
                    family.max_global_distortion(&before, &after),
                    nested_report.max_global
                );

                // ground truth by substitution on every (ā, b̄)
                for (i, a) in domain.iter().enumerate() {
                    for b in 0..n {
                        let mut assignment: HashMap<Var, Element> = HashMap::new();
                        for (v, &e) in q.params().iter().zip(a.iter()) {
                            assignment.insert(*v, e);
                        }
                        assignment.insert(q.outputs()[0], b);
                        let truth = eval_by_substitution(&s, q.formula(), &assignment);
                        let in_family = family
                            .arena()
                            .lookup(&[b])
                            .is_some_and(|id| family.contains(i, id));
                        assert_eq!(
                            truth, in_family,
                            "round {round} query {qi} a={a:?} b={b}"
                        );
                    }
                }
            }
        }
    }
}
