//! Parametric queries `ψ(ū; v̄)` and their active-weight machinery.
//!
//! A [`ParametricQuery`] designates parameter variables `ū` (supplied by
//! final users, arity `r`) and output variables `v̄` (arity `s`, the weight
//! arity). [`QueryAnswers`] materializes, for every parameter tuple, the
//! set `W_ā = ψ(ā, G)` of active weighted elements, the active union `W`,
//! and the aggregates `f(ā)` — everything Definition 2's marker and
//! detector consume.

use crate::cq::CqPlan;
use crate::eval::Evaluator;
use crate::fo::{Formula, Var};
use qpwm_structures::{distortion, Element, Structure, Weights};
use std::collections::{BTreeSet, HashMap};

/// A formula with distinguished parameter and output variables.
///
/// Construction compiles a conjunctive-query join plan
/// ([`crate::cq::CqPlan`]) when the formula has CQ shape; evaluation
/// then runs the join instead of enumerating `|U|^s` candidates.
#[derive(Debug, Clone)]
pub struct ParametricQuery {
    formula: Formula,
    params: Vec<Var>,
    outputs: Vec<Var>,
    plan: Option<CqPlan>,
}

impl ParametricQuery {
    /// Creates a parametric query.
    ///
    /// # Panics
    /// Panics if a variable is listed twice, or if the formula has a free
    /// variable that is neither a parameter nor an output — such a query
    /// has no well-defined answer sets.
    pub fn new(formula: Formula, params: Vec<Var>, outputs: Vec<Var>) -> Self {
        let mut seen = BTreeSet::new();
        for v in params.iter().chain(&outputs) {
            assert!(seen.insert(*v), "variable x{v} listed twice");
        }
        for v in formula.free_vars() {
            assert!(
                seen.contains(&v),
                "free variable x{v} is neither parameter nor output"
            );
        }
        let plan = CqPlan::compile(&formula, &params, &outputs);
        ParametricQuery { formula, params, outputs, plan }
    }

    /// Does evaluation use the conjunctive-query join plan?
    pub fn has_cq_plan(&self) -> bool {
        self.plan.is_some()
    }

    /// The underlying formula.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// Parameter variables `ū` (arity `r`).
    pub fn params(&self) -> &[Var] {
        &self.params
    }

    /// Output variables `v̄` (arity `s`).
    pub fn outputs(&self) -> &[Var] {
        &self.outputs
    }

    /// Parameter arity `r`.
    pub fn r(&self) -> usize {
        self.params.len()
    }

    /// Output arity `s`.
    pub fn s(&self) -> usize {
        self.outputs.len()
    }

    /// Evaluates `ψ(ā, G)`: the set of output tuples `b̄` with
    /// `G ⊨ ψ(ā, b̄)`, sorted.
    pub fn answer_set(&self, structure: &Structure, a: &[Element]) -> Vec<Vec<Element>> {
        assert_eq!(a.len(), self.params.len(), "parameter arity mismatch");
        if let Some(plan) = &self.plan {
            return plan.answer_set(structure, &self.params, a);
        }
        let mut ev = Evaluator::new(structure, self.formula.max_var());
        let mut assignment: Vec<(Var, Element)> = self
            .params
            .iter()
            .copied()
            .zip(a.iter().copied())
            .collect();
        let base = assignment.len();
        for v in &self.outputs {
            assignment.push((*v, 0));
        }
        let mut out = Vec::new();
        let mut b = vec![0u32; self.outputs.len()];
        let n = structure.universe_size();
        if n == 0 {
            return out;
        }
        loop {
            for (i, &e) in b.iter().enumerate() {
                assignment[base + i].1 = e;
            }
            if ev.eval(&self.formula, &assignment) {
                out.push(b.clone());
            }
            // odometer over U^s
            let mut i = b.len();
            loop {
                if i == 0 {
                    out.sort_unstable();
                    return out;
                }
                i -= 1;
                b[i] += 1;
                if b[i] < n {
                    break;
                }
                b[i] = 0;
            }
        }
    }

    /// Materializes answers over the full parameter domain `U^r`.
    pub fn answers(&self, structure: &Structure) -> QueryAnswers {
        let domain = qpwm_structures::types::all_tuples(structure, self.params.len());
        self.answers_over(structure, domain)
    }

    /// Materializes answers over an explicit parameter domain (use when the
    /// meaningful parameters are a strict subset of `U^r`, e.g. only
    /// travel names).
    pub fn answers_over(
        &self,
        structure: &Structure,
        domain: Vec<Vec<Element>>,
    ) -> QueryAnswers {
        let mut sets = Vec::with_capacity(domain.len());
        for a in &domain {
            sets.push(self.answer_set(structure, a));
        }
        QueryAnswers::new(domain, sets)
    }
}

/// Materialized query answers: the family `{W_ā : ā ∈ domain}`.
#[derive(Debug, Clone)]
pub struct QueryAnswers {
    parameters: Vec<Vec<Element>>,
    active_sets: Vec<Vec<Vec<Element>>>,
    index: HashMap<Vec<Element>, usize>,
}

impl QueryAnswers {
    /// Pairs parameters with their active sets.
    pub fn new(parameters: Vec<Vec<Element>>, active_sets: Vec<Vec<Vec<Element>>>) -> Self {
        assert_eq!(parameters.len(), active_sets.len());
        let index = parameters
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();
        QueryAnswers { parameters, active_sets, index }
    }

    /// The parameter domain, in materialization order.
    pub fn parameters(&self) -> &[Vec<Element>] {
        &self.parameters
    }

    /// `W_ā` for the i-th parameter.
    pub fn active_set(&self, i: usize) -> &[Vec<Element>] {
        &self.active_sets[i]
    }

    /// All active sets, parallel to [`Self::parameters`].
    pub fn active_sets(&self) -> &[Vec<Vec<Element>>] {
        &self.active_sets
    }

    /// `W_ā` looked up by parameter value.
    pub fn active_set_of(&self, a: &[Element]) -> Option<&[Vec<Element>]> {
        self.index.get(a).map(|&i| self.active_sets[i].as_slice())
    }

    /// The active weighted elements `W = ∪_ā W_ā`, sorted.
    pub fn active_universe(&self) -> Vec<Vec<Element>> {
        let mut set: BTreeSet<Vec<Element>> = BTreeSet::new();
        for s in &self.active_sets {
            set.extend(s.iter().cloned());
        }
        set.into_iter().collect()
    }

    /// Number of parameters in the domain.
    pub fn len(&self) -> usize {
        self.parameters.len()
    }

    /// True when the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.parameters.is_empty()
    }

    /// `N`: the number of *distinct* active sets — the paper's "number of
    /// distinct possible queries".
    pub fn distinct_queries(&self) -> usize {
        let set: BTreeSet<&[Vec<Element>]> =
            self.active_sets.iter().map(Vec::as_slice).collect();
        set.len()
    }

    /// The aggregate `f(ā)` for the i-th parameter under `weights`.
    pub fn f(&self, weights: &Weights, i: usize) -> i64 {
        distortion::f_value(weights, &self.active_sets[i])
    }

    /// All `f` values in parameter order.
    pub fn f_all(&self, weights: &Weights) -> Vec<i64> {
        (0..self.len()).map(|i| self.f(weights, i)).collect()
    }

    /// Maximum global distortion between two weight assignments over this
    /// family — the `d` of the d-global distortion assumption.
    pub fn max_global_distortion(&self, before: &Weights, after: &Weights) -> i64 {
        distortion::global_distortion(before, after, &self.active_sets).max_global
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpwm_structures::{figure1_instance, Schema, StructureBuilder};
    use std::sync::Arc;

    /// ψ(u, v) ≡ E(u, v): the paper's running example query.
    fn edge_query() -> ParametricQuery {
        ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1])
    }

    #[test]
    fn figure2_active_sets() {
        let s = figure1_instance();
        let q = edge_query();
        let ans = q.answers(&s);
        assert_eq!(ans.active_set_of(&[0]).unwrap(), &[vec![3], vec![4]]);
        assert_eq!(ans.active_set_of(&[1]).unwrap(), &[vec![3], vec![4]]);
        assert_eq!(ans.active_set_of(&[2]).unwrap(), &[vec![3]]);
        assert_eq!(ans.active_set_of(&[5]).unwrap(), &[vec![4]]);
        assert_eq!(ans.active_set_of(&[3]).unwrap(), &[vec![0], vec![1], vec![2]]);
        assert_eq!(ans.active_set_of(&[4]).unwrap(), &[vec![0], vec![1], vec![5]]);
    }

    #[test]
    fn active_universe_is_everything_in_figure1() {
        let s = figure1_instance();
        let ans = edge_query().answers(&s);
        // every element has an incident edge, so W = U.
        assert_eq!(ans.active_universe().len(), 6);
    }

    #[test]
    fn inactive_elements_are_excluded() {
        // G13-style element: a vertex with no incident tuples is inactive.
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 3);
        b.add(0, &[0, 1]);
        let s = b.build();
        let ans = edge_query().answers(&s);
        assert_eq!(ans.active_universe(), vec![vec![1]]);
    }

    #[test]
    fn distinct_queries_counts_set_values() {
        let s = figure1_instance();
        let ans = edge_query().answers(&s);
        // W_a = W_b, others distinct: 6 parameters, 5 distinct sets.
        assert_eq!(ans.len(), 6);
        assert_eq!(ans.distinct_queries(), 5);
    }

    #[test]
    fn f_values_match_hand_computation() {
        let s = figure1_instance();
        let ans = edge_query().answers(&s);
        let mut w = Weights::new(1);
        for (e, val) in [(0u32, 1i64), (1, 2), (2, 4), (3, 8), (4, 16), (5, 32)] {
            w.set(&[e], val);
        }
        // f(a) = W(d)+W(e) = 24, f(c) = 8, f(d) = W(a)+W(b)+W(c) = 7.
        assert_eq!(ans.f(&w, 0), 24);
        assert_eq!(ans.f(&w, 2), 8);
        assert_eq!(ans.f(&w, 3), 7);
    }

    #[test]
    fn global_distortion_of_figure3_mark() {
        // Figure 3: mark d:+1, e:−1. Distortion 0 on a,b,d,e; +1 on c; −1
        // on f (we report absolute value, so max 1 and it is attained).
        let s = figure1_instance();
        let ans = edge_query().answers(&s);
        let before = Weights::new(1);
        let mut after = Weights::new(1);
        after.set(&[3], 1);
        after.set(&[4], -1);
        let deltas: Vec<i64> = (0..ans.len())
            .map(|i| ans.f(&before, i) - ans.f(&after, i))
            .collect();
        assert_eq!(deltas, vec![0, 0, -1, 0, 0, 1]);
        assert_eq!(ans.max_global_distortion(&before, &after), 1);
    }

    #[test]
    fn answers_over_custom_domain() {
        let s = figure1_instance();
        let q = edge_query();
        let ans = q.answers_over(&s, vec![vec![0], vec![2]]);
        assert_eq!(ans.len(), 2);
        assert!(ans.active_set_of(&[1]).is_none());
    }

    #[test]
    fn exists_query_two_hop() {
        // ψ(u, v) ≡ ∃z E(u,z) ∧ E(z,v): two-hop reachability on fig. 1.
        let s = figure1_instance();
        let f = Formula::exists(
            2,
            Formula::atom(0, &[0, 2]).and(Formula::atom(0, &[2, 1])),
        );
        let q = ParametricQuery::new(f, vec![0], vec![1]);
        let from_c = q.answer_set(&s, &[2]); // c -> d -> {a,b,c}
        assert_eq!(from_c, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    #[should_panic(expected = "neither parameter nor output")]
    fn dangling_free_variable_rejected() {
        let _ = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![]);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_role_rejected() {
        let _ = ParametricQuery::new(Formula::atom(0, &[0, 0]), vec![0], vec![0]);
    }
}
