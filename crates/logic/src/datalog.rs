//! Conjunctive queries in Datalog-style rule syntax.
//!
//! The paper's practical query language is "mostly plain SQL";
//! select-project-join queries are conjunctive queries, which have a
//! crisp rule syntax:
//!
//! ```text
//! route($u; v)       :- Route($u, v)
//! connections($u; v) :- E($u, z), E(z, v), z != v
//! coworkers($u; v)   :- Works($u, d), Works(v, d), not Manager(v), v != $u
//! ```
//!
//! * head: `name(params; outputs)` — parameters carry `$`;
//! * body: comma-separated relation atoms, `x = y`, `x != y`, and
//!   `not Rel(...)` (safe, set-difference-style negation);
//! * body variables absent from the head are existentially quantified.
//!
//! Rules compile to [`ParametricQuery`] values after a *range
//! restriction* (safety) check: every variable used in the head, in an
//! equality, or under `not` must be bound by some positive body atom.

use crate::fo::{Formula, Var};
use crate::query::ParametricQuery;
use qpwm_structures::Schema;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Errors from [`parse_rule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// Not even the skeleton `head :- body` parsed; message inside.
    Syntax(String),
    /// The head used a relation name that is not in the schema, or an
    /// atom's arity was wrong.
    Schema(String),
    /// A variable violates range restriction (named inside).
    Unsafe(String),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::Syntax(m) => write!(f, "rule syntax error: {m}"),
            RuleError::Schema(m) => write!(f, "schema error: {m}"),
            RuleError::Unsafe(m) => write!(f, "unsafe rule: variable {m} is not range-restricted"),
        }
    }
}

impl std::error::Error for RuleError {}

/// A parsed rule, compiled and ready to run.
#[derive(Debug, Clone)]
pub struct Rule {
    /// The rule's name (head predicate).
    pub name: String,
    /// The compiled parametric query.
    pub query: ParametricQuery,
}

#[derive(Debug)]
enum BodyAtom {
    Rel { rel: usize, args: Vec<String>, negated: bool },
    Eq { lhs: String, rhs: String, negated: bool },
}

/// Parses one rule against a schema.
///
/// ```
/// use qpwm_logic::datalog::parse_rule;
/// use qpwm_structures::Schema;
///
/// let schema = Schema::new(vec![("E", 2)], 1);
/// let rule = parse_rule("two_hop($u; v) :- E($u, z), E(z, v)", &schema).unwrap();
/// assert_eq!(rule.name, "two_hop");
/// assert_eq!(rule.query.r(), 1);
/// assert_eq!(rule.query.s(), 1);
/// ```
pub fn parse_rule(input: &str, schema: &Schema) -> Result<Rule, RuleError> {
    let (head, body) = input
        .split_once(":-")
        .ok_or_else(|| RuleError::Syntax("missing :-".into()))?;

    // ---- head -----------------------------------------------------------
    let head = head.trim();
    let open = head
        .find('(')
        .ok_or_else(|| RuleError::Syntax("head needs (params; outputs)".into()))?;
    let name = head[..open].trim();
    if name.is_empty() {
        return Err(RuleError::Syntax("empty rule name".into()));
    }
    let args = head[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| RuleError::Syntax("head missing )".into()))?;
    let (params_part, outputs_part) = args
        .split_once(';')
        .ok_or_else(|| RuleError::Syntax("head needs a ; between params and outputs".into()))?;
    let parse_names = |part: &str, want_dollar: bool| -> Result<Vec<String>, RuleError> {
        part.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                if want_dollar {
                    s.strip_prefix('$')
                        .map(str::to_owned)
                        .ok_or_else(|| RuleError::Syntax(format!("parameter {s} needs a $")))
                } else if let Some(stripped) = s.strip_prefix('$') {
                    Err(RuleError::Syntax(format!("output ${stripped} must not carry a $")))
                } else {
                    Ok(s.to_owned())
                }
            })
            .collect()
    };
    let params = parse_names(params_part, true)?;
    let outputs = parse_names(outputs_part, false)?;
    if outputs.is_empty() {
        return Err(RuleError::Syntax("need at least one output variable".into()));
    }

    // ---- body -----------------------------------------------------------
    let mut atoms = Vec::new();
    for raw in split_atoms(body) {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let (negated, core) = match raw.strip_prefix("not ") {
            Some(rest) => (true, rest.trim()),
            None => (false, raw),
        };
        if let Some(open) = core.find('(') {
            let rel_name = core[..open].trim();
            let rel = schema
                .rel_id(rel_name)
                .ok_or_else(|| RuleError::Schema(format!("unknown relation {rel_name}")))?;
            let inner = core[open + 1..]
                .strip_suffix(')')
                .ok_or_else(|| RuleError::Syntax(format!("atom {core} missing )")))?;
            let args: Vec<String> = inner
                .split(',')
                .map(|s| s.trim().trim_start_matches('$').to_owned())
                .collect();
            if args.len() != schema.arity(rel) || args.iter().any(String::is_empty) {
                return Err(RuleError::Schema(format!(
                    "relation {rel_name} has arity {}",
                    schema.arity(rel)
                )));
            }
            atoms.push(BodyAtom::Rel { rel, args, negated });
        } else if let Some((l, r)) = core.split_once("!=") {
            atoms.push(BodyAtom::Eq {
                lhs: clean_var(l)?,
                rhs: clean_var(r)?,
                negated: !negated, // x != y is a negated equality
            });
        } else if let Some((l, r)) = core.split_once('=') {
            atoms.push(BodyAtom::Eq { lhs: clean_var(l)?, rhs: clean_var(r)?, negated });
        } else {
            return Err(RuleError::Syntax(format!("unparseable atom: {core}")));
        }
    }
    if atoms.is_empty() {
        return Err(RuleError::Syntax("empty body".into()));
    }

    // ---- range restriction ------------------------------------------------
    let positive: BTreeSet<&String> = atoms
        .iter()
        .filter_map(|a| match a {
            BodyAtom::Rel { args, negated: false, .. } => Some(args.iter()),
            _ => None,
        })
        .flatten()
        .collect();
    let mut must_be_bound: Vec<&String> = params.iter().chain(&outputs).collect();
    for atom in &atoms {
        match atom {
            BodyAtom::Rel { args, negated: true, .. } => must_be_bound.extend(args.iter()),
            BodyAtom::Eq { lhs, rhs, .. } => {
                must_be_bound.push(lhs);
                must_be_bound.push(rhs);
            }
            _ => {}
        }
    }
    for v in must_be_bound {
        if !positive.contains(v) {
            return Err(RuleError::Unsafe(v.clone()));
        }
    }

    // ---- compile to FO ------------------------------------------------------
    let mut vars: HashMap<String, Var> = HashMap::new();
    let intern = |name: &String, vars: &mut HashMap<String, Var>| -> Var {
        let next = vars.len() as Var;
        *vars.entry(name.clone()).or_insert(next)
    };
    // head variables first so parameter/output indices are stable
    for p in params.iter().chain(&outputs) {
        intern(p, &mut vars);
    }
    let mut conjuncts = Vec::new();
    for atom in &atoms {
        match atom {
            BodyAtom::Rel { rel, args, negated } => {
                let f = Formula::Atom {
                    rel: *rel,
                    args: args.iter().map(|a| intern(a, &mut vars)).collect(),
                };
                conjuncts.push(if *negated { f.not() } else { f });
            }
            BodyAtom::Eq { lhs, rhs, negated } => {
                let f = Formula::eq(intern(lhs, &mut vars), intern(rhs, &mut vars));
                conjuncts.push(if *negated { f.not() } else { f });
            }
        }
    }
    let mut formula = Formula::And(conjuncts);
    // existentially close body-only variables
    let head_vars: BTreeSet<&String> = params.iter().chain(&outputs).collect();
    let mut body_only: Vec<(String, Var)> = vars
        .iter()
        .filter(|(name, _)| !head_vars.contains(name))
        .map(|(n, v)| (n.clone(), *v))
        .collect();
    body_only.sort_unstable();
    for (_, v) in body_only {
        formula = Formula::exists(v, formula);
    }
    let param_vars: Vec<Var> = params.iter().map(|p| vars[p]).collect();
    let output_vars: Vec<Var> = outputs.iter().map(|o| vars[o]).collect();
    Ok(Rule {
        name: name.to_owned(),
        query: ParametricQuery::new(formula, param_vars, output_vars),
    })
}

fn clean_var(s: &str) -> Result<String, RuleError> {
    let v = s.trim().trim_start_matches('$');
    if v.is_empty() || !v.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(RuleError::Syntax(format!("bad variable {s:?}")));
    }
    Ok(v.to_owned())
}

/// Splits the body on commas that are not inside parentheses.
fn split_atoms(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in body.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&body[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpwm_structures::StructureBuilder;
    use std::sync::Arc;

    fn schema() -> Schema {
        Schema::new(vec![("E", 2), ("Route", 2), ("Manager", 1)], 1)
    }

    fn triangle() -> qpwm_structures::Structure {
        let schema = Arc::new(schema());
        let mut b = StructureBuilder::new(schema, 3);
        b.add(0, &[0, 1]).add(0, &[1, 2]).add(0, &[2, 0]);
        b.add(2, &[1]);
        b.build()
    }

    #[test]
    fn simple_rule_evaluates() {
        let rule = parse_rule("route($u; v) :- Route($u, v)", &schema()).expect("parses");
        assert_eq!(rule.name, "route");
        assert_eq!(rule.query.r(), 1);
        assert_eq!(rule.query.s(), 1);
    }

    #[test]
    fn join_with_inequality() {
        let rule = parse_rule(
            "connections($u; v) :- E($u, z), E(z, v), z != v",
            &schema(),
        )
        .expect("parses");
        let g = triangle();
        // from 0: 0 -> 1 -> 2, and z=1 != v=2: answer {2}
        assert_eq!(rule.query.answer_set(&g, &[0]), vec![vec![2]]);
    }

    #[test]
    fn negated_atom() {
        let rule = parse_rule(
            "succ($u; v) :- E($u, v), not Manager(v)",
            &schema(),
        )
        .expect("parses");
        let g = triangle();
        // 0 -> 1 but 1 is a manager: empty; 1 -> 2 fine.
        assert!(rule.query.answer_set(&g, &[0]).is_empty());
        assert_eq!(rule.query.answer_set(&g, &[1]), vec![vec![2]]);
    }

    #[test]
    fn two_outputs() {
        let rule = parse_rule(
            "edges($u; v, w) :- E(v, w), E($u, v)",
            &schema(),
        )
        .expect("parses");
        assert_eq!(rule.query.s(), 2);
        let g = triangle();
        // u=0: v must be 1 (E(0,1)); (v,w) = (1,2).
        assert_eq!(rule.query.answer_set(&g, &[0]), vec![vec![1, 2]]);
    }

    #[test]
    fn unsafe_rules_rejected() {
        let s = schema();
        // output not bound by a positive atom
        assert!(matches!(
            parse_rule("bad($u; v) :- E($u, z)", &s),
            Err(RuleError::Unsafe(v)) if v == "v"
        ));
        // negated atom with an unbound variable
        assert!(matches!(
            parse_rule("bad($u; v) :- E($u, v), not E(v, w)", &s),
            Err(RuleError::Unsafe(w)) if w == "w"
        ));
        // inequality with an unbound variable
        assert!(matches!(
            parse_rule("bad($u; v) :- E($u, v), v != q", &s),
            Err(RuleError::Unsafe(q)) if q == "q"
        ));
    }

    #[test]
    fn syntax_and_schema_errors() {
        let s = schema();
        assert!(matches!(parse_rule("no body here", &s), Err(RuleError::Syntax(_))));
        assert!(matches!(
            parse_rule("r($u; v) :- Unknown($u, v)", &s),
            Err(RuleError::Schema(_))
        ));
        assert!(matches!(
            parse_rule("r($u; v) :- E($u, v, w)", &s),
            Err(RuleError::Schema(_))
        ));
        assert!(matches!(
            parse_rule("r(u; v) :- E(u, v)", &s),
            Err(RuleError::Syntax(_))
        ));
        assert!(matches!(
            parse_rule("r($u; $v) :- E($u, $v)", &s),
            Err(RuleError::Syntax(_))
        ));
    }

    #[test]
    fn rule_query_matches_hand_built_formula() {
        let rule = parse_rule("route($u; v) :- Route($u, v)", &schema()).expect("parses");
        let hand = ParametricQuery::new(Formula::atom(1, &[0, 1]), vec![0], vec![1]);
        let g = triangle();
        for u in 0..3 {
            assert_eq!(
                rule.query.answer_set(&g, &[u]),
                hand.answer_set(&g, &[u])
            );
        }
    }
}
