//! FO evaluation on finite structures.
//!
//! An environment-passing evaluator with **guard-atom candidate
//! pruning** at the quantifiers: before `∃x φ` / `∀x φ` falls back to
//! scanning the whole universe, it asks the syntax of `φ` for an
//! over-approximation of the values of `x` that could possibly decide
//! the quantifier — the elements occurring in matching positions of
//! guard atoms (looked up through the structure's postings lists) or
//! forced by equalities. On bounded-degree structures with
//! range-restricted formulas this makes each quantifier range over
//! O(degree) candidates instead of all of `U`, while unguarded
//! quantifiers keep the sound full scan.

use crate::fo::{Formula, Var};
use qpwm_structures::{Element, RelId, Structure};
use std::collections::BTreeSet;

/// Evaluator for FO formulas on one structure.
///
/// Holds a scratch environment so repeated calls do not allocate.
pub struct Evaluator<'s> {
    structure: &'s Structure,
    env: Vec<Option<Element>>,
}

impl<'s> Evaluator<'s> {
    /// Creates an evaluator for `structure`, able to handle variables up to
    /// `max_var`.
    pub fn new(structure: &'s Structure, max_var: Var) -> Self {
        Evaluator { structure, env: vec![None; max_var as usize + 1] }
    }

    /// Evaluates `formula` under the given assignment of (some) free
    /// variables. `assignment` lists `(var, element)` pairs; every free
    /// variable of the formula must be assigned.
    ///
    /// # Panics
    /// Panics (in debug builds) if a free variable is unassigned.
    pub fn eval(&mut self, formula: &Formula, assignment: &[(Var, Element)]) -> bool {
        self.env.iter_mut().for_each(|slot| *slot = None);
        for &(v, e) in assignment {
            self.grow_to(v);
            self.env[v as usize] = Some(e);
        }
        self.eval_inner(formula)
    }

    fn grow_to(&mut self, v: Var) {
        if self.env.len() <= v as usize {
            self.env.resize(v as usize + 1, None);
        }
    }

    fn eval_inner(&mut self, formula: &Formula) -> bool {
        match formula {
            Formula::Atom { rel, args } => {
                let tuple: Vec<Element> = args
                    .iter()
                    .map(|v| {
                        self.env[*v as usize]
                            .expect("free variable without assignment in eval")
                    })
                    .collect();
                self.structure.contains(*rel, &tuple)
            }
            Formula::Eq(x, y) => {
                let ex = self.env[*x as usize].expect("unassigned variable");
                let ey = self.env[*y as usize].expect("unassigned variable");
                ex == ey
            }
            Formula::Not(f) => !self.eval_inner(f),
            Formula::And(fs) => fs.iter().all(|f| self.eval_inner(f)),
            Formula::Or(fs) => fs.iter().any(|f| self.eval_inner(f)),
            Formula::Exists(v, f) => {
                self.grow_to(*v);
                let saved = self.env[*v as usize];
                let mut shadowed: BTreeSet<Var> = BTreeSet::new();
                shadowed.insert(*v);
                let candidates =
                    candidates_true(self.structure, &self.env, f, *v, &mut shadowed);
                let mut found = false;
                match candidates {
                    // only candidate values can make f true: scan those
                    Some(list) => {
                        for e in list {
                            self.env[*v as usize] = Some(e);
                            if self.eval_inner(f) {
                                found = true;
                                break;
                            }
                        }
                    }
                    None => {
                        for e in self.structure.universe() {
                            self.env[*v as usize] = Some(e);
                            if self.eval_inner(f) {
                                found = true;
                                break;
                            }
                        }
                    }
                }
                self.env[*v as usize] = saved;
                found
            }
            Formula::Forall(v, f) => {
                self.grow_to(*v);
                let saved = self.env[*v as usize];
                let mut shadowed: BTreeSet<Var> = BTreeSet::new();
                shadowed.insert(*v);
                let candidates =
                    candidates_false(self.structure, &self.env, f, *v, &mut shadowed);
                let mut holds = true;
                match candidates {
                    // only candidate values can falsify f: scan those
                    Some(list) => {
                        for e in list {
                            self.env[*v as usize] = Some(e);
                            if !self.eval_inner(f) {
                                holds = false;
                                break;
                            }
                        }
                    }
                    None => {
                        for e in self.structure.universe() {
                            self.env[*v as usize] = Some(e);
                            if !self.eval_inner(f) {
                                holds = false;
                                break;
                            }
                        }
                    }
                }
                self.env[*v as usize] = saved;
                holds
            }
        }
    }
}

/// An over-approximation of the values of `v` under which `f` can be
/// **true**, given the current environment (`None` = no useful bound,
/// caller must scan the universe). Variables in `shadowed` — `v` itself
/// plus every quantifier variable crossed on the way down — are treated
/// as unconstrained wildcards: their (stale, outer) environment entries
/// must not be used as bindings.
///
/// Soundness invariant: if `f` evaluates to true with `v = e` (for the
/// current env on non-shadowed variables and *any* values of shadowed
/// ones), then `e` is in the returned list.
fn candidates_true(
    structure: &Structure,
    env: &[Option<Element>],
    f: &Formula,
    v: Var,
    shadowed: &mut BTreeSet<Var>,
) -> Option<Vec<Element>> {
    match f {
        Formula::Atom { rel, args } => {
            if args.contains(&v) {
                Some(atom_candidates(structure, env, *rel, args, v, shadowed))
            } else {
                None
            }
        }
        Formula::Eq(x, y) => {
            // Eq(v, y) with y bound pins v to a single value; Eq(v, v)
            // holds for every v.
            let other = match (*x == v, *y == v) {
                (true, true) => return None,
                (true, false) => *y,
                (false, true) => *x,
                (false, false) => return None,
            };
            if shadowed.contains(&other) {
                return None;
            }
            env.get(other as usize)
                .copied()
                .flatten()
                .map(|e| vec![e])
        }
        Formula::Not(g) => candidates_false(structure, env, g, v, shadowed),
        Formula::And(fs) => {
            // f true ⇒ every conjunct true, so any conjunct's candidate
            // set over-approximates; take the smallest available.
            let mut best: Option<Vec<Element>> = None;
            for g in fs {
                if let Some(c) = candidates_true(structure, env, g, v, shadowed) {
                    if best.as_ref().is_none_or(|b| c.len() < b.len()) {
                        best = Some(c);
                    }
                }
            }
            best
        }
        Formula::Or(fs) => {
            // f true ⇒ some disjunct true: need the union, and every
            // disjunct must contribute a bound.
            let mut union: Vec<Element> = Vec::new();
            for g in fs {
                union.extend(candidates_true(structure, env, g, v, shadowed)?);
            }
            union.sort_unstable();
            union.dedup();
            Some(union)
        }
        Formula::Exists(w, g) => {
            if *w == v {
                // v is rebound inside: f does not depend on the outer v.
                return None;
            }
            // f true ⇒ g true for some w; analyse g with w as a wildcard.
            with_shadowed(shadowed, *w, |sh| candidates_true(structure, env, g, v, sh))
        }
        Formula::Forall(w, g) => {
            if *w == v || structure.universe_size() == 0 {
                // Empty universe: ∀ is vacuously true for every v.
                return None;
            }
            // f true ⇒ g true for every (hence some) w.
            with_shadowed(shadowed, *w, |sh| candidates_true(structure, env, g, v, sh))
        }
    }
}

/// Dual of [`candidates_true`]: values of `v` under which `f` can be
/// **false** (`None` = caller must scan).
fn candidates_false(
    structure: &Structure,
    env: &[Option<Element>],
    f: &Formula,
    v: Var,
    shadowed: &mut BTreeSet<Var>,
) -> Option<Vec<Element>> {
    match f {
        // The complement of an atom's postings is almost everything —
        // no useful bound.
        Formula::Atom { .. } => None,
        Formula::Eq(x, y) => {
            if *x == v && *y == v {
                // v = v is never false.
                Some(Vec::new())
            } else {
                None
            }
        }
        Formula::Not(g) => candidates_true(structure, env, g, v, shadowed),
        Formula::And(fs) => {
            // f false ⇒ some conjunct false: union, all must bound.
            let mut union: Vec<Element> = Vec::new();
            for g in fs {
                union.extend(candidates_false(structure, env, g, v, shadowed)?);
            }
            union.sort_unstable();
            union.dedup();
            Some(union)
        }
        Formula::Or(fs) => {
            // f false ⇒ every disjunct false: smallest available bound.
            let mut best: Option<Vec<Element>> = None;
            for g in fs {
                if let Some(c) = candidates_false(structure, env, g, v, shadowed) {
                    if best.as_ref().is_none_or(|b| c.len() < b.len()) {
                        best = Some(c);
                    }
                }
            }
            best
        }
        Formula::Exists(w, g) => {
            if *w == v || structure.universe_size() == 0 {
                // Empty universe: ∃ is false for every v.
                return None;
            }
            // f false ⇒ g false for every (hence some) w.
            with_shadowed(shadowed, *w, |sh| candidates_false(structure, env, g, v, sh))
        }
        Formula::Forall(w, g) => {
            if *w == v {
                return None;
            }
            // f false ⇒ g false for some w.
            with_shadowed(shadowed, *w, |sh| candidates_false(structure, env, g, v, sh))
        }
    }
}

/// Runs `body` with `w` added to the shadowed set, restoring the set
/// afterwards (nothing to restore when `w` was already shadowed).
fn with_shadowed<R>(
    shadowed: &mut BTreeSet<Var>,
    w: Var,
    body: impl FnOnce(&mut BTreeSet<Var>) -> R,
) -> R {
    let fresh = shadowed.insert(w);
    let out = body(shadowed);
    if fresh {
        shadowed.remove(&w);
    }
    out
}

/// Candidate values for `v` from one guard atom: the elements at `v`'s
/// position(s) in tuples consistent with the non-shadowed bindings.
/// Uses the shortest postings list of a bound position as the access
/// path, falling back to the relation scan when nothing is bound.
fn atom_candidates(
    structure: &Structure,
    env: &[Option<Element>],
    rel: RelId,
    args: &[Var],
    v: Var,
    shadowed: &BTreeSet<Var>,
) -> Vec<Element> {
    let vpos = args.iter().position(|&a| a == v).expect("caller checked v occurs");
    let lookup = |w: Var| -> Option<Element> {
        if shadowed.contains(&w) {
            None
        } else {
            env.get(w as usize).copied().flatten()
        }
    };
    let mut best: Option<&[u32]> = None;
    for (pos, &w) in args.iter().enumerate() {
        if let Some(e) = lookup(w) {
            let list = structure.tuples_with(rel, pos, e);
            if best.is_none_or(|b: &[u32]| list.len() < b.len()) {
                best = Some(list);
            }
        }
    }
    let tuples = structure.tuples(rel);
    let mut out: Vec<Element> = Vec::new();
    let mut consider = |t: &[Element]| {
        // bound positions must match; repeated wildcards must agree
        let mut wildcard: Vec<(Var, Element)> = Vec::new();
        for (pos, &w) in args.iter().enumerate() {
            if let Some(e) = lookup(w) {
                if t[pos] != e {
                    return;
                }
            } else if let Some(&(_, prev)) = wildcard.iter().find(|(x, _)| *x == w) {
                if prev != t[pos] {
                    return;
                }
            } else {
                wildcard.push((w, t[pos]));
            }
        }
        out.push(t[vpos]);
    };
    match best {
        Some(list) => {
            for &ti in list {
                consider(&tuples[ti as usize]);
            }
        }
        None => {
            for t in tuples {
                consider(t);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpwm_structures::{Schema, StructureBuilder};
    use std::sync::Arc;

    fn triangle() -> Structure {
        // Directed 3-cycle 0 -> 1 -> 2 -> 0.
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 3);
        b.add(0, &[0, 1]).add(0, &[1, 2]).add(0, &[2, 0]);
        b.build()
    }

    #[test]
    fn atom_and_eq() {
        let s = triangle();
        let mut ev = Evaluator::new(&s, 2);
        assert!(ev.eval(&Formula::atom(0, &[0, 1]), &[(0, 0), (1, 1)]));
        assert!(!ev.eval(&Formula::atom(0, &[0, 1]), &[(0, 1), (1, 0)]));
        assert!(ev.eval(&Formula::eq(0, 1), &[(0, 2), (1, 2)]));
        assert!(!ev.eval(&Formula::eq(0, 1), &[(0, 2), (1, 0)]));
    }

    #[test]
    fn connectives() {
        let s = triangle();
        let mut ev = Evaluator::new(&s, 2);
        let both = Formula::atom(0, &[0, 1]).and(Formula::atom(0, &[1, 0]));
        assert!(!ev.eval(&both, &[(0, 0), (1, 1)]));
        let either = Formula::atom(0, &[0, 1]).or(Formula::atom(0, &[1, 0]));
        assert!(ev.eval(&either, &[(0, 0), (1, 1)]));
        assert!(ev.eval(&Formula::atom(0, &[0, 1]).not(), &[(0, 1), (1, 0)]));
    }

    #[test]
    fn exists_successor() {
        let s = triangle();
        let mut ev = Evaluator::new(&s, 1);
        // every vertex has an out-neighbor
        let has_succ = Formula::exists(1, Formula::atom(0, &[0, 1]));
        for v in 0..3 {
            assert!(ev.eval(&has_succ, &[(0, v)]), "vertex {v}");
        }
    }

    #[test]
    fn forall_over_empty_edge_targets() {
        // vertex 0 with edge only to 1; ∀y E(0,y) must fail on a 2-vertex
        // universe (E(0,0) missing), ∃y E(0,y) succeeds.
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 2);
        b.add(0, &[0, 1]);
        let s = b.build();
        let mut ev = Evaluator::new(&s, 1);
        assert!(!ev.eval(&Formula::forall(1, Formula::atom(0, &[0, 1])), &[(0, 0)]));
        assert!(ev.eval(&Formula::exists(1, Formula::atom(0, &[0, 1])), &[(0, 0)]));
    }

    #[test]
    fn two_step_reachability() {
        let s = triangle();
        let mut ev = Evaluator::new(&s, 2);
        // ∃z (E(x,z) ∧ E(z,y)): 0 reaches 2 in two steps, not 1.
        let two = Formula::exists(2, Formula::atom(0, &[0, 2]).and(Formula::atom(0, &[2, 1])));
        assert!(ev.eval(&two, &[(0, 0), (1, 2)]));
        assert!(!ev.eval(&two, &[(0, 0), (1, 1)]));
    }

    // ---- differential test: pruned quantifiers vs naive substitution

    use crate::naive::eval_by_substitution;
    use qpwm_rng::Rng;
    use std::collections::HashMap;

    /// Random formula over graph relation 0 and variables `0..=max_var`,
    /// with enough quantifier/connective mixing to hit every branch of
    /// the candidate analysis (guarded and unguarded quantifiers,
    /// shadowing, negation flips, equality pins).
    fn random_formula(rng: &mut Rng, depth: u32, max_var: Var) -> Formula {
        let choice = if depth == 0 { rng.gen_range(0u32..2) } else { rng.gen_range(0u32..8) };
        match choice {
            0 => Formula::atom(0, &[rng.gen_range(0..=max_var), rng.gen_range(0..=max_var)]),
            1 => Formula::eq(rng.gen_range(0..=max_var), rng.gen_range(0..=max_var)),
            2 => random_formula(rng, depth - 1, max_var).not(),
            3 => random_formula(rng, depth - 1, max_var)
                .and(random_formula(rng, depth - 1, max_var)),
            4 => random_formula(rng, depth - 1, max_var)
                .or(random_formula(rng, depth - 1, max_var)),
            5 | 6 => Formula::exists(
                rng.gen_range(0..=max_var),
                random_formula(rng, depth - 1, max_var),
            ),
            _ => Formula::forall(
                rng.gen_range(0..=max_var),
                random_formula(rng, depth - 1, max_var),
            ),
        }
    }

    #[test]
    fn differential_pruned_vs_substitution_on_random_formulas() {
        let mut rng = Rng::seed_from_u64(0xCAFE);
        let max_var: Var = 3;
        for round in 0..300u64 {
            let n = 1 + (round % 5) as u32;
            let schema = Arc::new(Schema::graph());
            let mut b = StructureBuilder::new(schema, n);
            for _ in 0..(n * 2) {
                b.add(0, &[rng.gen_range(0..n), rng.gen_range(0..n)]);
            }
            let s = b.build();
            let f = random_formula(&mut rng, 3, max_var);
            let mut fast = Evaluator::new(&s, max_var);
            let free: Vec<Var> = f.free_vars().into_iter().collect();
            // every assignment of the free variables
            let mut values = vec![0u32; free.len()];
            'assignments: loop {
                let pairs: Vec<(Var, Element)> =
                    free.iter().copied().zip(values.iter().copied()).collect();
                let map: HashMap<Var, Element> = pairs.iter().copied().collect();
                assert_eq!(
                    fast.eval(&f, &pairs),
                    eval_by_substitution(&s, &f, &map),
                    "round {round}: {f} under {pairs:?}"
                );
                let mut i = values.len();
                loop {
                    if i == 0 {
                        break 'assignments;
                    }
                    i -= 1;
                    values[i] += 1;
                    if values[i] < n {
                        break;
                    }
                    values[i] = 0;
                }
            }
        }
    }

    #[test]
    fn pruning_handles_unguarded_equality_witness() {
        // φ(x) = ∃y (E(y,y) ∧ y = x): naive active-domain pruning is
        // unsound here if it drops the equality pin — x itself appears in
        // no atom.
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 3);
        b.add(0, &[1, 1]);
        let s = b.build();
        let mut ev = Evaluator::new(&s, 1);
        let f = Formula::exists(1, Formula::atom(0, &[1, 1]).and(Formula::eq(1, 0)));
        assert!(ev.eval(&f, &[(0, 1)]));
        assert!(!ev.eval(&f, &[(0, 0)]));
        assert!(!ev.eval(&f, &[(0, 2)]));
    }

    #[test]
    fn quantifier_restores_environment() {
        let s = triangle();
        let mut ev = Evaluator::new(&s, 1);
        // ∃x1 E(x0,x1) ∧ E(x0,x1) with outer x1 assigned: the inner ∃ must
        // not clobber the outer assignment of x1.
        let f = Formula::exists(1, Formula::atom(0, &[0, 1])).and(Formula::atom(0, &[0, 1]));
        assert!(ev.eval(&f, &[(0, 0), (1, 1)]));
        assert!(!ev.eval(&f, &[(0, 0), (1, 2)]));
    }
}
