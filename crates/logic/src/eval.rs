//! FO evaluation on finite structures.
//!
//! A straightforward environment-passing evaluator: quantifiers range over
//! the whole universe. Complexity is `O(n^qd · |φ|)` per call — fine at the
//! structure sizes of the experiments (the paper's schemes only need
//! query evaluation as an oracle; they do not depend on its speed).

use crate::fo::{Formula, Var};
use qpwm_structures::{Element, Structure};

/// Evaluator for FO formulas on one structure.
///
/// Holds a scratch environment so repeated calls do not allocate.
pub struct Evaluator<'s> {
    structure: &'s Structure,
    env: Vec<Option<Element>>,
}

impl<'s> Evaluator<'s> {
    /// Creates an evaluator for `structure`, able to handle variables up to
    /// `max_var`.
    pub fn new(structure: &'s Structure, max_var: Var) -> Self {
        Evaluator { structure, env: vec![None; max_var as usize + 1] }
    }

    /// Evaluates `formula` under the given assignment of (some) free
    /// variables. `assignment` lists `(var, element)` pairs; every free
    /// variable of the formula must be assigned.
    ///
    /// # Panics
    /// Panics (in debug builds) if a free variable is unassigned.
    pub fn eval(&mut self, formula: &Formula, assignment: &[(Var, Element)]) -> bool {
        self.env.iter_mut().for_each(|slot| *slot = None);
        for &(v, e) in assignment {
            self.grow_to(v);
            self.env[v as usize] = Some(e);
        }
        self.eval_inner(formula)
    }

    fn grow_to(&mut self, v: Var) {
        if self.env.len() <= v as usize {
            self.env.resize(v as usize + 1, None);
        }
    }

    fn eval_inner(&mut self, formula: &Formula) -> bool {
        match formula {
            Formula::Atom { rel, args } => {
                let tuple: Vec<Element> = args
                    .iter()
                    .map(|v| {
                        self.env[*v as usize]
                            .expect("free variable without assignment in eval")
                    })
                    .collect();
                self.structure.contains(*rel, &tuple)
            }
            Formula::Eq(x, y) => {
                let ex = self.env[*x as usize].expect("unassigned variable");
                let ey = self.env[*y as usize].expect("unassigned variable");
                ex == ey
            }
            Formula::Not(f) => !self.eval_inner(f),
            Formula::And(fs) => fs.iter().all(|f| self.eval_inner(f)),
            Formula::Or(fs) => fs.iter().any(|f| self.eval_inner(f)),
            Formula::Exists(v, f) => {
                self.grow_to(*v);
                let saved = self.env[*v as usize];
                let mut found = false;
                for e in self.structure.universe() {
                    self.env[*v as usize] = Some(e);
                    if self.eval_inner(f) {
                        found = true;
                        break;
                    }
                }
                self.env[*v as usize] = saved;
                found
            }
            Formula::Forall(v, f) => {
                self.grow_to(*v);
                let saved = self.env[*v as usize];
                let mut holds = true;
                for e in self.structure.universe() {
                    self.env[*v as usize] = Some(e);
                    if !self.eval_inner(f) {
                        holds = false;
                        break;
                    }
                }
                self.env[*v as usize] = saved;
                holds
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpwm_structures::{Schema, StructureBuilder};
    use std::sync::Arc;

    fn triangle() -> Structure {
        // Directed 3-cycle 0 -> 1 -> 2 -> 0.
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 3);
        b.add(0, &[0, 1]).add(0, &[1, 2]).add(0, &[2, 0]);
        b.build()
    }

    #[test]
    fn atom_and_eq() {
        let s = triangle();
        let mut ev = Evaluator::new(&s, 2);
        assert!(ev.eval(&Formula::atom(0, &[0, 1]), &[(0, 0), (1, 1)]));
        assert!(!ev.eval(&Formula::atom(0, &[0, 1]), &[(0, 1), (1, 0)]));
        assert!(ev.eval(&Formula::eq(0, 1), &[(0, 2), (1, 2)]));
        assert!(!ev.eval(&Formula::eq(0, 1), &[(0, 2), (1, 0)]));
    }

    #[test]
    fn connectives() {
        let s = triangle();
        let mut ev = Evaluator::new(&s, 2);
        let both = Formula::atom(0, &[0, 1]).and(Formula::atom(0, &[1, 0]));
        assert!(!ev.eval(&both, &[(0, 0), (1, 1)]));
        let either = Formula::atom(0, &[0, 1]).or(Formula::atom(0, &[1, 0]));
        assert!(ev.eval(&either, &[(0, 0), (1, 1)]));
        assert!(ev.eval(&Formula::atom(0, &[0, 1]).not(), &[(0, 1), (1, 0)]));
    }

    #[test]
    fn exists_successor() {
        let s = triangle();
        let mut ev = Evaluator::new(&s, 1);
        // every vertex has an out-neighbor
        let has_succ = Formula::exists(1, Formula::atom(0, &[0, 1]));
        for v in 0..3 {
            assert!(ev.eval(&has_succ, &[(0, v)]), "vertex {v}");
        }
    }

    #[test]
    fn forall_over_empty_edge_targets() {
        // vertex 0 with edge only to 1; ∀y E(0,y) must fail on a 2-vertex
        // universe (E(0,0) missing), ∃y E(0,y) succeeds.
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 2);
        b.add(0, &[0, 1]);
        let s = b.build();
        let mut ev = Evaluator::new(&s, 1);
        assert!(!ev.eval(&Formula::forall(1, Formula::atom(0, &[0, 1])), &[(0, 0)]));
        assert!(ev.eval(&Formula::exists(1, Formula::atom(0, &[0, 1])), &[(0, 0)]));
    }

    #[test]
    fn two_step_reachability() {
        let s = triangle();
        let mut ev = Evaluator::new(&s, 2);
        // ∃z (E(x,z) ∧ E(z,y)): 0 reaches 2 in two steps, not 1.
        let two = Formula::exists(2, Formula::atom(0, &[0, 2]).and(Formula::atom(0, &[2, 1])));
        assert!(ev.eval(&two, &[(0, 0), (1, 2)]));
        assert!(!ev.eval(&two, &[(0, 0), (1, 1)]));
    }

    #[test]
    fn quantifier_restores_environment() {
        let s = triangle();
        let mut ev = Evaluator::new(&s, 1);
        // ∃x1 E(x0,x1) ∧ E(x0,x1) with outer x1 assigned: the inner ∃ must
        // not clobber the outer assignment of x1.
        let f = Formula::exists(1, Formula::atom(0, &[0, 1])).and(Formula::atom(0, &[0, 1]));
        assert!(ev.eval(&f, &[(0, 0), (1, 1)]));
        assert!(!ev.eval(&f, &[(0, 0), (1, 2)]));
    }
}
