//! Gaifman locality ranks.
//!
//! Gaifman's theorem: every FO query is local, with locality rank at most
//! `(7^qd − 1) / 2` for quantifier depth `qd` (and independent of the
//! structure). The bound is astronomically loose in practice — the paper
//! itself notes `q` "can be rather huge for practical applications" — so
//! schemes accept a caller-supplied rank, and this module also provides an
//! *empirical* checker that certifies a candidate rank on a concrete
//! structure (sound for that structure, which is all the marker needs:
//! marking is always per-instance).

use crate::query::ParametricQuery;
use qpwm_structures::{GaifmanGraph, NeighborhoodTypes, Structure};

/// Gaifman's worst-case locality-rank bound `(7^qd − 1)/2`, saturating.
pub fn gaifman_rank_bound(quantifier_depth: u32) -> u64 {
    let mut pow: u64 = 1;
    for _ in 0..quantifier_depth {
        pow = pow.saturating_mul(7);
    }
    (pow.saturating_sub(1)) / 2
}

/// Checks whether `rho` is a valid locality rank for `query` **on this
/// structure**: for every pair of parameter tuples with isomorphic
/// ρ-neighborhoods the membership of every output tuple must agree when
/// the output lies outside both extended neighborhoods.
///
/// Returns the smallest ρ ≤ `max_rho` that passes the (sufficient)
/// per-instance test, or `None` if none does. The test used here is the
/// simpler *full-tuple* variant: tuples `(ā, b̄)` and `(ā', b̄)` are
/// compared whenever `N_ρ(ā) ≈ N_ρ(ā')`; mismatches that Lemma 1 permits
/// (outputs inside `S_{2ρ+1}`) are skipped.
pub fn empirical_locality_rank(
    structure: &Structure,
    query: &ParametricQuery,
    max_rho: u32,
) -> Option<u32> {
    let gaifman = GaifmanGraph::of(structure);
    'rho: for rho in 0..=max_rho {
        let domain = qpwm_structures::types::all_tuples(structure, query.r());
        let census =
            NeighborhoodTypes::classify(structure, &gaifman, rho, domain.iter().cloned());
        let answers = query.answers_over(structure, domain.clone());
        // group parameters by type
        let mut by_type: Vec<Vec<usize>> = vec![Vec::new(); census.num_types()];
        for (i, a) in domain.iter().enumerate() {
            let t = census.type_of(a).expect("classified above");
            by_type[t].push(i);
        }
        for group in &by_type {
            for (pos, &i) in group.iter().enumerate() {
                for &j in &group[pos + 1..] {
                    if !outputs_agree_outside(structure, &gaifman, &answers, i, j, rho) {
                        continue 'rho;
                    }
                }
            }
        }
        return Some(rho);
    }
    None
}

fn outputs_agree_outside(
    structure: &Structure,
    gaifman: &GaifmanGraph,
    answers: &crate::query::QueryAnswers,
    i: usize,
    j: usize,
    rho: u32,
) -> bool {
    let a1 = &answers.parameters()[i];
    let a2 = &answers.parameters()[j];
    let mut centers: Vec<u32> = a1.clone();
    centers.extend_from_slice(a2);
    let forbidden = gaifman.sphere(&centers, 2 * rho + 1);
    let in_forbidden = |b: &[u32]| b.iter().any(|e| forbidden.binary_search(e).is_ok());
    let w1 = answers.active_ids(i);
    let w2 = answers.active_ids(j);
    let _ = structure;
    // Every output outside S_{2ρ+1}(ā1 ā2) must be in both or neither —
    // membership is an id binary search, content only read for the
    // sphere test.
    for &id in w1 {
        if !in_forbidden(answers.tuple(id)) && w2.binary_search(&id).is_err() {
            return false;
        }
    }
    for &id in w2 {
        if !in_forbidden(answers.tuple(id)) && w1.binary_search(&id).is_err() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fo::Formula;
    use qpwm_structures::figure1_instance;

    #[test]
    fn gaifman_bound_values() {
        assert_eq!(gaifman_rank_bound(0), 0);
        assert_eq!(gaifman_rank_bound(1), 3);
        assert_eq!(gaifman_rank_bound(2), 24);
        // saturates rather than overflowing
        assert!(gaifman_rank_bound(100) > 0);
    }

    #[test]
    fn edge_query_has_rank_one_or_less_on_figure1() {
        // The paper: ψ(u,v) ≡ E(u,v) has locality rank 1.
        let s = figure1_instance();
        let q = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
        let rank = empirical_locality_rank(&s, &q, 3).expect("local query");
        assert!(rank <= 1, "rank {rank}");
    }

    #[test]
    fn two_hop_query_is_certified_within_bound() {
        let s = figure1_instance();
        let f = Formula::exists(
            2,
            Formula::atom(0, &[0, 2]).and(Formula::atom(0, &[2, 1])),
        );
        let q = ParametricQuery::new(f, vec![0], vec![1]);
        assert!(empirical_locality_rank(&s, &q, 4).is_some());
    }
}
