//! A text syntax for first-order formulas.
//!
//! Grammar (ASCII; Unicode connectives also accepted):
//!
//! ```text
//! formula := quantified
//! quantified := ("exists" | "forall" | "∃" | "∀") var quantified
//!             | implication
//! implication := disjunction ("->" disjunction)?      // sugar: a -> b ≡ !a | b
//! disjunction := conjunction (("|" | "∨" | "or") conjunction)*
//! conjunction := negation (("&" | "∧" | "and") negation)*
//! negation := ("!" | "¬" | "not") negation | atom
//! atom := Rel "(" var ("," var)* ")" | var "=" var | var "!=" var
//!       | "(" formula ")"
//! var := identifier starting with a lowercase letter
//! Rel := identifier starting with an uppercase letter (looked up in the schema)
//! ```
//!
//! Variables are interned in first-appearance order; the returned
//! [`ParsedFormula`] maps names to [`Var`] indices so callers can
//! designate parameters and outputs by name.

use crate::fo::{Formula, Var};
use qpwm_structures::Schema;
use std::collections::HashMap;
use std::fmt;

/// A parsed formula plus its variable name table.
#[derive(Debug, Clone)]
pub struct ParsedFormula {
    /// The formula.
    pub formula: Formula,
    /// Name → variable index.
    pub vars: HashMap<String, Var>,
}

impl ParsedFormula {
    /// The variable index of `name`.
    pub fn var(&self, name: &str) -> Option<Var> {
        self.vars.get(name).copied()
    }

    /// Builds a [`crate::ParametricQuery`] by naming parameters/outputs.
    ///
    /// # Panics
    /// Panics if a name was never mentioned in the formula.
    pub fn query(&self, params: &[&str], outputs: &[&str]) -> crate::ParametricQuery {
        let resolve = |names: &[&str]| -> Vec<Var> {
            names
                .iter()
                .map(|n| self.var(n).unwrap_or_else(|| panic!("unknown variable {n}")))
                .collect()
        };
        crate::ParametricQuery::new(self.formula.clone(), resolve(params), resolve(outputs))
    }
}

/// Parse errors with byte positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    schema: &'a Schema,
    vars: HashMap<String, Var>,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { at: self.pos, message: message.into() })
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += self.input[self.pos..].chars().next().expect("nonempty").len_utf8();
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(token) {
            // word tokens must not continue as identifiers
            let end = self.pos + token.len();
            if token.chars().all(|c| c.is_alphanumeric()) {
                if let Some(next) = self.input[end..].chars().next() {
                    if next.is_alphanumeric() || next == '_' {
                        return false;
                    }
                }
            }
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn identifier(&mut self) -> Option<String> {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let mut len = 0;
        for c in rest.chars() {
            if c.is_alphanumeric() || c == '_' {
                len += c.len_utf8();
            } else {
                break;
            }
        }
        if len == 0 || !rest.chars().next().is_some_and(|c| c.is_alphabetic()) {
            return None;
        }
        let name = rest[..len].to_owned();
        self.pos += len;
        Some(name)
    }

    fn intern(&mut self, name: String) -> Var {
        let next = self.vars.len() as Var;
        *self.vars.entry(name).or_insert(next)
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        self.quantified()
    }

    fn quantified(&mut self) -> Result<Formula, ParseError> {
        for (tokens, is_exists) in [(["exists", "∃"], true), (["forall", "∀"], false)] {
            for t in tokens {
                if self.eat(t) {
                    let Some(name) = self.identifier() else {
                        return self.err("expected a variable after quantifier");
                    };
                    if !name.chars().next().is_some_and(char::is_lowercase) {
                        return self.err("variables must start lowercase");
                    }
                    let v = self.intern(name);
                    let body = self.quantified()?;
                    return Ok(if is_exists {
                        Formula::exists(v, body)
                    } else {
                        Formula::forall(v, body)
                    });
                }
            }
        }
        self.implication()
    }

    fn implication(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.disjunction()?;
        if self.eat("->") {
            let rhs = self.disjunction()?;
            return Ok(lhs.not().or(rhs));
        }
        Ok(lhs)
    }

    fn disjunction(&mut self) -> Result<Formula, ParseError> {
        let mut out = self.conjunction()?;
        loop {
            if self.eat("|") || self.eat("∨") || self.eat("or") {
                let rhs = self.conjunction()?;
                out = out.or(rhs);
            } else {
                return Ok(out);
            }
        }
    }

    fn conjunction(&mut self) -> Result<Formula, ParseError> {
        let mut out = self.negation()?;
        loop {
            if self.eat("&") || self.eat("∧") || self.eat("and") {
                let rhs = self.negation()?;
                out = out.and(rhs);
            } else {
                return Ok(out);
            }
        }
    }

    fn negation(&mut self) -> Result<Formula, ParseError> {
        if self.eat("!") || self.eat("¬") || self.eat("not") {
            return Ok(self.negation()?.not());
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Formula, ParseError> {
        self.skip_ws();
        if self.eat("(") {
            // could be a parenthesized formula
            let inner = self.formula()?;
            if !self.eat(")") {
                return self.err("expected )");
            }
            return Ok(inner);
        }
        // quantifiers may start here too (e.g. "x = y & exists z ...") —
        // handled by caller levels; here we need an identifier.
        let Some(name) = self.identifier() else {
            return self.err("expected an atom");
        };
        if name.chars().next().is_some_and(char::is_uppercase) {
            // relation atom
            let Some(rel) = self.schema.rel_id(&name) else {
                return self.err(format!("unknown relation {name}"));
            };
            if !self.eat("(") {
                return self.err("expected ( after relation name");
            }
            let mut args = Vec::new();
            loop {
                let Some(arg) = self.identifier() else {
                    return self.err("expected a variable");
                };
                args.push(self.intern(arg));
                if self.eat(",") {
                    continue;
                }
                if self.eat(")") {
                    break;
                }
                return self.err("expected , or )");
            }
            if args.len() != self.schema.arity(rel) {
                return self.err(format!(
                    "relation {name} has arity {}, got {}",
                    self.schema.arity(rel),
                    args.len()
                ));
            }
            return Ok(Formula::Atom { rel, args });
        }
        // equality or inequality
        let lhs = self.intern(name);
        if self.eat("!=") {
            let Some(rhs) = self.identifier() else {
                return self.err("expected a variable after !=");
            };
            let rhs = self.intern(rhs);
            return Ok(Formula::eq(lhs, rhs).not());
        }
        if self.eat("=") {
            let Some(rhs) = self.identifier() else {
                return self.err("expected a variable after =");
            };
            let rhs = self.intern(rhs);
            return Ok(Formula::eq(lhs, rhs));
        }
        self.err("expected =, != or a relation atom")
    }
}

/// Parses a formula against a schema.
///
/// ```
/// use qpwm_logic::parse_formula;
/// use qpwm_structures::Schema;
///
/// let schema = Schema::new(vec![("E", 2)], 1);
/// let parsed = parse_formula("exists z (E(u, z) & E(z, v))", &schema).unwrap();
/// let query = parsed.query(&["u"], &["v"]);
/// assert_eq!(query.r(), 1);
/// ```
pub fn parse_formula(input: &str, schema: &Schema) -> Result<ParsedFormula, ParseError> {
    let mut parser = Parser { input, pos: 0, schema, vars: HashMap::new() };
    let formula = parser.formula()?;
    parser.skip_ws();
    if parser.pos != input.len() {
        return parser.err("trailing input");
    }
    Ok(ParsedFormula { formula, vars: parser.vars })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluator;
    use qpwm_structures::StructureBuilder;
    use std::sync::Arc;

    fn schema() -> Schema {
        Schema::new(vec![("E", 2), ("Route", 2)], 1)
    }

    #[test]
    fn parses_simple_atom() {
        let p = parse_formula("E(u, v)", &schema()).expect("parses");
        assert_eq!(p.formula, Formula::atom(0, &[0, 1]));
        assert_eq!(p.var("u"), Some(0));
        assert_eq!(p.var("v"), Some(1));
    }

    #[test]
    fn parses_two_hop() {
        let p = parse_formula("exists z (E(u, z) & E(z, v))", &schema()).expect("parses");
        let expected = Formula::exists(
            0,
            Formula::atom(0, &[1, 0]).and(Formula::atom(0, &[0, 2])),
        );
        // variable numbering: z=0 (quantifier first), u=1, v=2
        assert_eq!(p.formula, expected);
    }

    #[test]
    fn parses_connective_precedence() {
        // & binds tighter than |
        let p = parse_formula("E(u,v) | E(v,u) & u = v", &schema()).expect("parses");
        match &p.formula {
            Formula::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Formula::And(_)));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn parses_negation_inequality_implication() {
        let p = parse_formula("u != v -> !E(u, v)", &schema()).expect("parses");
        // a -> b desugars to !a | b
        assert!(matches!(p.formula, Formula::Or(_)));
        let q = parse_formula("not (u = v)", &schema()).expect("parses");
        assert!(matches!(q.formula, Formula::Not(_)));
    }

    #[test]
    fn unicode_connectives() {
        let a = parse_formula("∃z (E(u,z) ∧ ¬(z = v))", &schema()).expect("parses");
        let b = parse_formula("exists z (E(u,z) & !(z = v))", &schema()).expect("parses");
        assert_eq!(a.formula, b.formula);
    }

    #[test]
    fn rejects_bad_input() {
        let s = schema();
        assert!(parse_formula("Nope(u, v)", &s).is_err());
        assert!(parse_formula("E(u)", &s).is_err());
        assert!(parse_formula("E(u, v) extra", &s).is_err());
        assert!(parse_formula("E(u, v", &s).is_err());
        assert!(parse_formula("", &s).is_err());
        assert!(parse_formula("existsz E(u, v)", &s).is_err());
    }

    #[test]
    fn parsed_queries_evaluate() {
        // round-trip: parse the edge query, evaluate on a triangle.
        let s = schema();
        let parsed = parse_formula("E(u, v)", &s).expect("parses");
        let q = parsed.query(&["u"], &["v"]);
        let schema = Arc::new(s);
        let mut b = StructureBuilder::new(schema, 3);
        b.add(0, &[0, 1]).add(0, &[1, 2]).add(0, &[2, 0]);
        let g = b.build();
        assert_eq!(q.answer_set(&g, &[0]), vec![vec![1]]);
    }

    #[test]
    fn forall_parses_and_evaluates() {
        let s = schema();
        let parsed = parse_formula("forall z (E(z, z) -> z = u)", &s).expect("parses");
        let schema = Arc::new(s);
        let mut b = StructureBuilder::new(schema, 2);
        b.add(0, &[0, 0]);
        let g = b.build();
        let mut ev = Evaluator::new(&g, parsed.formula.max_var());
        let u = parsed.var("u").expect("present");
        // only element 0 has a self-loop, so the formula holds for u=0
        assert!(ev.eval(&parsed.formula, &[(u, 0)]));
        assert!(!ev.eval(&parsed.formula, &[(u, 1)]));
    }

    #[test]
    fn word_operators_do_not_eat_identifiers() {
        // "orbit" is a variable, not "or" + "bit"
        let p = parse_formula("orbit = u", &schema()).expect("parses");
        assert!(p.var("orbit").is_some());
    }
}
