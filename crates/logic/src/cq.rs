//! A join-based fast path for conjunctive queries.
//!
//! The generic evaluator enumerates all `|U|^s` candidate outputs per
//! parameter and re-evaluates the formula on each — hopeless beyond toy
//! sizes. Most registered queries, though, are *conjunctive*: a chain of
//! existentials over a conjunction of atoms, equalities and safely
//! negated atoms (everything [`crate::datalog`] produces, and most
//! hand-built formulas). For those this module compiles a join plan:
//!
//! * positive atoms are joined by binding propagation, most-bound atom
//!   first (a greedy nested-loop join — no statistics, but early pruning
//!   does the heavy lifting at experiment scale);
//! * equalities, inequalities and negated atoms become filters, legal
//!   because range restriction guarantees their variables are bound.
//!
//! [`crate::ParametricQuery`] compiles a plan at construction when the
//! formula has this shape and transparently falls back to the generic
//! evaluator otherwise; a property test checks both paths agree.

use crate::fo::{Formula, Var};
use qpwm_structures::{AnswerSource, Element, RelId, Structure};
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
struct AtomRef {
    rel: RelId,
    args: Vec<Var>,
}

/// A compiled conjunctive-query plan.
#[derive(Debug, Clone)]
pub struct CqPlan {
    positive: Vec<AtomRef>,
    negative: Vec<AtomRef>,
    /// `(x, y, must_be_equal)`
    equalities: Vec<(Var, Var, bool)>,
    outputs: Vec<Var>,
    /// Highest variable index + 1 (environment size).
    env_size: usize,
}

impl CqPlan {
    /// Attempts to compile `formula` (with the given parameter and output
    /// variables) into a join plan. Returns `None` when the formula is
    /// not a safe conjunctive query — callers then use the generic
    /// evaluator.
    pub fn compile(formula: &Formula, params: &[Var], outputs: &[Var]) -> Option<CqPlan> {
        // strip the existential prefix
        let mut body = formula;
        let mut bound_by_exists: BTreeSet<Var> = BTreeSet::new();
        while let Formula::Exists(v, inner) = body {
            bound_by_exists.insert(*v);
            body = inner;
        }
        // a parameter or output shadowed by a quantifier would change
        // meaning under the join (the generic evaluator ignores the outer
        // binding); bail out to the generic path
        if params.iter().chain(outputs).any(|v| bound_by_exists.contains(v)) {
            return None;
        }
        let conjuncts: Vec<&Formula> = match body {
            Formula::And(fs) => fs.iter().collect(),
            other => vec![other],
        };
        let mut positive = Vec::new();
        let mut negative = Vec::new();
        let mut equalities = Vec::new();
        for c in conjuncts {
            match c {
                Formula::Atom { rel, args } => {
                    positive.push(AtomRef { rel: *rel, args: args.clone() })
                }
                Formula::Eq(x, y) => equalities.push((*x, *y, true)),
                Formula::Not(inner) => match inner.as_ref() {
                    Formula::Atom { rel, args } => {
                        negative.push(AtomRef { rel: *rel, args: args.clone() })
                    }
                    Formula::Eq(x, y) => equalities.push((*x, *y, false)),
                    _ => return None,
                },
                _ => return None,
            }
        }
        if positive.is_empty() {
            return None;
        }
        // safety: every output / negated / equality variable must be a
        // parameter or bound by a positive atom
        let positive_vars: BTreeSet<Var> = positive
            .iter()
            .flat_map(|a| a.args.iter().copied())
            .chain(params.iter().copied())
            .collect();
        let needs_binding = outputs
            .iter()
            .copied()
            .chain(negative.iter().flat_map(|a| a.args.iter().copied()))
            .chain(equalities.iter().flat_map(|&(x, y, _)| [x, y]));
        for v in needs_binding {
            if !positive_vars.contains(&v) {
                return None;
            }
        }
        // existential variables must also be covered (they always are for
        // range-restricted formulas; double-check to stay safe)
        for v in &bound_by_exists {
            if !positive_vars.contains(v) {
                return None;
            }
        }
        let env_size = positive
            .iter()
            .flat_map(|a| a.args.iter())
            .chain(params.iter())
            .chain(outputs.iter())
            .copied()
            .max()
            .unwrap_or(0) as usize
            + 1;
        Some(CqPlan {
            positive,
            negative,
            equalities,
            outputs: outputs.to_vec(),
            env_size,
        })
    }

    /// Evaluates the plan: the sorted set of output tuples for the given
    /// parameter assignment.
    pub fn answer_set(
        &self,
        structure: &Structure,
        params: &[Var],
        values: &[Element],
    ) -> Vec<Vec<Element>> {
        let mut results: BTreeSet<Vec<Element>> = BTreeSet::new();
        self.for_each_answer(structure, params, values, &mut |b| {
            results.insert(b.to_vec());
        });
        results.into_iter().collect()
    }

    /// Streams the join results to `visit` without materializing them.
    /// Tuples may repeat (one per existential witness) and arrive in join
    /// order, not sorted — the answer-set engine sorts and dedups.
    pub fn for_each_answer(
        &self,
        structure: &Structure,
        params: &[Var],
        values: &[Element],
        visit: &mut dyn FnMut(&[Element]),
    ) {
        let mut env: Vec<Option<Element>> = vec![None; self.env_size];
        for (v, e) in params.iter().zip(values) {
            env[*v as usize] = Some(*e);
        }
        let mut remaining: Vec<&AtomRef> = self.positive.iter().collect();
        let mut scratch: Vec<Element> = Vec::with_capacity(self.outputs.len());
        self.join(structure, &mut env, &mut remaining, &mut scratch, visit);
    }

    /// Binds the plan to a structure as an [`AnswerSource`], so the
    /// engine can materialize an interned family straight off the join.
    pub fn bind<'a>(&'a self, structure: &'a Structure, params: &'a [Var]) -> BoundPlan<'a> {
        BoundPlan { plan: self, structure, params }
    }

    fn join(
        &self,
        structure: &Structure,
        env: &mut Vec<Option<Element>>,
        remaining: &mut Vec<&AtomRef>,
        scratch: &mut Vec<Element>,
        visit: &mut dyn FnMut(&[Element]),
    ) {
        if remaining.is_empty() {
            if self.filters_pass(structure, env) {
                scratch.clear();
                scratch.extend(
                    self.outputs
                        .iter()
                        .map(|v| env[*v as usize].expect("outputs bound by safety")),
                );
                visit(scratch);
            }
            return;
        }
        // pick the most-bound atom (greedy selectivity heuristic)
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, a)| {
                a.args
                    .iter()
                    .filter(|v| env[**v as usize].is_some())
                    .count()
            })
            .expect("non-empty");
        let atom = remaining.swap_remove(idx);
        let tuples = structure.tuples(atom.rel);
        // Access path: when some position is already bound, iterate only
        // that element's postings list (the shortest one) instead of the
        // whole relation. Postings hold ascending tuple indices, so the
        // candidates arrive in exactly the order the full scan would
        // have visited them — output order is unchanged. This is what
        // makes the join O(matching tuples) instead of O(|relation|)
        // per parameter on bounded-degree structures.
        let mut best: Option<&[u32]> = None;
        for (pos, v) in atom.args.iter().enumerate() {
            if let Some(e) = env[*v as usize] {
                let list = structure.tuples_with(atom.rel, pos, e);
                if best.is_none_or(|b: &[u32]| list.len() < b.len()) {
                    best = Some(list);
                }
            }
        }
        match best {
            Some(list) => {
                for &ti in list {
                    self.join_tuple(structure, env, remaining, scratch, visit, atom, &tuples[ti as usize]);
                }
            }
            None => {
                for tuple in tuples {
                    self.join_tuple(structure, env, remaining, scratch, visit, atom, tuple);
                }
            }
        }
        remaining.push(atom);
    }

    /// One candidate tuple of the chosen atom: match it against the
    /// current bindings and recurse on success.
    #[allow(clippy::too_many_arguments)]
    fn join_tuple<'p>(
        &self,
        structure: &Structure,
        env: &mut Vec<Option<Element>>,
        remaining: &mut Vec<&'p AtomRef>,
        scratch: &mut Vec<Element>,
        visit: &mut dyn FnMut(&[Element]),
        atom: &AtomRef,
        tuple: &[Element],
    ) {
        let mut extensions: Vec<(Var, Element)> = Vec::new();
        for (v, &e) in atom.args.iter().zip(tuple) {
            match env[*v as usize] {
                Some(bound) if bound != e => return,
                Some(_) => {}
                None => {
                    // a variable repeated within this atom must match
                    if let Some(&(_, prev)) = extensions.iter().find(|(ev, _)| ev == v) {
                        if prev != e {
                            return;
                        }
                    } else {
                        extensions.push((*v, e));
                    }
                }
            }
        }
        for &(v, e) in &extensions {
            env[v as usize] = Some(e);
        }
        self.join(structure, env, remaining, scratch, visit);
        for &(v, _) in &extensions {
            env[v as usize] = None;
        }
    }

    fn filters_pass(&self, structure: &Structure, env: &[Option<Element>]) -> bool {
        for &(x, y, want_eq) in &self.equalities {
            let (ex, ey) = (
                env[x as usize].expect("bound by safety"),
                env[y as usize].expect("bound by safety"),
            );
            if (ex == ey) != want_eq {
                return false;
            }
        }
        let mut scratch: Vec<Element> = Vec::new();
        for atom in &self.negative {
            scratch.clear();
            scratch.extend(
                atom.args
                    .iter()
                    .map(|v| env[*v as usize].expect("bound by safety")),
            );
            if structure.contains(atom.rel, &scratch) {
                return false;
            }
        }
        true
    }
}

/// A [`CqPlan`] bound to a structure and parameter variables — the CQ
/// join plan's face as an [`AnswerSource`].
#[derive(Debug, Clone, Copy)]
pub struct BoundPlan<'a> {
    plan: &'a CqPlan,
    structure: &'a Structure,
    params: &'a [Var],
}

impl AnswerSource for BoundPlan<'_> {
    fn output_arity(&self) -> usize {
        self.plan.outputs.len()
    }

    fn for_each_answer(&self, param: &[Element], visit: &mut dyn FnMut(&[Element])) {
        self.plan.for_each_answer(self.structure, self.params, param, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParametricQuery;
    use qpwm_structures::{Schema, StructureBuilder};
    use std::sync::Arc;

    fn graph(n: u32, edges: &[(u32, u32)]) -> Structure {
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, n);
        for &(u, v) in edges {
            b.add(0, &[u, v]);
        }
        b.build()
    }

    #[test]
    fn compiles_single_atom() {
        let f = Formula::atom(0, &[0, 1]);
        let plan = CqPlan::compile(&f, &[0], &[1]).expect("compiles");
        let g = graph(4, &[(0, 1), (0, 2), (3, 0)]);
        assert_eq!(plan.answer_set(&g, &[0], &[0]), vec![vec![1], vec![2]]);
        assert_eq!(plan.answer_set(&g, &[0], &[3]), vec![vec![0]]);
    }

    #[test]
    fn compiles_two_hop_join() {
        let f = Formula::exists(
            2,
            Formula::atom(0, &[0, 2]).and(Formula::atom(0, &[2, 1])),
        );
        let plan = CqPlan::compile(&f, &[0], &[1]).expect("compiles");
        let g = graph(4, &[(0, 1), (1, 2), (1, 3), (2, 0)]);
        assert_eq!(plan.answer_set(&g, &[0], &[0]), vec![vec![2], vec![3]]);
    }

    #[test]
    fn filters_and_negation() {
        // E(u, v) ∧ ¬E(v, u) ∧ u ≠ v
        let f = Formula::atom(0, &[0, 1])
            .and(Formula::atom(0, &[1, 0]).not())
            .and(Formula::eq(0, 1).not());
        let plan = CqPlan::compile(&f, &[0], &[1]).expect("compiles");
        let g = graph(4, &[(0, 1), (1, 0), (0, 2), (3, 3)]);
        // (0,1) has a reverse edge; (0,2) does not; (3,3) fails u≠v.
        assert_eq!(plan.answer_set(&g, &[0], &[0]), vec![vec![2]]);
        assert!(plan.answer_set(&g, &[0], &[3]).is_empty());
    }

    #[test]
    fn repeated_variable_in_atom() {
        // self loops: E(v, v)
        let f = Formula::atom(0, &[1, 1]);
        let plan = CqPlan::compile(&f, &[0], &[1]).expect("compiles");
        let g = graph(4, &[(0, 0), (1, 2), (3, 3)]);
        // parameter 0 is irrelevant... but var 0 is a param not in the body;
        // answers: self-loop vertices
        assert_eq!(plan.answer_set(&g, &[0], &[1]), vec![vec![0], vec![3]]);
    }

    #[test]
    fn rejects_non_cq_shapes() {
        // disjunction
        let f = Formula::atom(0, &[0, 1]).or(Formula::atom(0, &[1, 0]));
        assert!(CqPlan::compile(&f, &[0], &[1]).is_none());
        // universal quantifier
        let f = Formula::forall(2, Formula::atom(0, &[0, 2]));
        assert!(CqPlan::compile(&f, &[0], &[1]).is_none());
        // unsafe output (v not in any positive atom)
        let f = Formula::atom(0, &[0, 0]);
        assert!(CqPlan::compile(&f, &[0], &[1]).is_none());
        // negation of a conjunction
        let f = Formula::atom(0, &[0, 1])
            .and(Formula::atom(0, &[1, 0]).and(Formula::atom(0, &[0, 0])).not());
        assert!(CqPlan::compile(&f, &[0], &[1]).is_none());
    }

    #[test]
    fn plan_agrees_with_generic_evaluator() {
        let f = Formula::exists(
            2,
            Formula::atom(0, &[0, 2])
                .and(Formula::atom(0, &[2, 1]))
                .and(Formula::eq(0, 1).not()),
        );
        let g = graph(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (4, 5), (5, 1)]);
        // via ParametricQuery both paths must agree (it uses the plan
        // internally; compare against a formula the planner rejects but
        // that is logically identical: wrap in a redundant Or)
        let fast = ParametricQuery::new(f.clone(), vec![0], vec![1]);
        let slow = ParametricQuery::new(f.clone().or(f), vec![0], vec![1]);
        for a in 0..6 {
            assert_eq!(
                fast.answer_set(&g, &[a]),
                slow.answer_set(&g, &[a]),
                "parameter {a}"
            );
        }
    }
}
