//! First-order logic over finite structures, parametric queries, locality
//! and VC-dimension.
//!
//! This crate supplies the *query language* side of the paper: FO formulas
//! `ψ(ū, v̄)` with distinguished parameter variables `ū` and output
//! variables `v̄`, their evaluation on finite structures, active-weight
//! sets `W_ā`, Gaifman locality ranks, and the Vapnik–Chervonenkis
//! dimension of the definable set systems `C(ψ, G)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datalog;
pub mod cq;
pub mod eval;
pub mod fo;
pub mod locality;
pub mod naive;
pub mod parse;
pub mod query;
pub mod vc;

pub use eval::Evaluator;
pub use fo::{Formula, Var};
pub use locality::{empirical_locality_rank, gaifman_rank_bound};
pub use parse::{parse_formula, ParseError, ParsedFormula};
pub use query::{ParametricQuery, QueryAnswers};
pub use vc::{is_shattered, vc_dimension, vc_of_answers, SetSystem};
