//! First-order formula syntax.
//!
//! Formulas are built from relational atoms and equality with `∧ ∨ ¬ ∃ ∀`.
//! Variables are plain integers; a formula does not bind them to roles —
//! [`crate::query::ParametricQuery`] designates which free variables are
//! parameters `ū` and which are outputs `v̄`.

use qpwm_structures::RelId;
use std::collections::BTreeSet;
use std::fmt;

/// A first-order variable.
pub type Var = u32;

/// A first-order formula over a relational schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// `R(x_1, ..., x_r)`
    Atom {
        /// The relation symbol.
        rel: RelId,
        /// Argument variables (length must equal the relation's arity).
        args: Vec<Var>,
    },
    /// `x = y`
    Eq(Var, Var),
    /// `¬φ`
    Not(Box<Formula>),
    /// `φ_1 ∧ ... ∧ φ_n`
    And(Vec<Formula>),
    /// `φ_1 ∨ ... ∨ φ_n`
    Or(Vec<Formula>),
    /// `∃x φ`
    Exists(Var, Box<Formula>),
    /// `∀x φ`
    Forall(Var, Box<Formula>),
}

impl Formula {
    /// Atom constructor.
    pub fn atom(rel: RelId, args: &[Var]) -> Formula {
        Formula::Atom { rel, args: args.to_vec() }
    }

    /// `x = y`.
    pub fn eq(x: Var, y: Var) -> Formula {
        Formula::Eq(x, y)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Binary conjunction (use `Formula::And` directly for wider ones).
    pub fn and(self, other: Formula) -> Formula {
        match self {
            Formula::And(mut fs) => {
                fs.push(other);
                Formula::And(fs)
            }
            f => Formula::And(vec![f, other]),
        }
    }

    /// Binary disjunction.
    pub fn or(self, other: Formula) -> Formula {
        match self {
            Formula::Or(mut fs) => {
                fs.push(other);
                Formula::Or(fs)
            }
            f => Formula::Or(vec![f, other]),
        }
    }

    /// Existential quantification.
    pub fn exists(v: Var, body: Formula) -> Formula {
        Formula::Exists(v, Box::new(body))
    }

    /// Universal quantification.
    pub fn forall(v: Var, body: Formula) -> Formula {
        Formula::Forall(v, Box::new(body))
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut BTreeSet::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut BTreeSet<Var>, out: &mut BTreeSet<Var>) {
        match self {
            Formula::Atom { args, .. } => {
                for v in args {
                    if !bound.contains(v) {
                        out.insert(*v);
                    }
                }
            }
            Formula::Eq(x, y) => {
                for v in [x, y] {
                    if !bound.contains(v) {
                        out.insert(*v);
                    }
                }
            }
            Formula::Not(f) => f.collect_free(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            Formula::Exists(v, f) | Formula::Forall(v, f) => {
                let fresh = bound.insert(*v);
                f.collect_free(bound, out);
                if fresh {
                    bound.remove(v);
                }
            }
        }
    }

    /// Quantifier depth (deepest nesting of `∃/∀`), the input to Gaifman's
    /// locality-rank bound.
    pub fn quantifier_depth(&self) -> u32 {
        match self {
            Formula::Atom { .. } | Formula::Eq(..) => 0,
            Formula::Not(f) => f.quantifier_depth(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(Formula::quantifier_depth).max().unwrap_or(0)
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.quantifier_depth(),
        }
    }

    /// Maximum variable index mentioned anywhere (bound or free); handy for
    /// sizing environments.
    pub fn max_var(&self) -> Var {
        match self {
            Formula::Atom { args, .. } => args.iter().copied().max().unwrap_or(0),
            Formula::Eq(x, y) => (*x).max(*y),
            Formula::Not(f) => f.max_var(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(Formula::max_var).max().unwrap_or(0)
            }
            Formula::Exists(v, f) | Formula::Forall(v, f) => (*v).max(f.max_var()),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Atom { rel, args } => {
                write!(f, "R{rel}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "x{a}")?;
                }
                write!(f, ")")
            }
            Formula::Eq(x, y) => write!(f, "x{x} = x{y}"),
            Formula::Not(inner) => write!(f, "¬({inner})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Exists(v, inner) => write!(f, "∃x{v} {inner}"),
            Formula::Forall(v, inner) => write!(f, "∀x{v} {inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_of_atom() {
        let f = Formula::atom(0, &[1, 2]);
        assert_eq!(f.free_vars().into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn quantifier_binds() {
        let f = Formula::exists(2, Formula::atom(0, &[1, 2]));
        assert_eq!(f.free_vars().into_iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(f.quantifier_depth(), 1);
    }

    #[test]
    fn shadowing_inside_does_not_leak() {
        // ∃x1 (R(x1) ∧ ∃x1 R(x1)): x1 never free.
        let inner = Formula::exists(1, Formula::atom(0, &[1]));
        let f = Formula::exists(1, Formula::atom(0, &[1]).and(inner));
        assert!(f.free_vars().is_empty());
        assert_eq!(f.quantifier_depth(), 2);
    }

    #[test]
    fn rebound_variable_free_outside() {
        // R(x1) ∧ ∃x1 R(x1): x1 IS free (first conjunct).
        let f = Formula::atom(0, &[1]).and(Formula::exists(1, Formula::atom(0, &[1])));
        assert_eq!(f.free_vars().into_iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn depth_takes_max_over_branches() {
        let deep = Formula::exists(1, Formula::exists(2, Formula::atom(0, &[1, 2])));
        let shallow = Formula::eq(3, 3);
        assert_eq!(deep.clone().and(shallow).quantifier_depth(), 2);
        assert_eq!(deep.max_var(), 2);
    }

    #[test]
    fn display_renders() {
        let f = Formula::exists(1, Formula::atom(0, &[0, 1]).and(Formula::eq(0, 1).not()));
        assert_eq!(f.to_string(), "∃x1 (R0(x0,x1) ∧ ¬(x0 = x1))");
    }
}
