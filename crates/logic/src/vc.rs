//! Vapnik–Chervonenkis dimension of definable set systems.
//!
//! For a formula ψ and structure `G`, `C(ψ, G) = {ψ(ā, G) : ā ∈ U^r}` is a
//! family of subsets of `U^s`. Theorem 2 ties watermarking impossibility to
//! `VC(ψ, G) = |W|`; this module computes VC-dimension exactly by breadth-
//! first growth of shattered sets (every subset of a shattered set is
//! shattered, so the shattered families form a downward-closed lattice and
//! can be explored level by level).

use qpwm_structures::Element;
use std::collections::{BTreeSet, HashSet};

/// A set system: the ground set and the family of subsets, both over
/// output tuples.
#[derive(Debug, Clone)]
pub struct SetSystem {
    ground: Vec<Vec<Element>>,
    /// Each family member as a set of indices into `ground`.
    sets: Vec<BTreeSet<u32>>,
}

impl SetSystem {
    /// Builds a set system from a family of tuple sets. The ground set is
    /// the union of all members.
    pub fn from_family(family: &[Vec<Vec<Element>>]) -> Self {
        let mut ground_set: BTreeSet<Vec<Element>> = BTreeSet::new();
        for s in family {
            ground_set.extend(s.iter().cloned());
        }
        let ground: Vec<Vec<Element>> = ground_set.into_iter().collect();
        let index = |t: &Vec<Element>| -> u32 {
            ground.binary_search(t).expect("member of union") as u32
        };
        let mut sets: Vec<BTreeSet<u32>> = family
            .iter()
            .map(|s| s.iter().map(index).collect())
            .collect();
        sets.sort();
        sets.dedup();
        SetSystem { ground, sets }
    }

    /// Builds the set system of an interned answer family without
    /// re-hashing tuples: the family's sorted universe *is* the ground
    /// set, and each active id maps to its universe rank.
    pub fn from_answers(answers: &crate::query::QueryAnswers) -> Self {
        let ground: Vec<Vec<Element>> =
            answers.universe_tuples().map(<[Element]>::to_vec).collect();
        let mut sets: Vec<BTreeSet<u32>> = (0..answers.len())
            .map(|i| {
                answers
                    .active_ids(i)
                    .iter()
                    .map(|&id| answers.universe_rank(id).expect("active id in universe") as u32)
                    .collect()
            })
            .collect();
        sets.sort();
        sets.dedup();
        SetSystem { ground, sets }
    }

    /// Size of the ground set.
    pub fn ground_size(&self) -> usize {
        self.ground.len()
    }

    /// Number of distinct sets in the family.
    pub fn family_size(&self) -> usize {
        self.sets.len()
    }

    /// The ground tuples.
    pub fn ground(&self) -> &[Vec<Element>] {
        &self.ground
    }
}

/// Is `candidate` (indices into the ground set) shattered by the family?
pub fn is_shattered(system: &SetSystem, candidate: &[u32]) -> bool {
    let k = candidate.len();
    if k >= 64 {
        return false; // trace bitmaps use u64; |shatterable| ≥ 64 is absurd here
    }
    let needed: usize = 1usize << k;
    if system.family_size() < needed {
        return false;
    }
    let mut traces: HashSet<u64> = HashSet::with_capacity(needed);
    for set in &system.sets {
        let mut trace = 0u64;
        for (bit, &e) in candidate.iter().enumerate() {
            if set.contains(&e) {
                trace |= 1 << bit;
            }
        }
        traces.insert(trace);
        if traces.len() == needed {
            return true;
        }
    }
    false
}

/// Exact VC-dimension of the system.
///
/// Level-wise search: maintain all shattered sets of size `d`, try to
/// extend each by one larger element. Because shattering is downward
/// closed, this finds the maximum without enumerating all subsets.
pub fn vc_dimension(system: &SetSystem) -> usize {
    let n = system.ground_size() as u32;
    if n == 0 || system.family_size() == 0 {
        return 0;
    }
    // Level 1: singletons with both traces (in some set and out of some set).
    let mut current: Vec<Vec<u32>> = (0..n)
        .filter(|&e| is_shattered(system, &[e]))
        .map(|e| vec![e])
        .collect();
    if current.is_empty() {
        return 0;
    }
    let mut dim = 1;
    loop {
        let mut next: Vec<Vec<u32>> = Vec::new();
        let mut seen: HashSet<Vec<u32>> = HashSet::new();
        for base in &current {
            let last = *base.last().expect("non-empty shattered set");
            for e in (last + 1)..n {
                let mut cand = base.clone();
                cand.push(e);
                if seen.contains(&cand) {
                    continue;
                }
                if is_shattered(system, &cand) {
                    seen.insert(cand.clone());
                    next.push(cand);
                }
            }
        }
        if next.is_empty() {
            return dim;
        }
        dim += 1;
        current = next;
    }
}

/// Convenience: VC-dimension of `C(ψ, G)` given materialized answers.
pub fn vc_of_answers(answers: &crate::query::QueryAnswers) -> usize {
    vc_dimension(&SetSystem::from_answers(answers))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(family: &[&[u32]]) -> SetSystem {
        let family: Vec<Vec<Vec<Element>>> = family
            .iter()
            .map(|s| s.iter().map(|&e| vec![e]).collect())
            .collect();
        SetSystem::from_family(&family)
    }

    #[test]
    fn empty_family_has_vc_zero() {
        let s = SetSystem::from_family(&[]);
        assert_eq!(vc_dimension(&s), 0);
    }

    #[test]
    fn single_set_has_vc_zero() {
        // One set cannot shatter even a singleton (needs 2 traces).
        let s = sys(&[&[0, 1]]);
        assert_eq!(vc_dimension(&s), 0);
    }

    #[test]
    fn singleton_shattering() {
        let s = sys(&[&[0], &[]]);
        assert_eq!(vc_dimension(&s), 1);
    }

    #[test]
    fn full_powerset_shatters_everything() {
        // All 8 subsets of {0,1,2}: VC = 3.
        let all: Vec<Vec<u32>> = (0..8u32)
            .map(|mask| (0..3).filter(|b| mask >> b & 1 == 1).collect())
            .collect();
        let family: Vec<&[u32]> = all.iter().map(Vec::as_slice).collect();
        let s = sys(&family);
        assert_eq!(s.ground_size(), 3);
        assert_eq!(vc_dimension(&s), 3);
    }

    #[test]
    fn intervals_have_vc_two() {
        // Intervals on a line shatter pairs but no triple (the middle
        // element cannot be excluded while keeping the outer two).
        let mut family: Vec<Vec<u32>> = Vec::new();
        for lo in 0..5u32 {
            for hi in lo..5 {
                family.push((lo..=hi).collect());
            }
        }
        family.push(Vec::new());
        let refs: Vec<&[u32]> = family.iter().map(Vec::as_slice).collect();
        assert_eq!(vc_dimension(&sys(&refs)), 2);
    }

    #[test]
    fn is_shattered_checks_all_traces() {
        let s = sys(&[&[0, 1], &[0], &[1]]);
        // missing the empty trace for {0,1}
        assert!(!is_shattered(&s, &[0, 1]));
        let s2 = sys(&[&[0, 1], &[0], &[1], &[]]);
        assert!(is_shattered(&s2, &[0, 1]));
    }

    #[test]
    fn duplicate_sets_are_collapsed() {
        let s = sys(&[&[0], &[0], &[]]);
        assert_eq!(s.family_size(), 2);
    }
}
