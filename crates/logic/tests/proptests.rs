//! Property-based tests for FO evaluation, active sets and VC-dimension.

use proptest::prelude::*;
use qpwm_logic::{
    is_shattered, vc_dimension, Formula, ParametricQuery, SetSystem,
};
use qpwm_structures::{Schema, Structure, StructureBuilder};
use std::sync::Arc;

fn graph_strategy() -> impl Strategy<Value = Structure> {
    (2u32..12).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..30).prop_map(move |edges| {
            let schema = Arc::new(Schema::graph());
            let mut b = StructureBuilder::new(schema, n);
            for (u, v) in edges {
                b.add(0, &[u, v]);
            }
            b.build()
        })
    })
}

fn family_strategy() -> impl Strategy<Value = Vec<Vec<Vec<u32>>>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0u32..8, 0..8),
        1..20,
    )
    .prop_map(|sets| {
        sets.into_iter()
            .map(|s| s.into_iter().map(|e| vec![e]).collect())
            .collect()
    })
}

proptest! {
    #[test]
    fn answer_sets_respect_formula_semantics(s in graph_strategy()) {
        // ψ(u,v) ≡ E(u,v): b ∈ W_a iff the edge is present.
        let q = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
        let answers = q.answers(&s);
        for (i, a) in answers.parameters().iter().enumerate() {
            for b in s.universe() {
                let in_set = answers.active_set(i).binary_search(&vec![b]).is_ok();
                prop_assert_eq!(in_set, s.contains(0, &[a[0], b]));
            }
        }
    }

    #[test]
    fn negation_complements_answers(s in graph_strategy(), a in 0u32..12) {
        prop_assume!(a < s.universe_size());
        let pos = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
        let neg = ParametricQuery::new(Formula::atom(0, &[0, 1]).not(), vec![0], vec![1]);
        let p = pos.answer_set(&s, &[a]);
        let n = neg.answer_set(&s, &[a]);
        prop_assert_eq!(p.len() + n.len(), s.universe_size() as usize);
        for b in &p {
            prop_assert!(n.binary_search(b).is_err());
        }
    }

    #[test]
    fn exists_is_union_of_instantiations(s in graph_strategy(), a in 0u32..12) {
        prop_assume!(a < s.universe_size());
        // ∃z E(a, z) ∧ E(z, v) == union over z of instantiated formulas
        let two_hop = ParametricQuery::new(
            Formula::exists(2, Formula::atom(0, &[0, 2]).and(Formula::atom(0, &[2, 1]))),
            vec![0],
            vec![1],
        );
        let fast = two_hop.answer_set(&s, &[a]);
        let mut slow: Vec<Vec<u32>> = Vec::new();
        for z in s.universe() {
            if s.contains(0, &[a, z]) {
                for v in s.universe() {
                    if s.contains(0, &[z, v]) && !slow.contains(&vec![v]) {
                        slow.push(vec![v]);
                    }
                }
            }
        }
        slow.sort_unstable();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn vc_dimension_bounded_by_log_family_size(family in family_strategy()) {
        let system = SetSystem::from_family(&family);
        let vc = vc_dimension(&system);
        // shattering d elements needs 2^d distinct sets
        prop_assert!(1usize << vc < system.family_size().max(1) * 2 || vc == 0);
        prop_assert!(vc <= system.ground_size());
    }

    #[test]
    fn shattered_sets_are_downward_closed(family in family_strategy()) {
        let system = SetSystem::from_family(&family);
        prop_assume!(system.ground_size() >= 2);
        let pair = [0u32, 1];
        if is_shattered(&system, &pair) {
            prop_assert!(is_shattered(&system, &[0]));
            prop_assert!(is_shattered(&system, &[1]));
        }
    }

    #[test]
    fn vc_of_sauer_shelah(family in family_strategy()) {
        // Sauer–Shelah: |family| <= sum_{i<=vc} C(ground, i).
        let system = SetSystem::from_family(&family);
        let vc = vc_dimension(&system);
        let n = system.ground_size() as u64;
        let mut bound: u64 = 1;
        let mut binom: u64 = 1;
        for i in 1..=vc as u64 {
            binom = binom * (n + 1 - i) / i.max(1);
            bound = bound.saturating_add(binom);
        }
        prop_assert!(system.family_size() as u64 <= bound.max(1));
    }
}

/// Strategy: random FO formulas over the graph schema with variables
/// 0..4 and bounded depth.
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (0u32..4, 0u32..4).prop_map(|(x, y)| Formula::atom(0, &[x, y])),
        (0u32..4, 0u32..4).prop_map(|(x, y)| Formula::eq(x, y)),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (0u32..4, inner.clone()).prop_map(|(v, f)| Formula::exists(v, f)),
            (0u32..4, inner).prop_map(|(v, f)| Formula::forall(v, f)),
        ]
    })
}

proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
    #[test]
    fn evaluators_agree_on_random_formulas(
        s in graph_strategy(),
        f in formula_strategy(),
        seeds in proptest::collection::vec(0u32..12, 4),
    ) {
        prop_assume!(s.universe_size() >= 1);
        let assignment: Vec<(u32, u32)> = (0u32..4)
            .zip(seeds.iter().map(|&e| e % s.universe_size()))
            .collect();
        let map: std::collections::HashMap<u32, u32> =
            assignment.iter().copied().collect();
        let mut fast = qpwm_logic::Evaluator::new(&s, f.max_var().max(3));
        prop_assert_eq!(
            fast.eval(&f, &assignment),
            qpwm_logic::naive::eval_by_substitution(&s, &f, &map)
        );
    }
}

/// Strategy: random conjunctive queries ψ(u; v) over the graph schema.
fn cq_strategy() -> impl Strategy<Value = Formula> {
    // vars: 0 = param, 1 = output, 2..4 existential
    let atom = (0u32..5, 0u32..5).prop_map(|(x, y)| Formula::atom(0, &[x, y]));
    (
        proptest::collection::vec(atom, 1..4),
        proptest::collection::vec((0u32..5, 0u32..5, any::<bool>()), 0..2),
    )
        .prop_map(|(atoms, eqs)| {
            let mut conjuncts = atoms;
            for (x, y, neg) in eqs {
                let e = Formula::eq(x, y);
                conjuncts.push(if neg { e.not() } else { e });
            }
            let mut f = Formula::And(conjuncts);
            for v in 2..5 {
                f = Formula::exists(v, f);
            }
            f
        })
}

proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
    #[test]
    fn cq_plan_agrees_with_generic_evaluation(
        s in graph_strategy(),
        f in cq_strategy(),
        a in 0u32..12,
    ) {
        prop_assume!(a < s.universe_size());
        let Some(plan) = qpwm_logic::cq::CqPlan::compile(&f, &[0], &[1]) else {
            return Ok(()); // unsafe shapes fall back; nothing to compare
        };
        // generic evaluation of the same formula (bypassing the plan by
        // constructing a logically-equal non-CQ wrapper)
        let slow = ParametricQuery::new(f.clone().or(f.clone()), vec![0], vec![1]);
        prop_assert!(!slow.has_cq_plan());
        let fast = plan.answer_set(&s, &[0], &[a]);
        let generic = slow.answer_set(&s, &[a]);
        prop_assert_eq!(fast, generic);
    }
}

proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
    /// Lemma 1: parameters with isomorphic ρ-neighborhoods have answer
    /// sets differing on at most η = r·k^(2ρ+1) elements (edge query,
    /// ρ = 1, r = 1).
    #[test]
    fn lemma1_deviation_bound(s in graph_strategy()) {
        use qpwm_structures::{GaifmanGraph, NeighborhoodTypes};
        let q = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
        let answers = q.answers(&s);
        let gaifman = GaifmanGraph::of(&s);
        let k = gaifman.max_degree() as u64;
        let eta = k.pow(3).max(1); // r = 1, ρ = 1: k^(2ρ+1)
        let census = NeighborhoodTypes::classify(
            &s,
            &gaifman,
            1,
            answers.parameters().iter().cloned(),
        );
        for (i, a) in answers.parameters().iter().enumerate() {
            for (j, b) in answers.parameters().iter().enumerate().skip(i + 1) {
                if census.type_of(a) != census.type_of(b) {
                    continue;
                }
                let wa = answers.active_set(i);
                let wb = answers.active_set(j);
                let only_a = wa.iter().filter(|t| wb.binary_search(t).is_err()).count();
                let only_b = wb.iter().filter(|t| wa.binary_search(t).is_err()).count();
                prop_assert!(
                    (only_a as u64) <= eta && (only_b as u64) <= eta,
                    "a={a:?} b={b:?}: {only_a}/{only_b} vs eta={eta}"
                );
            }
        }
    }
}
