//! Integration tests: the Theorem 3 pipeline end-to-end, across crates.

use qpwm::core::detect::HonestServer;
use qpwm::core::local_scheme::SelectionStrategy;
use qpwm::core::{LocalScheme, LocalSchemeConfig};
use qpwm::logic::{Formula, ParametricQuery};
use qpwm::workloads::graphs::{
    cycle_union, random_bounded_degree, unary_domain, with_random_weights,
};
use qpwm::workloads::travel::{example1_instance, random_travel, route_query, travel_domain};

fn edge_query() -> ParametricQuery {
    ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1])
}

fn greedy(d: u64, seed: u64) -> LocalSchemeConfig {
    LocalSchemeConfig { rho: 1, d, strategy: SelectionStrategy::Greedy, seed }
}

#[test]
fn definition2_holds_on_random_bounded_degree_instances() {
    for seed in 0..5 {
        let structure = random_bounded_degree(120, 4, 180, seed);
        let instance = with_random_weights(structure, 10, 100, seed);
        let query = edge_query();
        let scheme = match LocalScheme::build_over(
            &instance,
            &query,
            unary_domain(instance.structure()),
            &greedy(2, seed),
        ) {
            Ok(s) => s,
            Err(_) => continue, // some sparse seeds may not pair
        };
        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
        let marked = scheme.mark(instance.weights(), &message);
        let audit = scheme.audit(instance.weights(), &marked);
        assert!(audit.is_c_local(1), "seed {seed}");
        assert!(audit.is_d_global(2), "seed {seed}: {}", audit.max_global);
        let server = HonestServer::new(scheme.answers().clone(), marked);
        let report = scheme.detect(instance.weights(), &server);
        assert_eq!(report.bits, message, "seed {seed}");
    }
}

#[test]
fn capacity_grows_with_instance_size() {
    let query = edge_query();
    let mut last = 0usize;
    for cycles in [4u32, 16, 64] {
        let instance = with_random_weights(cycle_union(cycles, 6, 0), 10, 100, 1);
        let scheme = LocalScheme::build_over(
            &instance,
            &query,
            unary_domain(instance.structure()),
            &greedy(1, 3),
        )
        .expect("regular instances pair");
        assert!(
            scheme.capacity() > last,
            "cycles {cycles}: capacity {} vs {last}",
            scheme.capacity()
        );
        last = scheme.capacity();
    }
}

#[test]
fn tighter_budget_means_no_more_capacity() {
    let query = edge_query();
    let instance = with_random_weights(random_bounded_degree(200, 4, 320, 5), 10, 100, 2);
    let domain = unary_domain(instance.structure());
    let strict = LocalScheme::build_over(&instance, &query, domain.clone(), &greedy(1, 3))
        .expect("pairs");
    let loose = LocalScheme::build_over(&instance, &query, domain, &greedy(4, 3)).expect("pairs");
    assert!(
        loose.capacity() >= strict.capacity(),
        "loose {} < strict {}",
        loose.capacity(),
        strict.capacity()
    );
}

#[test]
fn paper_example_full_pipeline() {
    let travel = example1_instance();
    let query = route_query();
    let scheme = LocalScheme::build_over(
        &travel.instance,
        &query,
        travel_domain(&travel),
        &greedy(1, 1),
    );
    // The tiny instance may or may not pair depending on classes; just
    // assert the pipeline runs and any scheme found respects the audit.
    if let Ok(scheme) = scheme {
        let message = vec![true; scheme.capacity()];
        let marked = scheme.mark(travel.instance.weights(), &message);
        assert!(scheme.audit(travel.instance.weights(), &marked).is_d_global(1));
    }
}

#[test]
fn scaled_travel_catalogue_roundtrip() {
    let big = random_travel(150, 400, 3, 4, 2);
    let query = route_query();
    let scheme =
        LocalScheme::build_over(&big.instance, &query, travel_domain(&big), &greedy(2, 4))
            .expect("catalogues pair");
    assert!(scheme.capacity() >= 20, "capacity {}", scheme.capacity());
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| (i * 13) % 5 < 2).collect();
    let marked = scheme.mark(big.instance.weights(), &message);
    let server = HonestServer::new(scheme.answers().clone(), marked);
    assert_eq!(scheme.detect(big.instance.weights(), &server).bits, message);
}

#[test]
fn sampling_matches_papers_probability_bound() {
    // Proposition 2's sampling marker on a regular instance: when it
    // succeeds, the separation bound holds by construction.
    let instance = with_random_weights(cycle_union(30, 6, 0), 10, 100, 1);
    let query = edge_query();
    let config = LocalSchemeConfig {
        rho: 1,
        d: 2,
        strategy: SelectionStrategy::Sampling { max_retries: 100 },
        seed: 9,
    };
    let scheme =
        LocalScheme::build_over(&instance, &query, unary_domain(instance.structure()), &config)
            .expect("sampling succeeds on regular instances");
    assert!(scheme.stats().max_separation <= 2);
    assert!(scheme.stats().sampling_p > 0.0 && scheme.stats().sampling_p <= 1.0);
}

#[test]
fn two_hop_query_is_also_preserved() {
    // ψ(u,v) ≡ ∃z E(u,z) ∧ E(z,v): locality rank ≤ 3; use ρ = 2.
    let f = Formula::exists(2, Formula::atom(0, &[0, 2]).and(Formula::atom(0, &[2, 1])));
    let query = ParametricQuery::new(f, vec![0], vec![1]);
    let instance = with_random_weights(cycle_union(10, 8, 0), 10, 100, 4);
    let config = LocalSchemeConfig {
        rho: 2,
        d: 2,
        strategy: SelectionStrategy::Greedy,
        seed: 6,
    };
    let scheme =
        LocalScheme::build_over(&instance, &query, unary_domain(instance.structure()), &config)
            .expect("pairs exist");
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 1).collect();
    let marked = scheme.mark(instance.weights(), &message);
    let audit = scheme.audit(instance.weights(), &marked);
    assert!(audit.is_d_global(2), "global {}", audit.max_global);
    let server = HonestServer::new(scheme.answers().clone(), marked);
    assert_eq!(scheme.detect(instance.weights(), &server).bits, message);
}

#[test]
fn binary_parameter_queries_work_end_to_end() {
    // r = 2: ψ(u1, u2; v) ≡ E(u1, v) ∧ E(v, u2) — "weighted common
    // out/in-neighbors of the pair (u1, u2)". Exercises pair-neighborhood
    // censuses and the U² parameter domain.
    let f = Formula::atom(0, &[0, 2]).and(Formula::atom(0, &[2, 1]));
    let query = ParametricQuery::new(f, vec![0, 1], vec![2]);
    let instance = with_random_weights(cycle_union(5, 6, 0), 100, 900, 3);
    let scheme = LocalScheme::build(
        &instance,
        &query,
        &LocalSchemeConfig {
            rho: 1,
            d: 2,
            strategy: SelectionStrategy::Greedy,
            seed: 5,
        },
    )
    .expect("builds");
    assert!(scheme.capacity() >= 1, "capacity {}", scheme.capacity());
    // parameters are pairs
    assert_eq!(scheme.answers().parameters()[0].len(), 2);
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
    let marked = scheme.mark(instance.weights(), &message);
    let audit = scheme.audit(instance.weights(), &marked);
    assert!(audit.is_d_global(2), "global {}", audit.max_global);
    let server = HonestServer::new(scheme.answers().clone(), marked);
    assert_eq!(scheme.detect(instance.weights(), &server).bits, message);
}
