//! Glue test: Datalog rule text → compiled query (with join plan) →
//! Theorem 3 scheme → keyfile round-trip → detection — the full
//! owner-facing workflow through the textual frontend.

use qpwm::core::detect::{HonestServer, ObservedWeights};
use qpwm::core::incremental::MarkDeltas;
use qpwm::core::keyfile::SchemeKey;
use qpwm::core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm::core::TreeScheme;
use qpwm::logic::datalog::parse_rule;
use qpwm::structures::Weights;
use qpwm::trees::pattern::PatternQuery;
use qpwm::workloads::graphs::{cycle_union, unary_domain, with_random_weights};
use qpwm::workloads::xml_gen::{random_school, school_weights};

#[test]
fn rule_text_to_detection() {
    let instance = with_random_weights(cycle_union(30, 6, 0), 500, 3_000, 6);
    let schema = instance.structure().schema();
    let rule = parse_rule("neighbors($u; v) :- E($u, v)", schema).expect("parses");
    assert!(rule.query.has_cq_plan(), "edge rule should use the join plan");
    let scheme = LocalScheme::build_over(
        &instance,
        &rule.query,
        unary_domain(instance.structure()),
        &LocalSchemeConfig { rho: 1, d: 1, strategy: SelectionStrategy::Greedy, seed: 2 },
    )
    .expect("builds");
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
    let marked = scheme.mark(instance.weights(), &message);

    // persist the secret, reload it, detect with the reloaded key
    let key = SchemeKey { marking: scheme.marking().clone(), d: 1 };
    let reloaded = SchemeKey::from_text(&key.to_text()).expect("round-trips");
    let server = HonestServer::new(scheme.answers().clone(), marked);
    let report = reloaded
        .marking
        .extract(instance.weights(), &ObservedWeights::collect(&server));
    assert_eq!(report.bits, message);
}

#[test]
fn join_rule_preserves_both_hops() {
    let instance = with_random_weights(cycle_union(20, 6, 0), 500, 3_000, 9);
    let schema = instance.structure().schema();
    let rule = parse_rule(
        "two_hop($u; v) :- E($u, z), E(z, v), v != $u",
        schema,
    )
    .expect("parses");
    assert!(rule.query.has_cq_plan());
    let scheme = LocalScheme::build_over(
        &instance,
        &rule.query,
        unary_domain(instance.structure()),
        &LocalSchemeConfig { rho: 2, d: 2, strategy: SelectionStrategy::Greedy, seed: 4 },
    )
    .expect("builds");
    let message = vec![true; scheme.capacity()];
    let marked = scheme.mark(instance.weights(), &message);
    assert!(scheme.audit(instance.weights(), &marked).is_d_global(2));
}

#[test]
fn tree_scheme_survives_weight_updates_via_deltas() {
    // Theorem 7 for the tree scheme: re-apply stored deltas after the
    // owner refreshes exam scores.
    let doc = random_school(300, &["Ann", "Bo"], 12);
    let query = PatternQuery::parse("school/student[firstname=$a]/exam").expect("parses");
    let compiled = query.compile(&doc);
    let binary = doc.tree.to_binary();
    let weights = school_weights(&doc);
    let canonical: Vec<Vec<u32>> = {
        let mut seen = std::collections::HashSet::new();
        doc.nodes_with_tag("firstname")
            .into_iter()
            .filter_map(|f| doc.tree.children(f).first().copied())
            .filter(|&t| seen.insert(doc.tree.label(t)))
            .map(|t| vec![t])
            .collect()
    };
    let scheme = TreeScheme::build_with_threshold(&binary, &compiled, 16, canonical);
    assert!(scheme.capacity() >= 4);
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 3 != 0).collect();
    let marked = scheme.mark(&weights, &message);
    let deltas = MarkDeltas::from_marked(&weights, &marked);

    // the owner re-grades every exam (new weights on the same nodes)
    let mut new_weights = Weights::new(1);
    for key in weights.keys_sorted() {
        new_weights.set(&key, weights.get(&key) + 100);
    }
    let refreshed = deltas.reapply(&new_weights);
    let server = HonestServer::new(scheme.family().clone(), refreshed);
    let report = scheme.detect(&new_weights, &server);
    assert_eq!(report.bits, message);
}
