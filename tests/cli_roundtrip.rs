//! End-to-end test of the `qpwm` command-line tool: inspect → mark →
//! detect on a real XML file, including the false-positive check.

use std::path::PathBuf;
use std::process::Command;

const PATTERN: &str = "school/student[firstname=$a]/exam";

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qpwm-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn school_xml(students: usize) -> String {
    let names = ["Robert", "John", "Ana", "Wei"];
    let mut xml = String::from("<school>\n");
    for i in 0..students {
        let name = names[i % names.len()];
        let exam = (i * 7) % 21;
        xml.push_str(&format!(
            "  <student>\n    <firstname>{name}</firstname>\n    <lastname>L{i}</lastname>\n    <exam>{exam}</exam>\n  </student>\n"
        ));
    }
    xml.push_str("</school>\n");
    xml
}

fn run(args: &[&str]) -> (bool, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_qpwm"))
        .args(args)
        .output()
        .expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    (output.status.success(), text)
}

#[test]
fn full_mark_detect_cycle() {
    let dir = workdir("roundtrip");
    let doc = dir.join("school.xml");
    std::fs::write(&doc, school_xml(400)).expect("write doc");
    let marked = dir.join("marked.xml");
    let key = dir.join("secret.key");
    let doc_s = doc.to_str().expect("utf8");
    let marked_s = marked.to_str().expect("utf8");
    let key_s = key.to_str().expect("utf8");

    // inspect reports capacity
    let (ok, out) = run(&["inspect", "--xml", doc_s, "--pattern", PATTERN]);
    assert!(ok, "{out}");
    assert!(out.contains("capacity"), "{out}");

    // mark
    let message = "110100111010011011001011"; // 24 bits: enough for < 1e-6 significance
    let (ok, out) = run(&[
        "mark", "--xml", doc_s, "--pattern", PATTERN, "--message", message, "--out", marked_s,
        "--key-out", key_s,
    ]);
    assert!(ok, "{out}");
    assert!(marked.exists() && key.exists());

    // detect on the marked copy: full match, overwhelming significance
    let (ok, out) = run(&[
        "detect", "--xml", marked_s, "--original", doc_s, "--pattern", PATTERN, "--key", key_s,
        "--claim", message,
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("24/24 bits match"), "{out}");
    assert!(out.contains("MARK PRESENT"), "{out}");

    // detect on the unmarked original: inconclusive
    let (ok, out) = run(&[
        "detect", "--xml", doc_s, "--original", doc_s, "--pattern", PATTERN, "--key", key_s,
        "--claim", message,
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("inconclusive"), "{out}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn marked_document_stays_well_formed_and_close() {
    let dir = workdir("wellformed");
    let doc = dir.join("school.xml");
    std::fs::write(&doc, school_xml(200)).expect("write doc");
    let marked = dir.join("marked.xml");
    let key = dir.join("secret.key");
    let (ok, out) = run(&[
        "mark",
        "--xml",
        doc.to_str().expect("utf8"),
        "--pattern",
        PATTERN,
        "--message",
        "1010",
        "--out",
        marked.to_str().expect("utf8"),
        "--key-out",
        key.to_str().expect("utf8"),
    ]);
    assert!(ok, "{out}");
    // the marked file reparses, has the same shape, and every exam value
    // moved by at most 1
    let original = qpwm::trees::xml::parse_xml(&std::fs::read_to_string(&doc).expect("read"))
        .expect("original parses");
    let reparsed = qpwm::trees::xml::parse_xml(&std::fs::read_to_string(&marked).expect("read"))
        .expect("marked parses");
    assert_eq!(original.tree.len(), reparsed.tree.len());
    let exams_orig = original.nodes_with_tag("exam");
    let exams_marked = reparsed.nodes_with_tag("exam");
    assert_eq!(exams_orig.len(), exams_marked.len());
    let mut moved = 0;
    for (&a, &b) in exams_orig.iter().zip(&exams_marked) {
        let va: i64 = original
            .text(original.tree.children(a)[0])
            .and_then(|s| s.parse().ok())
            .expect("numeric");
        let vb: i64 = reparsed
            .text(reparsed.tree.children(b)[0])
            .and_then(|s| s.parse().ok())
            .expect("numeric");
        assert!((va - vb).abs() <= 1, "exam moved by {}", (va - vb).abs());
        if va != vb {
            moved += 1;
        }
    }
    assert_eq!(moved, 8, "4 bits = 4 pairs = 8 moved values");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn helpful_errors() {
    let (ok, out) = run(&["mark", "--xml", "/nonexistent.xml"]);
    assert!(!ok);
    assert!(out.contains("error:"), "{out}");
    let (ok, out) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(out.contains("unknown command"), "{out}");
    let (ok, out) = run(&[]);
    assert!(!ok);
    assert!(out.contains("usage"), "{out}");
}

#[test]
fn relational_mode_mark_detect_cycle() {
    let dir = workdir("relational");
    // tiny deterministic travel db
    let mut route = String::new();
    let mut weights = String::new();
    for trip in 0..60 {
        for k in 0..3 {
            route.push_str(&format!("Trip{trip},T{}\n", (trip * 3 + k) % 120));
        }
    }
    let mut timetable = String::new();
    for t in 0..120 {
        timetable.push_str(&format!("T{t},CityA,CityB,plane\n"));
        weights.push_str(&format!("T{t},{}\n", 100 + t));
    }
    let route_p = dir.join("route.csv");
    let tt_p = dir.join("timetable.csv");
    let w_p = dir.join("weights.csv");
    std::fs::write(&route_p, route).expect("write");
    std::fs::write(&tt_p, timetable).expect("write");
    std::fs::write(&w_p, weights).expect("write");
    let marked_p = dir.join("marked.csv");
    let key_p = dir.join("db.key");
    let spec = "Route(travel,transport); Timetable(t,dep,arr,ty)";
    let rule = "route($u; t) :- Route($u, t)";
    let message = "101101001111001011010110"; // 24 bits

    let (ok, out) = run(&[
        "mark-db", "--schema", spec,
        "--table", &format!("Route={}", route_p.display()),
        "--table", &format!("Timetable={}", tt_p.display()),
        "--weights", w_p.to_str().expect("utf8"),
        "--rule", rule, "--message", message,
        "--out-weights", marked_p.to_str().expect("utf8"),
        "--key-out", key_p.to_str().expect("utf8"),
    ]);
    assert!(ok, "{out}");

    let (ok, out) = run(&[
        "detect-db", "--schema", spec,
        "--table", &format!("Route={}", route_p.display()),
        "--table", &format!("Timetable={}", tt_p.display()),
        "--weights", w_p.to_str().expect("utf8"),
        "--suspect", marked_p.to_str().expect("utf8"),
        "--rule", rule, "--key", key_p.to_str().expect("utf8"),
        "--claim", message,
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("24/24 bits match"), "{out}");
    assert!(out.contains("MARK PRESENT"), "{out}");

    // unmarked original: inconclusive
    let (ok, out) = run(&[
        "detect-db", "--schema", spec,
        "--table", &format!("Route={}", route_p.display()),
        "--table", &format!("Timetable={}", tt_p.display()),
        "--weights", w_p.to_str().expect("utf8"),
        "--suspect", w_p.to_str().expect("utf8"),
        "--rule", rule, "--key", key_p.to_str().expect("utf8"),
        "--claim", message,
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("inconclusive"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}
