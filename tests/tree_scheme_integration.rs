//! Integration tests: the Theorem 5 pipeline on XML documents, with the
//! pattern compiler, binary encoding and tree scheme working together.

use qpwm::core::detect::HonestServer;
use qpwm::core::TreeScheme;
use qpwm::trees::pattern::PatternQuery;
use qpwm::workloads::xml_gen::{random_node_weights, random_binary_tree, random_school, school_weights};


/// One canonical parameter node per distinct firstname value.
fn canonical_parameters(doc: &qpwm::trees::xml::XmlDocument) -> Vec<Vec<u32>> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for f in doc.nodes_with_tag("firstname") {
        if let Some(&t) = doc.tree.children(f).first() {
            if seen.insert(doc.tree.label(t)) {
                out.push(vec![t]);
            }
        }
    }
    out
}
fn school_query() -> PatternQuery {
    PatternQuery::parse("school/student[firstname=$a]/exam").expect("parses")
}

#[test]
fn large_school_roundtrip() {
    let doc = random_school(800, &["Robert", "John", "Ana"], 3);
    let query = school_query();
    let compiled = query.compile(&doc);
    let binary = doc.tree.to_binary();
    let weights = school_weights(&doc);
    let scheme = TreeScheme::build_over(&binary, &compiled, 2, canonical_parameters(&doc));
    assert!(scheme.capacity() >= 1, "stats {:?}", scheme.stats());
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
    let marked = scheme.mark(&weights, &message);
    let audit = scheme.audit(&weights, &marked);
    assert!(audit.is_c_local(1));
    assert!(audit.is_d_global(1), "global {}", audit.max_global);
    let server = HonestServer::new(scheme.family().clone(), marked);
    assert_eq!(scheme.detect(&weights, &server).bits, message);
}

#[test]
fn marking_changes_only_exam_scores() {
    let doc = random_school(400, &["Ann", "Bo"], 5);
    let query = school_query();
    let compiled = query.compile(&doc);
    let binary = doc.tree.to_binary();
    let weights = school_weights(&doc);
    let scheme = TreeScheme::build_over(&binary, &compiled, 2, canonical_parameters(&doc));
    let marked = scheme.mark(&weights, &vec![true; scheme.capacity()]);
    // Every touched key must be an exam text node (an active weight).
    let exam_texts: std::collections::HashSet<u32> = doc
        .nodes_with_tag("exam")
        .into_iter()
        .filter_map(|e| doc.tree.children(e).first().copied())
        .collect();
    for key in marked.keys_sorted() {
        if marked.get(&key) != weights.get(&key) {
            assert!(exam_texts.contains(&key[0]), "touched non-exam node {key:?}");
        }
    }
}

#[test]
fn per_name_query_distortion_is_at_most_one() {
    // The paper's guarantee, checked per firstname: marking any message
    // moves each name's total exam score by at most 1.
    let names = ["Robert", "John", "Ana", "Wei"];
    let doc = random_school(600, &names, 8);
    let query = school_query();
    let compiled = query.compile(&doc);
    let binary = doc.tree.to_binary();
    let weights = school_weights(&doc);
    let scheme = TreeScheme::build_over(&binary, &compiled, 2, canonical_parameters(&doc));
    let marked = scheme.mark(&weights, &vec![false; scheme.capacity()]);
    for name in names {
        let sym = doc.text_symbol(name).expect("name occurs");
        let a = doc
            .tree
            .preorder()
            .into_iter()
            .find(|&n| doc.tree.label(n) == sym)
            .expect("node exists");
        let answers = query.answer_set_unranked(&doc, a);
        let before: i64 = answers.iter().map(|&t| weights.get(&[t])).sum();
        let after: i64 = answers.iter().map(|&t| marked.get(&[t])).sum();
        assert!((before - after).abs() <= 1, "{name}: {before} -> {after}");
    }
}

#[test]
fn capacity_tracks_w_over_m() {
    // Lemma 3: capacity ≈ |W| / (block_factor · m). Doubling the school
    // roughly doubles capacity.
    let query = school_query();
    let small_doc = random_school(300, &["A", "B"], 1);
    let large_doc = random_school(600, &["A", "B"], 1);
    let small = TreeScheme::build_over(&small_doc.tree.to_binary(), &query.compile(&small_doc), 2, canonical_parameters(&small_doc));
    let large = TreeScheme::build_over(&large_doc.tree.to_binary(), &query.compile(&large_doc), 2, canonical_parameters(&large_doc));
    assert!(
        large.capacity() as f64 >= 1.5 * small.capacity() as f64,
        "small {} large {}",
        small.capacity(),
        large.capacity()
    );
}

#[test]
fn compiled_automaton_agrees_with_ground_truth_on_random_docs() {
    for seed in 0..3 {
        let doc = random_school(40, &["Ann", "Bo", "Cy"], seed);
        let query = school_query();
        let compiled = query.compile(&doc);
        let binary = doc.tree.to_binary();
        for a in (0..doc.tree.len() as u32).step_by(7) {
            assert_eq!(
                query.answer_set_unranked(&doc, a),
                compiled.answer_set(&binary, &[a]),
                "seed {seed} a {a}"
            );
        }
    }
}

#[test]
fn hand_built_automaton_scheme_on_random_trees() {
    use qpwm::trees::automaton::{TreeAutomaton, STAR};
    use qpwm::trees::pebble::{pebbled_symbol, PebbledQuery};
    // Query: output pebble on a node labeled 0 whose parent is labeled 1
    // (parameter ignored) — 3 states: 0 none, 1 pebble-on-0 pending, 2 hit.
    let mut a = TreeAutomaton::new(3, 0);
    for base in [0u32, 1, 2] {
        for bits in 0..4u32 {
            let sym = pebbled_symbol(base, bits, 2);
            let b_here = bits & 0b10 != 0;
            for ql in [STAR, 0, 1, 2] {
                for qr in [STAR, 0, 1, 2] {
                    let child_pending = ql == 1 || qr == 1;
                    let child_hit = ql == 2 || qr == 2;
                    let state = if child_hit || (child_pending && base == 1) {
                        2
                    } else if b_here && base == 0 {
                        1
                    } else {
                        0
                    };
                    a.add_transition(ql, qr, sym, state);
                }
            }
        }
    }
    a.set_accepting(2, true);
    let q = PebbledQuery::new(a, 1);
    let tree = random_binary_tree(600, 2, 11);
    let weights = random_node_weights(&tree, 100, 200, 2);
    let scheme = TreeScheme::build(&tree, &q, 2);
    if scheme.capacity() == 0 {
        // possible on unlucky trees; the construction must still be sound
        return;
    }
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 1).collect();
    let marked = scheme.mark(&weights, &message);
    assert!(scheme.audit(&weights, &marked).is_d_global(1));
    let server = HonestServer::new(scheme.family().clone(), marked);
    assert_eq!(scheme.detect(&weights, &server).bits, message);
}
