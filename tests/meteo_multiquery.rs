//! The meteo workload end-to-end: two registered join queries over a
//! station network, preserved simultaneously by one multi-query scheme.

use qpwm::core::detect::HonestServer;
use qpwm::core::local_scheme::{LocalSchemeConfig, SelectionStrategy};
use qpwm::core::MultiQueryScheme;
use qpwm::workloads::meteo::{
    random_meteo, region_domain, regional_rule, service_domain, syndicated_rule,
};

#[test]
fn both_meteo_queries_preserved_and_detectable() {
    let m = random_meteo(240, 60, 8, 8, 5);
    let regional = regional_rule(&m);
    let syndicated = syndicated_rule(&m);
    let config = LocalSchemeConfig {
        rho: 1,
        d: 2,
        strategy: SelectionStrategy::Greedy,
        seed: 3,
    };
    let scheme = MultiQueryScheme::build(
        &m.instance,
        &[
            (&regional.query, region_domain(&m)),
            (&syndicated.query, service_domain(&m)),
        ],
        &config,
    )
    .expect("meteo instances pair");
    assert!(scheme.capacity() >= 8, "capacity {}", scheme.capacity());

    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 3 == 1).collect();
    let marked = scheme.mark(m.instance.weights(), &message);

    // both registered queries stay within d
    let audits = scheme.audit(m.instance.weights(), &marked);
    for (i, d) in audits.iter().enumerate() {
        assert!(*d <= 2, "query {i}: distortion {d}");
    }
    // per-region mean temperature moves by < 0.1 °C × |stations|⁻¹ —
    // check the raw sums directly too
    for (i, &region) in m.regions.iter().enumerate() {
        let _ = region;
        let answers = scheme.answers(0);
        let before: i64 = answers.set_tuples(i).map(|s| m.instance.weights().get(s)).sum();
        let after: i64 = answers.set_tuples(i).map(|s| marked.get(s)).sum();
        assert!((before - after).abs() <= 2);
    }

    // detection through the syndication query alone (a service's feed)
    let server = HonestServer::new(scheme.answers(1).clone(), marked);
    let report = scheme.detect(m.instance.weights(), &server);
    let clean: usize = report.scores.iter().filter(|s| s.abs() >= 2).count();
    // the syndication feeds may not expose every pair member; the exposed
    // ones must decode correctly
    for ((bit, expected), score) in
        report.bits.iter().zip(&message).zip(&report.scores)
    {
        if score.abs() >= 2 {
            assert_eq!(bit, expected);
        }
    }
    assert!(clean >= scheme.capacity() / 2, "clean {clean}");
}
