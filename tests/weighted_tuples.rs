//! The general weight arity `s = 2`: weights attached to *pairs*
//! (edges), exactly the `W : U^s → N` of the paper's Definition 1.
//!
//! Query: `ψ(u; v₁, v₂) ≡ E(v₁, v₂) ∧ (u = v₁ ∨ u = v₂)` — "the weighted
//! edges incident to u". The whole pipeline (answers, classes, pairing,
//! marking, detection) is arity-generic; this test proves it.

use qpwm::core::detect::HonestServer;
use qpwm::core::local_scheme::SelectionStrategy;
use qpwm::core::{LocalScheme, LocalSchemeConfig};
use qpwm::logic::{Formula, ParametricQuery};
use qpwm::structures::{Schema, StructureBuilder, WeightedStructure, Weights};
use std::sync::Arc;

/// Disjoint 6-cycles with edge weights; schema declares s = 2.
fn edge_weighted_cycles(cycles: u32) -> WeightedStructure {
    let schema = Arc::new(Schema::new(vec![("E", 2)], 2));
    let n = cycles * 6;
    let mut b = StructureBuilder::new(schema, n);
    let mut w = Weights::new(2);
    for c in 0..cycles {
        let base = c * 6;
        for i in 0..6 {
            let u = base + i;
            let v = base + (i + 1) % 6;
            b.add(0, &[u, v]);
            b.add(0, &[v, u]);
            let weight = 500 + (u as i64 * 7 + v as i64) % 90;
            w.set(&[u, v], weight);
            w.set(&[v, u], weight);
        }
    }
    WeightedStructure::new(b.build(), w)
}

fn incident_edges_query() -> ParametricQuery {
    // ψ(u; v1, v2) ≡ E(v1, v2) ∧ (u = v1 ∨ u = v2)
    let formula = Formula::atom(0, &[1, 2]).and(Formula::eq(0, 1).or(Formula::eq(0, 2)));
    ParametricQuery::new(formula, vec![0], vec![1, 2])
}

#[test]
fn answer_sets_are_incident_edge_tuples() {
    let instance = edge_weighted_cycles(2);
    let query = incident_edges_query();
    let answers = query.answer_set(instance.structure(), &[0]);
    // vertex 0's incident edge tuples in both orientations:
    // (0,1), (1,0), (0,5), (5,0)
    assert_eq!(
        answers,
        vec![vec![0, 1], vec![0, 5], vec![1, 0], vec![5, 0]]
    );
}

#[test]
fn scheme_marks_edge_weights_and_detects() {
    let instance = edge_weighted_cycles(8);
    let query = incident_edges_query();
    let domain: Vec<Vec<u32>> = instance.structure().universe().map(|e| vec![e]).collect();
    let config = LocalSchemeConfig {
        rho: 1,
        d: 1,
        strategy: SelectionStrategy::Greedy,
        seed: 3,
    };
    let scheme =
        LocalScheme::build_over(&instance, &query, domain, &config).expect("builds");
    assert!(scheme.capacity() >= 4, "capacity {}", scheme.capacity());
    // every marked key is a 2-tuple
    for pair in scheme.marking().pairs() {
        assert_eq!(pair.plus.len(), 2);
        assert_eq!(pair.minus.len(), 2);
    }
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 1).collect();
    let marked = scheme.mark(instance.weights(), &message);
    let audit = scheme.audit(instance.weights(), &marked);
    assert!(audit.is_c_local(1));
    assert!(audit.is_d_global(1), "global {}", audit.max_global);
    let server = HonestServer::new(scheme.answers().clone(), marked);
    let report = scheme.detect(instance.weights(), &server);
    assert_eq!(report.bits, message);
}

#[test]
fn per_vertex_total_incident_weight_is_preserved_within_d() {
    let instance = edge_weighted_cycles(8);
    let query = incident_edges_query();
    let domain: Vec<Vec<u32>> = instance.structure().universe().map(|e| vec![e]).collect();
    let config = LocalSchemeConfig {
        rho: 1,
        d: 2,
        strategy: SelectionStrategy::Greedy,
        seed: 8,
    };
    let scheme =
        LocalScheme::build_over(&instance, &query, domain, &config).expect("builds");
    let marked = scheme.mark(instance.weights(), &vec![true; scheme.capacity()]);
    // hand-check the d-global bound: each vertex's summed incident edge
    // weight moved by at most 2
    for u in instance.structure().universe() {
        let edges = query.answer_set(instance.structure(), &[u]);
        let before: i64 = edges.iter().map(|e| instance.weights().get(e)).sum();
        let after: i64 = edges.iter().map(|e| marked.get(e)).sum();
        assert!((before - after).abs() <= 2, "vertex {u}: {before} -> {after}");
    }
}
