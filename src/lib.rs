//! # qpwm — query-preserving watermarking
//!
//! A reproduction of *Gross-Amblard, "Query-preserving watermarking of
//! relational databases and XML documents", PODS 2003* as a Rust
//! workspace. This facade crate re-exports the public API of every
//! subcrate:
//!
//! * [`structures`] — weighted relational structures, Gaifman graphs,
//!   neighborhoods, isomorphism types;
//! * [`logic`] — first-order parametric queries, locality, VC-dimension;
//! * [`trees`] — binary Σ-trees, XML, tree automata, pattern queries;
//! * [`core`] — the watermarking schemes (Theorems 3 and 5), capacity
//!   counting (Theorem 1), impossibility witnesses (Theorems 2 and 6),
//!   the adversarial transform (Fact 1) and incremental maintenance
//!   (Theorems 7 and 8);
//! * [`baselines`] — Agrawal–Kiernan and Khanna–Zane;
//! * [`fingerprint`] — multi-tenant fingerprinting: per-recipient key
//!   derivation from a master secret, the append-only issuance ledger,
//!   and forensic traitor tracing (`accuse`);
//! * [`workloads`] — reproducible synthetic workload generators;
//! * [`par`] — deterministic scoped-thread parallel map/reduce;
//! * [`serve`] — the HTTP data server (answer sets, aggregates,
//!   owner-side detection over the wire, cache + metrics);
//! * [`store`] — the crash-safe persistent store: checksummed pages, a
//!   redo WAL, transactional re-marking, and seeded crash injection.
//!
//! ## Quickstart
//!
//! ```
//! use qpwm::core::{LocalScheme, LocalSchemeConfig};
//! use qpwm::core::local_scheme::SelectionStrategy;
//! use qpwm::core::detect::HonestServer;
//! use qpwm::workloads::travel::{example1_instance, route_query, travel_domain};
//!
//! // The paper's Example 1 travel database and its registered query.
//! let travel = example1_instance();
//! let query = route_query();
//!
//! // Build a Theorem 3 scheme preserving ψ(u,v) = Route(u,v).
//! let config = LocalSchemeConfig {
//!     rho: 1,
//!     d: 1,
//!     strategy: SelectionStrategy::Greedy,
//!     seed: 7,
//! };
//! let scheme = LocalScheme::build_over(
//!     &travel.instance,
//!     &query,
//!     travel_domain(&travel),
//!     &config,
//! ).expect("scheme exists");
//!
//! // Mark, serve, detect.
//! let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
//! let marked = scheme.mark(travel.instance.weights(), &message);
//! let server = HonestServer::new(scheme.answers().clone(), marked);
//! let report = scheme.detect(travel.instance.weights(), &server);
//! assert_eq!(report.bits, message);
//! ```

pub use qpwm_baselines as baselines;
pub use qpwm_bench as bench;
pub use qpwm_core as core;
pub use qpwm_fingerprint as fingerprint;
pub use qpwm_logic as logic;
pub use qpwm_par as par;
pub use qpwm_serve as serve;
pub use qpwm_store as store;
pub use qpwm_structures as structures;
pub use qpwm_trees as trees;
pub use qpwm_workloads as workloads;
