//! `qpwm` — command-line watermarking of XML documents.
//!
//! ```text
//! qpwm inspect  --xml doc.xml --pattern 'school/student[firstname=$a]/exam'
//! qpwm mark     --xml doc.xml --pattern '...' --message 101101 \
//!               --out marked.xml --key-out secret.key
//! qpwm detect   --xml suspect.xml --original doc.xml --pattern '...' \
//!               --key secret.key
//! ```
//!
//! `mark` builds the Theorem 5 scheme over the pattern query, embeds the
//! message in the numeric text values of the target elements (±1), writes
//! the marked document, and saves the secret pair list to the key file.
//! `detect` replays the pattern queries against the suspect document,
//! extracts the bits and reports the binomial significance of the match.
//!
//! `serve` runs the paper's data server over a marked database (or XML
//! document): final users hit `GET /answer` and `GET /aggregate`, the
//! owner verifies ownership through the same public interface
//! (`POST /detect`, or `detect-db --server host:port` from another
//! machine).
//!
//! Node identity is positional: detection expects the suspect document to
//! preserve the original's element structure (the non-adversarial model;
//! value changes are fine, reshuffling elements is not).

use qpwm::core::detect::{
    AnswerServer, DetectionReport, ObservedWeights, Verdict, DEFAULT_DELTA,
};
use qpwm::core::keyfile::SchemeKey;
use qpwm::fingerprint::{Fingerprinter, KeyRegistry, MasterSecret};
use qpwm::core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm::core::TreeScheme;
use qpwm::logic::datalog::parse_rule;
use qpwm::structures::Weights;
use qpwm::trees::pattern::PatternQuery;
use qpwm::trees::xml::{parse_xml, XmlDocument};
use qpwm::workloads::csv_db::{load_csv_database, CsvDatabase};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The battleground subcommand owns its flag grammar (boolean flags,
    // comma lists) — delegate before the key=value option parser runs.
    if args.first().map(String::as_str) == Some("battleground") {
        return ExitCode::from(qpwm::bench::battleground::cli_main(&args[1..]) as u8);
    }
    // `store` takes a positional verb before its flags.
    if args.first().map(String::as_str) == Some("store") {
        return match store_cmd(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!();
                eprintln!("{USAGE}");
                ExitCode::FAILURE
            }
        };
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  XML mode (pattern queries, Theorem 5):
    qpwm inspect --xml <file> --pattern <pattern>
    qpwm mark    --xml <file> --pattern <pattern> --message <bits>
                 --out <marked.xml> --key-out <keyfile>
    qpwm detect  --xml <suspect.xml> --original <file> --pattern <pattern>
                 --key <keyfile> [--claim <bits>]
  relational mode (Datalog rules, Theorem 3):
    qpwm mark-db   --schema <spec> --table Rel=file.csv [--table ...]
                   --weights <w.csv> --rule <rule> --message <bits>
                   --out-weights <marked.csv> --key-out <keyfile> [--d <n>] [--rho <n>]
                   [--threads <n>]
    qpwm detect-db --schema <spec> --table Rel=file.csv [--table ...]
                   --weights <original.csv> (--suspect <suspect.csv> | --server <host:port>)
                   --rule <rule> --key <keyfile> [--claim <bits>] [--threads <n>]
                   [--timeout-ms <n>] [--retries <n>] [--batch <n>]
  capacity counting (exact #Mark, Theorem 1 engine):
    qpwm capacity  --schema <spec> --table Rel=file.csv [--table ...]
                   --rule <rule> [--d <n>] [--threads <n>]
    qpwm capacity  --xml <file> --pattern <pattern> [--d <n>] [--threads <n>]
  cross-scheme attack battleground (X-B3 Pareto table):
    qpwm battleground [--check] [--threads <n>] [--schemes <a,b,..>]
                      [--attacks <x,y,..>] [--no-bench]
  crash-safe persistent store (WAL-backed pages, transactional re-marking):
    qpwm store init   --store <file.qps> --schema <spec> --table Rel=file.csv
                      [--table ...] --weights <w.csv> --rule <rule>
    qpwm store mark   --store <file.qps> --schema <spec> --table Rel=file.csv
                      [--table ...] --rule <rule> --message <bits>
                      --key-out <keyfile> [--d <n>] [--rho <n>]
    qpwm store update --store <file.qps> --updates <changes.csv> [--key <keyfile>]
    qpwm store verify --store <file.qps> --key <keyfile> [--claim <bits>] [--paged]
    qpwm store stat   --store <file.qps>
    every store verb takes [--pool-frames <n>] (or QPWM_POOL_FRAMES) to
    bound the buffer pool; verify --paged detects out-of-core through it
  data server (answer sets + aggregates over HTTP):
    qpwm serve     --schema <spec> --table Rel=file.csv [--table ...]
                   --weights <marked.csv> --rule <rule>
                   [--port <n>] [--shards <n>] [--cache <entries>]
                   [--backlog <n>] [--chaos <spec>]
                   [--master <secret> --ledger <file> --key <keyfile>
                    [--fingerprint <recipient>]]
    qpwm serve     --xml <marked.xml> --pattern <pattern>
                   [--port <n>] [--shards <n>] [--cache <entries>]
                   [--backlog <n>] [--chaos <spec>]
    qpwm serve     --store <file.qps> [--port <n>] [--shards <n>]
                   [--pool-frames <n>] [--resident] [...]
                   (stores serve out-of-core through per-shard buffer
                    pools; --resident or fingerprint flags decode the
                    family into RAM instead)
  multi-tenant fingerprinting (issuance ledger, traitor tracing):
    qpwm issue     --master <secret> --ledger <file> --recipient <name> [--at <ts>]
    qpwm revoke    --master <secret> --ledger <file> --recipient <name> [--at <ts>]
    qpwm accuse    --master <secret> --ledger <file> --key <keyfile>
                   --schema <spec> --table Rel=file.csv [--table ...]
                   --weights <original.csv> --leak <leaked.csv> [--delta <p>]
    qpwm accuse    --server <host:port> --fetch-as <recipient>

  --master  the owner's fingerprinting secret: a u64 (decimal or 0x hex)
            or any passphrase; per-recipient keys derive from it
  --ledger  append-only JSON-lines issuance ledger (created on first issue)

  --chaos <spec> injects deterministic transport faults, e.g.
                 'drop=5%,error=10%,delay=20%:2ms,trunc=3%,seed=42'
                 (env QPWM_CHAOS when the flag is absent)
  --timeout-ms / QPWM_HTTP_TIMEOUT_MS bound client connect/read/write

  <spec>    like 'Route(travel,transport); Timetable(t,dep,arr,ty)'
  <rule>    like 'route($u; t) :- Route($u, t)'
  <pattern> like 'school/student[firstname=$a]/exam'";

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    let opts = parse_options(rest)?;
    if let Some(raw) = optional(&opts, "threads") {
        let n = qpwm::par::parse_thread_arg(raw).map_err(|e| format!("--threads: {e}"))?;
        qpwm::par::set_threads(n);
    }
    match command.as_str() {
        "inspect" => inspect(&opts),
        "mark" => mark(&opts),
        "detect" => detect(&opts),
        "mark-db" => mark_db(&opts),
        "detect-db" => detect_db(&opts),
        "serve" => serve(&opts),
        "capacity" => capacity(&opts),
        "issue" => issue(&opts),
        "revoke" => revoke(&opts),
        "accuse" => accuse_cmd(&opts),
        other => Err(format!("unknown command {other}")),
    }
}

type Options = HashMap<String, Vec<String>>;

/// Flags that take no value (presence is the signal).
const BOOLEAN_FLAGS: &[&str] = &["paged", "resident"];

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut out: Options = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got {flag}"));
        };
        if BOOLEAN_FLAGS.contains(&name) {
            out.entry(name.to_owned()).or_default().push(String::new());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("--{name} needs a value"));
        };
        out.entry(name.to_owned()).or_default().push(value.clone());
    }
    Ok(out)
}

fn required<'a>(opts: &'a Options, name: &str) -> Result<&'a str, String> {
    opts.get(name)
        .and_then(|v| v.first())
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{name}"))
}

fn optional<'a>(opts: &'a Options, name: &str) -> Option<&'a str> {
    opts.get(name).and_then(|v| v.first()).map(String::as_str)
}

fn load_doc(path: &str) -> Result<XmlDocument, String> {
    let content =
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_xml(&content).map_err(|e| format!("parsing {path}: {e}"))
}

/// Weights = numeric text children of the pattern's target elements.
fn target_weights(doc: &XmlDocument, pattern: &PatternQuery) -> Weights {
    let mut w = Weights::new(1);
    for target in doc.nodes_with_tag(&pattern.target) {
        if let Some(&t) = doc.tree.children(target).first() {
            if let Some(value) = doc.text(t).and_then(|s| s.parse::<i64>().ok()) {
                w.set(&[t], value);
            }
        }
    }
    w
}

/// One canonical parameter per distinct filter value.
fn canonical_parameters(doc: &XmlDocument, pattern: &PatternQuery) -> Vec<Vec<u32>> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for f in doc.nodes_with_tag(&pattern.filter) {
        if let Some(&t) = doc.tree.children(f).first() {
            if seen.insert(doc.tree.label(t)) {
                out.push(vec![t]);
            }
        }
    }
    out
}

fn build_scheme(doc: &XmlDocument, pattern: &PatternQuery) -> TreeScheme {
    let compiled = pattern.compile(doc);
    let binary = doc.tree.to_binary();
    // Small block threshold: pattern automata reach very few distinct
    // states in practice, so collisions come fast; blocks that fail to
    // collide cost capacity, never soundness (see build_with_threshold).
    TreeScheme::build_with_threshold(&binary, &compiled, 16, canonical_parameters(doc, pattern))
}

fn inspect(opts: &Options) -> Result<(), String> {
    let doc = load_doc(required(opts, "xml")?)?;
    let pattern = PatternQuery::parse(required(opts, "pattern")?)
        .map_err(|e| e.to_string())?;
    let weights = target_weights(&doc, &pattern);
    let scheme = build_scheme(&doc, &pattern);
    println!("document: {} nodes", doc.tree.len());
    println!("targets:  {} numeric {} values", weights.len(), pattern.target);
    println!("automaton states (m): {}", scheme.stats().num_states);
    println!("active weights |W|:   {}", scheme.stats().active_nodes);
    println!("capacity:             {} bits", scheme.capacity());
    Ok(())
}

fn mark(opts: &Options) -> Result<(), String> {
    let doc = load_doc(required(opts, "xml")?)?;
    let pattern = PatternQuery::parse(required(opts, "pattern")?)
        .map_err(|e| e.to_string())?;
    let message: Vec<bool> = required(opts, "message")?
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("message must be 0/1 bits, got {other}")),
        })
        .collect::<Result<_, _>>()?;
    let weights = target_weights(&doc, &pattern);
    let scheme = build_scheme(&doc, &pattern);
    if message.len() > scheme.capacity() {
        return Err(format!(
            "message has {} bits but the document only carries {}",
            message.len(),
            scheme.capacity()
        ));
    }
    let marked = scheme.mark(&weights, &message);
    // new text values for changed nodes
    let mut overrides: HashMap<u32, String> = HashMap::new();
    for key in marked.keys_sorted() {
        let (before, after) = (weights.get(&key), marked.get(&key));
        if before != after {
            overrides.insert(key[0], after.to_string());
        }
    }
    let out_path = required(opts, "out")?;
    std::fs::write(out_path, doc.to_xml_with(&overrides))
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    let key = SchemeKey {
        marking: scheme.marking().clone(),
        d: 1,
    };
    let key_path = required(opts, "key-out")?;
    std::fs::write(key_path, key.to_text())
        .map_err(|e| format!("writing {key_path}: {e}"))?;
    println!(
        "marked {} values (±1), wrote {out_path} and secret {key_path}",
        overrides.len()
    );
    println!("embedded {} of {} available bits", message.len(), scheme.capacity());
    Ok(())
}

fn detect(opts: &Options) -> Result<(), String> {
    let original = load_doc(required(opts, "original")?)?;
    let suspect = load_doc(required(opts, "xml")?)?;
    let pattern = PatternQuery::parse(required(opts, "pattern")?)
        .map_err(|e| e.to_string())?;
    let key_path = required(opts, "key")?;
    let key_text =
        std::fs::read_to_string(key_path).map_err(|e| format!("reading {key_path}: {e}"))?;
    let key = SchemeKey::from_text(&key_text).map_err(|e| e.to_string())?;

    // The owner acts as a user: replay the pattern queries against the
    // suspect document and collect the weights its answers expose.
    let original_weights = target_weights(&original, &pattern);
    let suspect_weights = target_weights(&suspect, &pattern);
    struct SuspectXmlServer {
        sets: Vec<Vec<Vec<u32>>>,
        weights: Weights,
    }
    impl AnswerServer for SuspectXmlServer {
        fn num_parameters(&self) -> usize {
            self.sets.len()
        }
        fn answer(&self, i: usize) -> Vec<(Vec<u32>, i64)> {
            self.sets[i]
                .iter()
                .map(|b| (b.clone(), self.weights.get(b)))
                .collect()
        }
    }
    let sets: Vec<Vec<Vec<u32>>> = canonical_parameters(&suspect, &pattern)
        .into_iter()
        .map(|a| {
            pattern
                .answer_set_unranked(&suspect, a[0])
                .into_iter()
                .map(|t| vec![t])
                .collect()
        })
        .collect();
    let server = SuspectXmlServer { sets, weights: suspect_weights };
    let observed = ObservedWeights::collect(&server);
    let report = key.marking.extract(&original_weights, &observed);
    let bits: String = report.bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
    println!("extracted bits: {bits}");
    println!(
        "clean reads: {:.0}% ({} pairs unseen)",
        report.clean_fraction() * 100.0,
        report.missing_pairs
    );
    print_claim(&report, opts);
    Ok(())
}

/// Scores and prints a `--claim` check; the numbers come from the same
/// [`DetectionReport::claim_check`] the serve `/detect` endpoint uses.
fn print_claim(report: &DetectionReport, opts: &Options) {
    print_claim_with_budget(report, opts, 0);
}

/// Claim check that knows about lost reads. With a zero budget this is
/// exactly [`print_claim`] (same numbers, same lines). With reads
/// missing it switches to the effective-sample significance
/// ([`DetectionReport::claim_check_effective`]): erased bits leave the
/// binomial sample instead of diluting it, and the verdict may abstain
/// but can never flip relative to a clean channel.
fn print_claim_with_budget(report: &DetectionReport, opts: &Options, failed_reads: usize) {
    if let Some(claim) = optional(opts, "claim") {
        let claimed: Vec<bool> = claim.chars().map(|c| c == '1').collect();
        if failed_reads > 0 {
            let check = report.claim_check_effective(&claimed, DEFAULT_DELTA);
            println!(
                "missing-read budget: {failed_reads} answer(s) unread despite retries; \
                 {} of {} claim bits retain evidence",
                check.compared, check.claimed
            );
            println!(
                "claim check (effective sample): {}/{} surviving bits match, \
                 false-positive probability {:.2e}",
                check.matches, check.compared, check.significance
            );
            print_verdict(check.verdict);
        } else {
            let check = report.claim_check(&claimed, DEFAULT_DELTA);
            println!(
                "claim check: {}/{} bits match, false-positive probability {:.2e}",
                check.matches, check.claimed, check.significance
            );
            print_verdict(check.verdict);
        }
    }
}

fn print_verdict(verdict: Verdict) {
    match verdict {
        Verdict::MarkPresent => println!("verdict: MARK PRESENT (ownership established)"),
        Verdict::Inconclusive => println!("verdict: inconclusive"),
        Verdict::Abstain => println!(
            "verdict: ABSTAIN (evidence lost in transit; rerun detection over a cleaner channel)"
        ),
    }
}

// ---------------------------------------------------------------------
// relational mode
// ---------------------------------------------------------------------

fn load_db(opts: &Options) -> Result<(CsvDatabase, Vec<(String, String)>), String> {
    load_db_core(opts, true)
}

/// Shared CSV-database loader. Marking and detection need `--weights`;
/// the capacity counter only needs the instance, so the flag becomes
/// optional there (`weights_required = false`).
fn load_db_core(
    opts: &Options,
    weights_required: bool,
) -> Result<(CsvDatabase, Vec<(String, String)>), String> {
    let spec = required(opts, "schema")?;
    let table_specs = opts
        .get("table")
        .ok_or_else(|| "missing --table".to_string())?;
    let mut tables: Vec<(String, String)> = Vec::new();
    for spec in table_specs {
        let (rel, path) = spec
            .split_once('=')
            .ok_or_else(|| format!("--table must be Rel=file.csv, got {spec}"))?;
        let csv = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        tables.push((rel.to_owned(), csv));
    }
    let weights_csv = if weights_required || optional(opts, "weights").is_some() {
        let weights_path = required(opts, "weights")?;
        Some(
            std::fs::read_to_string(weights_path)
                .map_err(|e| format!("reading {weights_path}: {e}"))?,
        )
    } else {
        None
    };
    let refs: Vec<(&str, &str)> = tables
        .iter()
        .map(|(r, c)| (r.as_str(), c.as_str()))
        .collect();
    let db =
        load_csv_database(spec, &refs, weights_csv.as_deref()).map_err(|e| e.to_string())?;
    Ok((db, tables))
}

fn build_db_scheme(
    db: &CsvDatabase,
    opts: &Options,
) -> Result<(LocalScheme, String), String> {
    let rule_text = required(opts, "rule")?;
    let rule = parse_rule(rule_text, db.instance.structure().schema())
        .map_err(|e| e.to_string())?;
    let d: u64 = optional(opts, "d").unwrap_or("1").parse().map_err(|_| "--d needs a number")?;
    let rho: u32 =
        optional(opts, "rho").unwrap_or("1").parse().map_err(|_| "--rho needs a number")?;
    let config = LocalSchemeConfig {
        rho,
        d,
        strategy: SelectionStrategy::Greedy,
        seed: 7,
    };
    let scheme = LocalScheme::build(&db.instance, &rule.query, &config)
        .map_err(|e| format!("cannot build a scheme: {e}"))?;
    Ok((scheme, rule.name))
}

fn mark_db(opts: &Options) -> Result<(), String> {
    let (db, _) = load_db(opts)?;
    let (scheme, rule_name) = build_db_scheme(&db, opts)?;
    let message: Vec<bool> = required(opts, "message")?
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("message must be 0/1 bits, got {other}")),
        })
        .collect::<Result<_, _>>()?;
    if message.len() > scheme.capacity() {
        return Err(format!(
            "message has {} bits but the database carries {} (rule {rule_name}, d = {})",
            message.len(),
            scheme.capacity(),
            scheme.d()
        ));
    }
    let marked = scheme.mark(db.instance.weights(), &message);
    let audit = scheme.audit(db.instance.weights(), &marked);
    let out_path = required(opts, "out-weights")?;
    std::fs::write(out_path, db.weights_to_csv(&marked))
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    let key = SchemeKey { marking: scheme.marking().clone(), d: scheme.d() };
    let key_path = required(opts, "key-out")?;
    std::fs::write(key_path, key.to_text())
        .map_err(|e| format!("writing {key_path}: {e}"))?;
    println!(
        "marked: {} bits of {} available; per-value change ≤ {}, per-answer change ≤ {}",
        message.len(),
        scheme.capacity(),
        audit.max_local,
        audit.max_global
    );
    println!("wrote {out_path} and secret {key_path}");
    Ok(())
}

fn detect_db(opts: &Options) -> Result<(), String> {
    let (db, _) = load_db(opts)?;
    let key_path = required(opts, "key")?;
    let key_text =
        std::fs::read_to_string(key_path).map_err(|e| format!("reading {key_path}: {e}"))?;
    let key = SchemeKey::from_text(&key_text).map_err(|e| e.to_string())?;

    let mut failed_reads = 0usize;
    let observed = if let Some(addr) = optional(opts, "server") {
        // remote mode: the owner acts as an ordinary user of the suspect
        // data server, replaying the public parameter domain over HTTP.
        // Element ids align because owner and server load the same
        // public tables (same interning order).
        let addr = addr.strip_prefix("http://").unwrap_or(addr);
        let timeouts = match optional(opts, "timeout-ms") {
            Some(raw) => qpwm::serve::Timeouts::from_millis(
                raw.parse().map_err(|_| "--timeout-ms needs milliseconds")?,
            ),
            None => qpwm::serve::Timeouts::from_env()?,
        };
        let mut policy = qpwm::serve::RetryPolicy::default();
        if let Some(raw) = optional(opts, "retries") {
            let retries: u32 = raw.parse().map_err(|_| "--retries needs a count")?;
            policy.max_attempts = retries + 1;
        }
        // batched prefetch over POST /answers amortizes round trips;
        // --batch 1 (or 0) falls back to one GET /answer per parameter
        let batch = match optional(opts, "batch") {
            Some(raw) => raw.parse().map_err(|_| "--batch needs a count")?,
            None => 64,
        };
        let remote = qpwm::serve::RemoteServer::connect_batched(addr, timeouts, policy, batch)?;
        println!(
            "querying {} ({} parameters)...",
            remote.addr(),
            remote.num_parameters()
        );
        let observed = ObservedWeights::collect(&remote);
        let stats = remote.transport_stats();
        if stats.retries + stats.failed_requests + stats.breaker_fast_fails > 0 {
            println!(
                "transport: {} attempts, {} retries, {} reconnects, \
                 {} failed requests, {} breaker fast-fails",
                stats.attempts,
                stats.retries,
                stats.reconnects,
                stats.failed_requests,
                stats.breaker_fast_fails
            );
        }
        failed_reads = remote.failed_reads();
        observed
    } else {
        let (scheme, _) = build_db_scheme(&db, opts)?;
        // load the suspect's weights over the same name dictionary
        let suspect_path = required(opts, "suspect")
            .map_err(|_| "missing --suspect (or --server for remote detection)".to_string())?;
        let suspect_csv = std::fs::read_to_string(suspect_path)
            .map_err(|e| format!("reading {suspect_path}: {e}"))?;
        let mut suspect_weights = Weights::new(1);
        for (lineno, line) in suspect_csv.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let (name, value) = line
                .rsplit_once(',')
                .ok_or_else(|| format!("bad suspect row at line {}", lineno + 1))?;
            let name = name.trim().trim_matches('"').replace("\"\"", "\"");
            let w: i64 = value
                .trim()
                .parse()
                .map_err(|_| format!("bad suspect weight at line {}", lineno + 1))?;
            if let Some(e) = db.element(&name) {
                suspect_weights.set(&[e], w);
            }
        }
        // the suspect serves the rule's answers with its weights
        let server =
            qpwm::core::detect::HonestServer::new(scheme.answers().clone(), suspect_weights);
        ObservedWeights::collect(&server)
    };
    let report = key.marking.extract(db.instance.weights(), &observed);
    let bits: String = report.bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
    println!("extracted bits: {bits}");
    print_claim_with_budget(&report, opts, failed_reads);
    Ok(())
}

// ---------------------------------------------------------------------
// capacity counting
// ---------------------------------------------------------------------

/// `qpwm capacity`: exact `#Mark(≤d)` / `#Mark(=d)` over the query's
/// active sets, via the decomposed/memoized/fork-join counting engine.
/// Honors the global `--threads` flag like every other parallel path.
fn capacity(opts: &Options) -> Result<(), String> {
    use qpwm::core::capacity::CapacityProblem;
    let d: i64 =
        optional(opts, "d").unwrap_or("1").parse().map_err(|_| "--d needs a number")?;
    if d < 0 {
        return Err("--d must be non-negative".into());
    }
    let (problem, source) = if optional(opts, "xml").is_some() {
        let doc = load_doc(required(opts, "xml")?)?;
        let pattern = PatternQuery::parse(required(opts, "pattern")?)
            .map_err(|e| e.to_string())?;
        let parameters = canonical_parameters(&doc, &pattern);
        let sets: Vec<Vec<Vec<u32>>> = parameters
            .iter()
            .map(|a| {
                pattern
                    .answer_set_unranked(&doc, a[0])
                    .into_iter()
                    .map(|t| vec![t])
                    .collect()
            })
            .collect();
        let family = qpwm::structures::AnswerFamily::from_nested(parameters, &sets);
        (CapacityProblem::from_family(&family), required(opts, "pattern")?.to_owned())
    } else {
        let (db, _) = load_db_core(opts, false)?;
        let rule_text = required(opts, "rule")?;
        let rule = parse_rule(rule_text, db.instance.structure().schema())
            .map_err(|e| e.to_string())?;
        let family = rule.query.answers(db.instance.structure());
        (CapacityProblem::from_family(&family), rule.name)
    };
    let threads = qpwm::par::thread_count();
    println!("query: {source}");
    println!("active weights |W|: {} (threads = {threads})", problem.num_elements());
    let mut stats = None;
    for budget in 0..=d {
        let (at_most, s) =
            problem.count_constrained_stats(threads, &[-1, 0, 1], -budget, budget);
        let exactly = problem.count_exactly(budget);
        println!(
            "d = {budget}: #Mark(<=d) = {at_most}  #Mark(=d) = {exactly}  bits = {:.1}",
            problem.bits_at(budget)
        );
        stats = Some(s);
    }
    if let Some(s) = stats {
        println!(
            "engine: {} component(s), {} free element(s), {} memo hits / {} misses, {} task(s)",
            s.components, s.free_elements, s.memo_hits, s.memo_misses, s.tasks
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------
// multi-tenant fingerprinting
// ---------------------------------------------------------------------

/// `--master` accepts a raw u64 (decimal or `0x` hex) or folds any other
/// string as a passphrase. Either way the ledger never stores it.
fn parse_master(opts: &Options) -> Result<MasterSecret, String> {
    let raw = required(opts, "master")?;
    if let Some(hex) = raw.strip_prefix("0x") {
        if let Ok(key) = u64::from_str_radix(hex, 16) {
            return Ok(MasterSecret::from_u64(key));
        }
    }
    if let Ok(key) = raw.parse::<u64>() {
        return Ok(MasterSecret::from_u64(key));
    }
    Ok(MasterSecret::from_text(raw))
}

/// Replays the `--ledger` file into a registry. A missing file is an
/// empty registry (first `issue` creates it); a malformed one is an
/// error, never silently truncated.
fn load_registry(opts: &Options) -> Result<(KeyRegistry, String), String> {
    let master = parse_master(opts)?;
    let path = required(opts, "ledger")?.to_owned();
    let registry = match std::fs::read_to_string(&path) {
        Ok(text) => KeyRegistry::from_ledger(master, &text)
            .map_err(|e| format!("replaying ledger {path}: {e}"))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => KeyRegistry::new(master),
        Err(e) => return Err(format!("reading ledger {path}: {e}")),
    };
    if let Some(torn) = registry.torn_tail() {
        eprintln!(
            "warning: ledger {path} ends in a torn line (crash mid-append?); \
             that record is lost and was skipped: {torn}"
        );
    }
    Ok((registry, path))
}

/// Ledger appends go through the fingerprint crate's fsync'd writer: a
/// grant the CLI reported as issued must survive a crash right after.
fn append_ledger_line(path: &str, line: &str) -> Result<(), String> {
    qpwm::fingerprint::append_ledger_line(std::path::Path::new(path), line)
        .map_err(|e| format!("appending to ledger {path}: {e}"))
}

/// `qpwm issue`: grants the next derivation index to a recipient and
/// appends the immutable record to the ledger.
fn issue(opts: &Options) -> Result<(), String> {
    let (mut registry, path) = load_registry(opts)?;
    let name = required(opts, "recipient")?;
    let at: u64 =
        optional(opts, "at").unwrap_or("0").parse().map_err(|_| "--at needs a timestamp")?;
    let record = registry.issue(name, at).map_err(|e| e.to_string())?.clone();
    append_ledger_line(&path, &KeyRegistry::issue_line(&record))?;
    println!(
        "issued '{}' at derivation index {} ({} record(s) in {path})",
        record.recipient,
        record.index,
        registry.len()
    );
    Ok(())
}

/// `qpwm revoke`: marks a grant revoked; the recipient keeps its index
/// (indices are never reused) but leaves accusation scoring.
fn revoke(opts: &Options) -> Result<(), String> {
    let (mut registry, path) = load_registry(opts)?;
    let name = required(opts, "recipient")?;
    let at: u64 =
        optional(opts, "at").unwrap_or("0").parse().map_err(|_| "--at needs a timestamp")?;
    registry.revoke(name, at).map_err(|e| e.to_string())?;
    append_ledger_line(&path, &KeyRegistry::revoke_line(name, at))?;
    println!(
        "revoked '{name}' ({} active of {} issued)",
        registry.active().count(),
        registry.len()
    );
    Ok(())
}

/// `qpwm accuse`: traces a leaked answer set back to the recipient it
/// was issued to. Offline mode scores locally from the master secret and
/// ledger; `--server` mode fetches one recipient's copy over HTTP and
/// lets the server's `POST /accuse` do the forensics (the end-to-end
/// drill for a live deployment).
fn accuse_cmd(opts: &Options) -> Result<(), String> {
    if let Some(addr) = optional(opts, "server") {
        return accuse_remote(addr, opts);
    }
    let (registry, _) = load_registry(opts)?;
    let (db, _) = load_db(opts)?;
    let key_path = required(opts, "key")?;
    let key_text =
        std::fs::read_to_string(key_path).map_err(|e| format!("reading {key_path}: {e}"))?;
    let key = SchemeKey::from_text(&key_text).map_err(|e| e.to_string())?;
    let delta: f64 = match optional(opts, "delta") {
        Some(raw) => raw.parse().map_err(|_| "--delta needs a probability")?,
        None => DEFAULT_DELTA,
    };

    // the leaked copy, over the same name dictionary as the original
    let leak_path = required(opts, "leak")?;
    let leak_csv = std::fs::read_to_string(leak_path)
        .map_err(|e| format!("reading {leak_path}: {e}"))?;
    let mut pairs: Vec<(Vec<u32>, i64)> = Vec::new();
    for (lineno, line) in leak_csv.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (name, value) = line
            .rsplit_once(',')
            .ok_or_else(|| format!("bad leak row at line {}", lineno + 1))?;
        let name = name.trim().trim_matches('"').replace("\"\"", "\"");
        let w: i64 = value
            .trim()
            .parse()
            .map_err(|_| format!("bad leak weight at line {}", lineno + 1))?;
        if let Some(e) = db.element(&name) {
            pairs.push((vec![e], w));
        }
    }
    if pairs.is_empty() {
        return Err(format!("{leak_path}: no rows matched the database's elements"));
    }

    let fingerprinter = Fingerprinter::new(key.marking, db.instance.weights().clone());
    let observed = qpwm::fingerprint::observed_from_pairs(pairs);
    let outcome = qpwm::fingerprint::accuse(&fingerprinter, &registry, &observed, delta);
    print_accusation(&outcome);
    Ok(())
}

fn print_accusation(outcome: &qpwm::fingerprint::AccuseOutcome) {
    println!(
        "scored {} active recipient(s) ({} revoked excluded)",
        outcome.scored, outcome.skipped_revoked
    );
    if let Some(best) = &outcome.best {
        println!(
            "best match: '{}' (index {}): {}/{} bits, false-positive probability {:.2e}",
            best.recipient,
            best.index,
            best.check.matches,
            best.check.compared,
            best.check.significance
        );
    }
    if let Some(runner) = &outcome.runner_up {
        println!(
            "runner-up:  '{}' (index {}): {}/{} bits, false-positive probability {:.2e}",
            runner.recipient,
            runner.index,
            runner.check.matches,
            runner.check.compared,
            runner.check.significance
        );
        println!("separation: 10^{:.1} between best and runner-up", outcome.gap_log10);
    }
    match outcome.accused() {
        Some(a) => println!("verdict: ACCUSED '{}' (leak traces to this grant)", a.recipient),
        None => println!(
            "verdict: abstain (no recipient clears the significance floor; \
             nobody is accused on weak evidence)"
        ),
    }
}

/// Remote accusation drill: fetch `--fetch-as`'s stamped copy through
/// the public interface, then hand it to the server's forensic endpoint.
fn accuse_remote(addr: &str, opts: &Options) -> Result<(), String> {
    use qpwm::serve::client::{http_get, http_post, parse_answer_tuples, parse_json_uint};
    let addr = addr.strip_prefix("http://").unwrap_or(addr);
    let recipient = required(opts, "fetch-as")?;
    let (status, body) = http_get(addr, "/params")?;
    if status != 200 {
        return Err(format!("GET /params: HTTP {status}: {}", body.trim()));
    }
    let count = parse_json_uint(&body, "count")
        .ok_or_else(|| format!("GET /params: no count in {}", body.trim()))? as usize;
    let mut pairs = Vec::new();
    for i in 0..count {
        let (status, body) =
            http_get(addr, &format!("/answer?i={i}&recipient={recipient}"))?;
        if status != 200 {
            return Err(format!("GET /answer?i={i}: HTTP {status}: {}", body.trim()));
        }
        pairs.extend(parse_answer_tuples(&body)?);
    }
    println!(
        "fetched {count} answer set(s) ({} weights) as '{recipient}' from {addr}",
        pairs.len()
    );
    let leak = qpwm::serve::fingerprint::leak_request_body(&pairs);
    let (status, verdict) = http_post(addr, "/accuse", &leak)?;
    if status != 200 {
        return Err(format!("POST /accuse: HTTP {status}: {}", verdict.trim()));
    }
    print!("{verdict}");
    Ok(())
}

// ---------------------------------------------------------------------
// data server
// ---------------------------------------------------------------------

/// `qpwm serve`: pre-materializes the answer family once and serves it
/// over HTTP until `POST /shutdown` (loopback-only) stops it.
fn serve(opts: &Options) -> Result<(), String> {
    // fingerprint stamping splices precomputed templates, so those flags
    // force the resident plane even for a store
    let wants_fingerprint =
        optional(opts, "master").is_some() || optional(opts, "ledger").is_some();
    let mut paged_plane = None;
    let data = if optional(opts, "store").is_some() {
        if optional(opts, "resident").is_some() || wants_fingerprint {
            if wants_fingerprint && optional(opts, "resident").is_none() {
                println!(
                    "fingerprinting requested: decoding the store into RAM \
                     (the paged plane does not stamp)"
                );
            }
            serve_data_store(opts)?
        } else {
            let (plane, placeholder) = serve_store_paged(opts)?;
            paged_plane = Some(plane);
            placeholder
        }
    } else if optional(opts, "xml").is_some() {
        serve_data_xml(opts)?
    } else {
        serve_data_db(opts)?
    };
    let port: u16 = optional(opts, "port")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "--port needs a port number")?;
    let cache_entries: usize = optional(opts, "cache")
        .unwrap_or("1024")
        .parse()
        .map_err(|_| "--cache needs an entry count")?;
    let mut config = qpwm::serve::ServerConfig {
        addr: format!("127.0.0.1:{port}"),
        cache_entries,
        ..Default::default()
    };
    // explicit flag wins; otherwise QPWM_SHARDS is resolved inside the
    // server (defaulting to one shard)
    if let Some(raw) = optional(opts, "shards") {
        config.shards =
            qpwm::par::parse_thread_arg(raw).map_err(|e| format!("--shards: {}", e.replace("thread count", "shard count")))?;
    }
    if let Some(raw) = optional(opts, "backlog") {
        config.backlog = raw.parse().map_err(|_| "--backlog needs a queue length")?;
    }
    // the flag wins over the environment so a shell-wide QPWM_CHAOS can
    // be overridden per invocation
    let chaos = match optional(opts, "chaos") {
        Some(spec) => Some(qpwm::serve::FaultPolicy::parse(spec).map_err(|e| format!("--chaos: {e}"))?),
        None => qpwm::serve::FaultPolicy::from_env()?,
    };
    if let Some(policy) = chaos {
        if !policy.is_disabled() {
            println!("chaos enabled: {}", policy.describe());
        }
        config.chaos = Some(policy);
    }
    // fingerprinting: --master + --ledger + --key attach a stamping
    // context; the server must then be serving the *original* weights
    // (each recipient's marked copy is spliced on the fly)
    if optional(opts, "master").is_some() || optional(opts, "ledger").is_some() {
        let (registry, _) = load_registry(opts)?;
        let key_path = required(opts, "key")
            .map_err(|_| "fingerprinting needs --key (the marking key file)".to_string())?;
        let key_text = std::fs::read_to_string(key_path)
            .map_err(|e| format!("reading {key_path}: {e}"))?;
        let key = SchemeKey::from_text(&key_text).map_err(|e| e.to_string())?;
        let fingerprinter = Fingerprinter::new(key.marking, data.weights().clone());
        let default_recipient = optional(opts, "fingerprint").map(str::to_owned);
        let ctx = qpwm::serve::FingerprintContext::new(
            &data,
            registry,
            fingerprinter,
            default_recipient,
        )?;
        println!(
            "fingerprinting {} active recipient(s); forensic POST /accuse enabled",
            ctx.registry().active().count()
        );
        config.fingerprint = Some(ctx);
    }
    config.paged = paged_plane;
    let server = qpwm::serve::Server::start(data, config).map_err(|e| e.to_string())?;
    println!("listening on http://{}", server.addr());
    println!(
        "endpoints: /answer /answers /aggregate /detect /params /healthz /metrics (POST /shutdown to stop)"
    );
    server.join();
    println!("shut down cleanly");
    Ok(())
}

/// Relational serve mode: the family detect-db replays, marked weights
/// attached.
fn serve_data_db(opts: &Options) -> Result<qpwm::serve::ServeData, String> {
    let (db, _) = load_db(opts)?;
    let rule_text = required(opts, "rule")?;
    let rule = parse_rule(rule_text, db.instance.structure().schema())
        .map_err(|e| e.to_string())?;
    let family = rule.query.answers(db.instance.structure());
    let labels = family
        .parameters()
        .iter()
        .map(|a| {
            a.iter()
                .map(|&e| db.name(e).to_owned())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    Ok(qpwm::serve::ServeData::new(
        family,
        db.instance.weights().clone(),
        labels,
        Some(db.names.clone()),
        rule.name,
    ))
}

/// XML serve mode: pattern answers per canonical filter value, numeric
/// target texts as weights.
fn serve_data_xml(opts: &Options) -> Result<qpwm::serve::ServeData, String> {
    let doc = load_doc(required(opts, "xml")?)?;
    let pattern = PatternQuery::parse(required(opts, "pattern")?)
        .map_err(|e| e.to_string())?;
    let weights = target_weights(&doc, &pattern);
    let parameters = canonical_parameters(&doc, &pattern);
    let labels = parameters
        .iter()
        .map(|a| doc.text(a[0]).unwrap_or_default().to_owned())
        .collect();
    let sets: Vec<Vec<Vec<u32>>> = parameters
        .iter()
        .map(|a| {
            pattern
                .answer_set_unranked(&doc, a[0])
                .into_iter()
                .map(|t| vec![t])
                .collect()
        })
        .collect();
    let family = qpwm::structures::AnswerFamily::from_nested(parameters, &sets);
    Ok(qpwm::serve::ServeData::new(
        family,
        weights,
        labels,
        None,
        required(opts, "pattern")?.to_owned(),
    ))
}

/// Default store serve mode: recover the WAL, then hand the server a
/// [`qpwm::serve::PagedPlane`] so every shard answers through its own
/// buffer pool — startup and steady-state RSS are O(pool frames), not
/// O(family). The returned [`qpwm::serve::ServeData`] is an empty
/// placeholder the paged routes never touch.
fn serve_store_paged(
    opts: &Options,
) -> Result<(qpwm::serve::PagedPlane, qpwm::serve::ServeData), String> {
    let (store, path) = open_store(opts)?;
    let stat = store.stat();
    drop(store); // release the write handle; the shards open read views
    let pool_frames = pool_frames_opt(opts)?;
    let resolved = qpwm::store::resolve_pool_frames(pool_frames, stat.total_pages)
        .map_err(|e| e.to_string())?;
    println!(
        "store {path}: {} tuple(s), {} parameter(s), serving out-of-core \
         ({resolved} pool frame(s) per shard)",
        stat.n_tuples, stat.n_params
    );
    let plane = qpwm::serve::PagedPlane { path, pool_frames, wal: stat.wal };
    let placeholder = qpwm::serve::ServeData::new(
        qpwm::structures::AnswerFamily::from_nested(Vec::new(), &[]),
        Weights::new(1),
        Vec::new(),
        None,
        String::new(),
    );
    Ok((plane, placeholder))
}

/// Resident store serve mode (`--resident`, or any fingerprint flag):
/// the family, labels and *marked* weights come straight off the
/// WAL-recovered pages — after any crash the server exposes exactly one
/// committed marking, never a torn one.
fn serve_data_store(opts: &Options) -> Result<qpwm::serve::ServeData, String> {
    let (mut store, path) = open_store(opts)?;
    let content = store.content().map_err(|e| format!("reading store {path}: {e}"))?;
    let family = content.family().map_err(|e| format!("store {path}: {e}"))?;
    let names = (!content.element_names.is_empty()).then(|| content.element_names.clone());
    println!(
        "store {path}: {} tuple(s), {} parameter(s), query {}",
        content.n_tuples(),
        content.n_params(),
        content.query_name
    );
    Ok(qpwm::serve::ServeData::new(
        family,
        content.marked_weights(),
        content.param_labels.clone(),
        names,
        content.query_name,
    ))
}

// ---------------------------------------------------------------------
// crash-safe persistent store
// ---------------------------------------------------------------------

/// `qpwm store <verb>`: the WAL-backed persistent store. The `--store`
/// path names the page file (a `.wal` sibling rides next to it); the
/// tier-1 crash smoke arms `QPWM_STORE_CRASH_OP` so a live `store
/// update` dies mid-write and the next verb recovers.
fn store_cmd(args: &[String]) -> Result<(), String> {
    let Some((verb, rest)) = args.split_first() else {
        return Err("store needs a verb: init | mark | update | verify".into());
    };
    let opts = parse_options(rest)?;
    if let Some(raw) = optional(&opts, "threads") {
        let n = qpwm::par::parse_thread_arg(raw).map_err(|e| format!("--threads: {e}"))?;
        qpwm::par::set_threads(n);
    }
    match verb.as_str() {
        "init" => store_init(&opts),
        "mark" => store_mark(&opts),
        "update" => store_update(&opts),
        "verify" => store_verify(&opts),
        "stat" => store_stat(&opts),
        other => Err(format!("unknown store verb {other} (init | mark | update | verify | stat)")),
    }
}

/// `--pool-frames`: explicit buffer-pool size for this invocation;
/// absent falls through to `QPWM_POOL_FRAMES` and the size-scaled
/// default inside the store.
fn pool_frames_opt(opts: &Options) -> Result<Option<usize>, String> {
    match optional(opts, "pool-frames") {
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("--pool-frames needs a frame count, got '{raw}'")),
        None => Ok(None),
    }
}

/// Opens `--store`, running WAL recovery; anything recovery did is
/// reported so crash smoke logs show the replay happening.
fn open_store(opts: &Options) -> Result<(qpwm::store::Store, String), String> {
    let path = required(opts, "store")?.to_owned();
    let vfs = qpwm::store::DiskVfs::from_env("");
    let options = qpwm::store::StoreOptions { pool_frames: pool_frames_opt(opts)? };
    let store = qpwm::store::Store::open_with(&vfs, &path, &options)
        .map_err(|e| format!("opening store {path}: {e}"))?;
    let rec = store.recovery();
    if rec.replayed_txns > 0 || rec.discarded_txns > 0 || rec.torn_tail {
        println!(
            "recovery: replayed {} committed txn(s) ({} page(s), {} already current), \
             discarded {} uncommitted{}",
            rec.replayed_txns,
            rec.replayed_pages,
            rec.skipped_pages,
            rec.discarded_txns,
            if rec.torn_tail { "; torn WAL tail truncated" } else { "" }
        );
    }
    Ok((store, path))
}

fn parse_message(opts: &Options) -> Result<Vec<bool>, String> {
    required(opts, "message")?
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("message must be 0/1 bits, got {other}")),
        })
        .collect()
}

fn load_key(opts: &Options) -> Result<SchemeKey, String> {
    let key_path = required(opts, "key")?;
    let key_text =
        std::fs::read_to_string(key_path).map_err(|e| format!("reading {key_path}: {e}"))?;
    SchemeKey::from_text(&key_text).map_err(|e| e.to_string())
}

/// `qpwm store init`: materializes the rule's answer family over the CSV
/// tables and persists it unmarked (delta = 0 everywhere).
fn store_init(opts: &Options) -> Result<(), String> {
    let path = required(opts, "store")?;
    let (db, _) = load_db(opts)?;
    let rule_text = required(opts, "rule")?;
    let rule = parse_rule(rule_text, db.instance.structure().schema())
        .map_err(|e| e.to_string())?;
    let family = rule.query.answers(db.instance.structure());
    let labels: Vec<String> = family
        .parameters()
        .iter()
        .map(|a| {
            a.iter().map(|&e| db.name(e).to_owned()).collect::<Vec<_>>().join(",")
        })
        .collect();
    let content = qpwm::store::StoreContent::from_family(
        &family,
        db.instance.weights(),
        db.instance.weights(),
        labels,
        db.names.clone(),
        rule.name.clone(),
    )
    .map_err(|e| e.to_string())?;
    let vfs = qpwm::store::DiskVfs::from_env("");
    let options = qpwm::store::StoreOptions { pool_frames: pool_frames_opt(opts)? };
    let store = qpwm::store::Store::create_with(&vfs, path, &content, &options)
        .map_err(|e| format!("creating store {path}: {e}"))?;
    println!(
        "initialized {path}: {} tuple(s), {} parameter(s), query {} (unmarked)",
        store.n_tuples(),
        store.n_params(),
        rule.name
    );
    Ok(())
}

/// `qpwm store mark`: builds the Theorem 3 scheme over the same public
/// tables the store was initialized from (element ids align because the
/// interning order is deterministic), embeds the message as one
/// transaction of delta writes, and saves the secret to `--key-out`.
fn store_mark(opts: &Options) -> Result<(), String> {
    let (mut store, path) = open_store(opts)?;
    let content = store.content().map_err(|e| format!("reading store {path}: {e}"))?;
    let (db, _) = load_db_core(opts, false)?;
    let (scheme, rule_name) = build_db_scheme(&db, opts)?;
    let message = parse_message(opts)?;
    if message.len() > scheme.capacity() {
        return Err(format!(
            "message has {} bits but the database carries {} (rule {rule_name}, d = {})",
            message.len(),
            scheme.capacity(),
            scheme.d()
        ));
    }
    let deltas = scheme.marking().delta_map(&message);
    let mut txn = store.begin();
    let mut touched = 0usize;
    for (key, delta) in &deltas {
        let id = content.lookup(key).ok_or_else(|| {
            format!("pair tuple not interned in {path} (was init run over the same tables?)")
        })?;
        txn.set_delta(id, *delta).map_err(|e| e.to_string())?;
        touched += 1;
    }
    let stats = txn.commit().map_err(|e| e.to_string())?;
    let key = SchemeKey { marking: scheme.marking().clone(), d: scheme.d() };
    let key_path = required(opts, "key-out")?;
    std::fs::write(key_path, key.to_text())
        .map_err(|e| format!("writing {key_path}: {e}"))?;
    println!(
        "marked: {} bits across {touched} tuple(s); txn {} committed ({} page(s), {} WAL byte(s))",
        message.len(),
        stats.txn,
        stats.pages,
        stats.wal_bytes
    );
    println!("wrote secret {key_path}");
    Ok(())
}

/// `qpwm store update`: applies a weight-only delta (Theorem 7) as one
/// transaction. With `--key` the touched pairs are re-marked in the same
/// transaction, so a crash anywhere leaves either the old committed
/// marking or the new one — never a half-re-marked state.
fn store_update(opts: &Options) -> Result<(), String> {
    use std::collections::HashSet;
    let (mut store, path) = open_store(opts)?;
    let content = store.content().map_err(|e| format!("reading store {path}: {e}"))?;
    if content.tuple_arity != 1 {
        return Err("store update needs 1-ary answer tuples (named elements)".into());
    }
    let by_name: HashMap<&str, u32> = content
        .element_names
        .iter()
        .enumerate()
        .map(|(e, n)| (n.as_str(), e as u32))
        .collect();
    let updates_path = required(opts, "updates")?;
    let updates_csv = std::fs::read_to_string(updates_path)
        .map_err(|e| format!("reading {updates_path}: {e}"))?;
    let mut updates: Vec<(u32, u32, i64)> = Vec::new(); // (tuple id, element, new base)
    for (lineno, line) in updates_csv.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (name, value) = line
            .rsplit_once(',')
            .ok_or_else(|| format!("bad update row at line {}", lineno + 1))?;
        let name = name.trim().trim_matches('"').replace("\"\"", "\"");
        let w: i64 = value
            .trim()
            .parse()
            .map_err(|_| format!("bad update weight at line {}", lineno + 1))?;
        let &e = by_name
            .get(name.as_str())
            .ok_or_else(|| format!("line {}: unknown element '{name}'", lineno + 1))?;
        let id = content
            .lookup(&[e])
            .ok_or_else(|| format!("line {}: '{name}' is not an answer tuple", lineno + 1))?;
        updates.push((id, e, w));
    }
    if updates.is_empty() {
        return Err(format!("{updates_path}: no updates"));
    }

    // With the key, re-mark only the touched neighborhoods (the sparse
    // Theorem 7 plan); without it, the delta column is left untouched.
    let mut remark: Vec<(u32, i64)> = Vec::new();
    if optional(opts, "key").is_some() {
        let key = load_key(opts)?;
        // Reconstruct the embedded bits from the store itself: pairwise
        // extraction over the marked vs base weights. Trailing pairs with
        // no evidence were never marked — trim them off the message.
        let family = content.family().map_err(|e| format!("store {path}: {e}"))?;
        let server =
            qpwm::core::detect::HonestServer::new(family, content.marked_weights());
        let observed = ObservedWeights::collect(&server);
        let report = key.marking.extract(&content.base_weights(), &observed);
        let embedded = report.scores.iter().rposition(|&s| s != 0).map_or(0, |i| i + 1);
        let bits = &report.bits[..embedded];
        let touched: HashSet<Vec<u32>> = updates.iter().map(|&(_, e, _)| vec![e]).collect();
        for (wkey, delta) in qpwm::core::incremental::remark_touched(&key.marking, bits, &touched)
        {
            let id = content
                .lookup(&wkey)
                .ok_or_else(|| format!("re-mark pair tuple not interned in {path}"))?;
            remark.push((id, delta));
        }
    }

    let mut txn = store.begin();
    for &(id, _, w) in &updates {
        txn.set_base(id, w).map_err(|e| e.to_string())?;
    }
    for &(id, delta) in &remark {
        txn.set_delta(id, delta).map_err(|e| e.to_string())?;
    }
    let stats = txn.commit().map_err(|e| e.to_string())?;
    println!(
        "updated {} base weight(s), re-marked {} tuple(s); txn {} committed \
         ({} page(s), {} WAL byte(s))",
        updates.len(),
        remark.len(),
        stats.txn,
        stats.pages,
        stats.wal_bytes
    );
    Ok(())
}

/// `qpwm store verify`: the detector's read over the recovered pages —
/// serve the marked weights, extract against the base weights, and score
/// an optional `--claim` exactly like `detect-db` does. With `--paged`
/// the answer server reads through the buffer pool instead of decoding
/// the image, so verification RSS is O(pool + observed), not O(family).
fn store_verify(opts: &Options) -> Result<(), String> {
    let (mut store, path) = open_store(opts)?;
    let key = load_key(opts)?;
    let next_txn = store.next_txn();
    let (report, n_tuples, n_params, pool_line) = if optional(opts, "paged").is_some() {
        // recovery already ran (and reset the WAL); reopen the pages as
        // a read view with its own small pool
        drop(store);
        let vfs = qpwm::store::DiskVfs::from_env("");
        let mut view = qpwm::store::ReadView::open(&vfs, &path, pool_frames_opt(opts)?)
            .map_err(|e| format!("paged view of {path}: {e}"))?;
        let (n_tuples, n_params) = (view.n_tuples(), view.n_params());
        let original = view.base_weights().map_err(|e| format!("store {path}: {e}"))?;
        let server = qpwm::store::PagedServer::new(view);
        let observed = ObservedWeights::collect(&server);
        let report = key.marking.extract(&original, &observed);
        let view = server.into_inner();
        let stats = view.pool_stats();
        let (resident, capacity) = view.pool_usage();
        let pool_line = format!(
            "paged detection: {} pool hit(s), {} miss(es), {} eviction(s) \
             ({resident}/{capacity} frame(s) resident)",
            stats.hits, stats.misses, stats.evictions
        );
        (report, n_tuples, n_params, Some(pool_line))
    } else {
        let content = store.content().map_err(|e| format!("reading store {path}: {e}"))?;
        let family = content.family().map_err(|e| format!("store {path}: {e}"))?;
        let server = qpwm::core::detect::HonestServer::new(family, content.marked_weights());
        let observed = ObservedWeights::collect(&server);
        let report = key.marking.extract(&content.base_weights(), &observed);
        (report, content.n_tuples(), content.n_params(), None)
    };
    let bits: String = report.bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
    println!("store {path}: {n_tuples} tuple(s), {n_params} parameter(s), next txn {next_txn}");
    if let Some(line) = pool_line {
        println!("{line}");
    }
    println!("extracted bits: {bits}");
    if let Some(claim) = optional(opts, "claim") {
        let claimed: Vec<bool> = claim.chars().map(|c| c == '1').collect();
        let check = report.claim_check(&claimed, DEFAULT_DELTA);
        println!(
            "claim check: {}/{} bits match, false-positive probability {:.2e}",
            check.matches, check.claimed, check.significance
        );
        print_verdict(check.verdict);
        if check.verdict != Verdict::MarkPresent {
            return Err(format!("claimed mark not established in {path}"));
        }
    }
    Ok(())
}

/// `qpwm store stat`: layout, pool, and WAL observability for one store
/// — the CLI face of the `qpwm_store_*` metrics the server exports.
fn store_stat(opts: &Options) -> Result<(), String> {
    let (store, path) = open_store(opts)?;
    let stat = store.stat();
    println!("store {path}:");
    println!("  tuples        {}", stat.n_tuples);
    println!("  parameters    {}", stat.n_params);
    println!("  next txn      {}", stat.next_txn);
    println!("  pages         {}", stat.total_pages);
    println!(
        "  pool          {} / {} frame(s) resident, {} pinned",
        stat.pool_resident, stat.pool_capacity, stat.pool_pinned
    );
    println!(
        "  pool traffic  {} hit(s), {} miss(es), {} eviction(s)",
        stat.pool.hits, stat.pool.misses, stat.pool.evictions
    );
    println!(
        "  wal           {} byte(s), {} record(s), {} fsync(s), {} group commit(s)",
        stat.wal_len, stat.wal.records, stat.wal.fsyncs, stat.wal.group_commits
    );
    println!("  buffered      {} txn(s) awaiting group commit", stat.buffered_txns);
    Ok(())
}
